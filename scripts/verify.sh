#!/usr/bin/env bash
# Tier-1 verification plus small-N smoke runs of the paper binaries.
#
# This is what CI runs and what a developer runs before pushing: the
# whole thing is offline (path-only dependency graph, --locked) and
# finishes in a few minutes on one core. Thread count only changes
# wall-clock time, never a number — the determinism gate at the end
# proves it on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: release build"
cargo build --release --locked

echo "==> tier 1: test suite (workspace)"
cargo test -q --workspace --locked

echo "==> smoke: table1 (small sprinkle)"
DOTM_DEFECTS=4000 DOTM_TABLE1_FULL=100000 \
    cargo run --release --locked -p dotm-bench --bin table1

echo "==> smoke: fig4 (truncated classes, small good space)"
DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    cargo run --release --locked -p dotm-bench --bin fig4

echo "==> smoke: failure accounting on the fixed-seed comparator run"
# The table2 run prints the solver-accounting block; on a healthy
# paper-parity run every failure counter must be present AND zero —
# a non-zero count means solver failures are being papered over.
acct=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    cargo run --release --locked -p dotm-bench --bin table2)
echo "$acct" | grep -q "sim-failed classes:    0" || {
    echo "FAIL: sim-failed counter missing or non-zero"; echo "$acct"; exit 1; }
echo "$acct" | grep -q "inject-failed classes: 0" || {
    echo "FAIL: inject-failed counter missing or non-zero"; echo "$acct"; exit 1; }
echo "$acct" | grep -q "ladder-rung histogram:" || {
    echo "FAIL: ladder-rung histogram missing"; echo "$acct"; exit 1; }
echo "    failure counters present and zero"

echo "==> determinism: serial vs parallel fingerprints"
DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    cargo run --release --locked -p dotm-bench --bin par_speedup

echo "==> equivalence: warm start + cache never flip a verdict (ladder anchor)"
# Runs the fixed-seed anchor cold and warm+cached, asserts every class
# verdict is identical and that the warm path actually saves NR
# iterations; exits non-zero otherwise.
cargo run --release --locked -p dotm-bench --bin warm_speedup

echo "==> equivalence: fig4 identical with and without warm start + cache"
# The optimisations may only change solver effort, so the printed report
# must be identical modulo the solver-accounting lines (which exist to
# show exactly that effort).
strip_accounting() {
    grep -vE '^(solver accounting|  (sim-failed|inject-failed|escalated|excluded) classes:|  ladder-rung histogram:|  solver totals:|  warm starts:|  factor reuse:|  measurement cache:)' || true
}
fig4_on=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    DOTM_WARM_START=1 DOTM_MEASURE_CACHE=1 \
    cargo run --release --locked -p dotm-bench --bin fig4)
fig4_off=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    DOTM_WARM_START=0 DOTM_MEASURE_CACHE=0 \
    cargo run --release --locked -p dotm-bench --bin fig4)
diff <(echo "$fig4_on" | strip_accounting) <(echo "$fig4_off" | strip_accounting) || {
    echo "FAIL: warm start / measurement cache changed a reported number"; exit 1; }
echo "$fig4_on" | grep -E "warm starts:|measurement cache:" || true
echo "    reports identical modulo solver accounting"

echo "==> equivalence: factor reuse is bitwise-invisible (fig4, 1 and 4 threads)"
# The exact factor cache replays identical solution bytes, so toggling
# DOTM_FACTOR_REUSE may change nothing but the reuse-occupancy
# accounting line, at any thread count. (Rank updates are a separate,
# default-off knob gated by lu_speedup below — they change round-off
# and are deliberately NOT part of this bitwise gate.)
for threads in 1 4; do
    reuse_on=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_FACTOR_REUSE=1 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    reuse_off=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_FACTOR_REUSE=0 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    diff <(echo "$reuse_on" | strip_accounting) <(echo "$reuse_off" | strip_accounting) || {
        echo "FAIL: DOTM_FACTOR_REUSE changed a reported number ($threads threads)"; exit 1; }
done
echo "    reports identical modulo the reuse-occupancy accounting"

echo "==> equivalence: batched assembly is bitwise-invisible (fig4, 1 and 4 threads)"
# The split-plan batched path preserves the scalar path's per-cell
# addition sequence exactly, so toggling DOTM_BATCH_ASSEMBLY may change
# nothing at all — not even a counter. The diff is on the raw reports,
# no accounting strip.
for threads in 1 4; do
    batch_on=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_BATCH_ASSEMBLY=1 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    batch_off=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_BATCH_ASSEMBLY=0 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    diff <(echo "$batch_on") <(echo "$batch_off") || {
        echo "FAIL: DOTM_BATCH_ASSEMBLY changed the report ($threads threads)"; exit 1; }
done
echo "    reports byte-identical with the batch knob on and off"

echo "==> equivalence: lockstep variant evaluation is bitwise-invisible (fig4, 1 and 4 threads)"
# An adopted lane prime replays the exact bytes the scalar walk would
# have assembled and factored, and bumps no report counter, so toggling
# DOTM_VARIANT_LOCKSTEP may change nothing at all. Raw byte diff, no
# accounting strip — same bar as the batch-assembly gate.
for threads in 1 4; do
    lockstep_on=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_VARIANT_LOCKSTEP=1 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    lockstep_off=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
        DOTM_THREADS=$threads DOTM_VARIANT_LOCKSTEP=0 \
        cargo run --release --locked -p dotm-bench --bin fig4)
    diff <(echo "$lockstep_on") <(echo "$lockstep_off") || {
        echo "FAIL: DOTM_VARIANT_LOCKSTEP changed the report ($threads threads)"; exit 1; }
done
echo "    reports byte-identical with the lockstep knob on and off"

echo "==> equivalence + perf: rank updates never flip a verdict (ladder anchor)"
# Factors the nominal circuit once per analysis slot and applies each
# fault variant as a rank-k update; asserts every class verdict matches
# the full-refactorisation baseline, gates the LU-phase reduction and
# the reuse hit rate, and writes the counter summary for the
# perf-trajectory comparison. The speedup gate is relaxed here (the
# dedicated perf job tracks the trajectory); counters stay exact.
bench_json="${DOTM_BENCH_JSON:-$(mktemp)}"
DOTM_BENCH_JSON="$bench_json" DOTM_LU_MIN_SPEEDUP="${DOTM_LU_MIN_SPEEDUP:-1}" \
    cargo run --release --locked -p dotm-bench --bin lu_speedup

echo "==> perf trajectory: counter metrics vs committed baseline (soft)"
cargo run --release --locked -p dotm-bench --bin bench_compare -- \
    scripts/bench_baseline_6.json "$bench_json"

echo "==> equivalence + perf: batched assembly is bit-identical and faster (ladder anchor)"
# Runs the anchor with scalar and batched assembly; asserts the two
# reports are bit-for-bit identical, then gates the assembly-phase
# reduction. The speedup gate is relaxed here like the LU one (the perf
# job tracks the trajectory); the bitwise gate is absolute.
batch_json="${DOTM_BATCH_BENCH_JSON:-$(mktemp)}"
DOTM_BENCH_JSON="$batch_json" DOTM_BATCH_MIN_SPEEDUP="${DOTM_BATCH_MIN_SPEEDUP:-1}" \
    cargo run --release --locked -p dotm-bench --bin batch_speedup

echo "==> perf trajectory: batch counter metrics vs committed baseline (soft)"
cargo run --release --locked -p dotm-bench --bin bench_compare -- \
    scripts/bench_baseline_7.json "$batch_json"

echo "==> equivalence + perf: lockstep variant evaluation is bit-identical and faster (ladder anchor)"
# Runs the anchor with the sequential walk and the lockstep SoA path;
# asserts the two reports are bit-for-bit identical and the pre-pass
# actually primed lanes, then gates the class-eval (assembly+LU) phase
# cut. Unlike the wall-clock gates this ratio compares two in-process
# phase accumulators from the same run pair, so the full 1.3x floor
# holds even on shared runners; the pre-pass cost is reported beside it
# in the JSON.
variant_json="${DOTM_VARIANT_BENCH_JSON:-$(mktemp)}"
DOTM_BENCH_JSON="$variant_json" DOTM_VARIANT_MIN_SPEEDUP="${DOTM_VARIANT_MIN_SPEEDUP:-1.3}" \
    cargo run --release --locked -p dotm-bench --bin variant_speedup

echo "==> perf trajectory: lockstep counter metrics vs committed baseline (soft)"
cargo run --release --locked -p dotm-bench --bin bench_compare -- \
    scripts/bench_baseline_10.json "$variant_json"

echo "==> persistence: campaign store cold -> warm -> kill/resume -> corrupt"
# The persistent-campaign gate, on a small fixed-seed configuration:
#   1. cold run populates the store;
#   2. a warm rerun must answer *everything* from the store
#      (DOTM_EXPECT_WARM makes the binary itself exit non-zero on any
#      computed measurement), with identical fingerprints and an
#      identical Fig. 4 report;
#   3. a run killed via the injected abort and resumed must land on the
#      same fingerprints;
#   4. a corrupted store entry must degrade to a recomputed miss — same
#      fingerprints, clean exit — never a wrong verdict or a crash.
store_dir=$(mktemp -d)
shard_dir=$(mktemp -d)
trap 'rm -rf "$store_dir" "$shard_dir"' EXIT
camp_env=(DOTM_DEFECTS=2000 DOTM_MAX_CLASSES=8 DOTM_GS_COMMON=2 DOTM_GS_MM=2
    DOTM_STORE_DIR="$store_dir")
camp_cmd="cargo run --release --locked -p dotm-bench --bin campaign"
fingerprints() { grep -o 'fingerprint=[0-9a-f]*' || true; }
# The report body must be identical run to run; only the store counters
# (which exist to show the effort difference) may move. Wall-clock never
# appears on stdout — the report is a pure function of config + store.
strip_effort() {
    sed -E -e 's/ +store: [^ ]+( [a-z_]+=[0-9]+)*//' \
        -e '/^campaign store accounting:/d'
}

cold=$(env "${camp_env[@]}" $camp_cmd)
warm=$(env "${camp_env[@]}" DOTM_EXPECT_WARM=1 $camp_cmd)
echo "$warm" | grep -q "hit_rate=100.0%" || {
    echo "FAIL: warm campaign missed the store"; echo "$warm"; exit 1; }
echo "$warm" | grep -q " computed=0 " || {
    echo "FAIL: warm campaign ran the solver"; echo "$warm"; exit 1; }
diff <(echo "$cold" | strip_effort) <(echo "$warm" | strip_effort) || {
    echo "FAIL: warm campaign changed a reported number"; exit 1; }
echo "    warm rerun: 100% store hits, zero solver calls, identical report"

# An injected abort is an interruption at a resumable point: its exit
# code is the INTERRUPTED contract value (5), not success and not a
# generic failure — supervisors requeue on it without parsing output.
set +e
aborted_out=$(env "${camp_env[@]}" DOTM_ABORT_AFTER=5 $camp_cmd)
aborted_rc=$?
set -e
[ "$aborted_rc" -eq 5 ] || {
    echo "FAIL: injected abort exited $aborted_rc, expected 5"; exit 1; }
echo "$aborted_out" | grep -q "aborted on request" || {
    echo "FAIL: injected abort did not stop the campaign"; exit 1; }
# A bad macro selection is a usage error: exit 2, nothing runs.
set +e
env "${camp_env[@]}" DOTM_MACROS=no_such_macro $camp_cmd >/dev/null 2>&1
usage_rc=$?
set -e
[ "$usage_rc" -eq 2 ] || {
    echo "FAIL: unknown DOTM_MACROS exited $usage_rc, expected 2"; exit 1; }
echo "    exit codes: abort=5 (interrupted), unknown macro=2 (usage)"
resumed=$(env "${camp_env[@]}" $camp_cmd -- --resume)
diff <(echo "$cold" | fingerprints) <(echo "$resumed" | fingerprints) || {
    echo "FAIL: resumed campaign fingerprints differ"; exit 1; }
echo "    killed + resumed campaign is fingerprint-identical"

# sed, not head: head exits early and the resulting SIGPIPE trips pipefail.
entry=$(find "$store_dir/meas" -type f -name '*.ent' | sort | sed -n 1p)
[ -n "$entry" ] || { echo "FAIL: store has no entries"; exit 1; }
truncate -s -1 "$entry"
corrupt=$(env "${camp_env[@]}" $camp_cmd)
diff <(echo "$cold" | fingerprints) <(echo "$corrupt" | fingerprints) || {
    echo "FAIL: corrupt store entry changed a fingerprint"; exit 1; }
echo "$corrupt" | grep -q "write_errors=0" || {
    echo "FAIL: store rewrite failed"; echo "$corrupt"; exit 1; }
echo "    corrupt entry: graceful recompute, fingerprints unchanged"

echo "==> sharding: 2-worker campaign + merge is byte-identical to single-process"
# The sharded tentpole gate: a coordinator run — 2 worker processes,
# each killed mid-shard on its first dispatch (DOTM_SHARD_ABORT_ONCE)
# and re-dispatched to resume its segment prefix — must reproduce the
# single-process run exactly: per-macro fingerprints, the full report
# body (modulo effort counters), the deterministic store-occupancy line
# and every canonical journal's bytes.
shard_env=(DOTM_DEFECTS=2000 DOTM_MAX_CLASSES=8 DOTM_GS_COMMON=2 DOTM_GS_MM=2
    DOTM_STORE_DIR="$shard_dir")
sharded=$(env "${shard_env[@]}" DOTM_SHARD_ABORT_ONCE=2 $camp_cmd -- --workers 2)
diff <(echo "$cold" | fingerprints) <(echo "$sharded" | fingerprints) || {
    echo "FAIL: sharded campaign fingerprints differ from single-process"; exit 1; }
# Whole-report diff: only the store paths in the header line and the
# effort counters may differ.
strip_header() { sed '/^persistent campaign:/d'; }
diff <(echo "$cold" | strip_effort | strip_header) \
     <(echo "$sharded" | strip_effort | strip_header) || {
    echo "FAIL: sharded campaign changed a reported number"; exit 1; }
echo "$sharded" | grep -q "^campaign store occupancy:" || {
    echo "FAIL: occupancy accounting line missing"; exit 1; }
for jnl in "$store_dir"/journal/*.jnl; do
    name=$(basename "$jnl")
    case "$name" in *.shard-*) continue;; esac
    cmp "$jnl" "$shard_dir/journal/$name" || {
        echo "FAIL: merged journal $name differs from single-process bytes"; exit 1; }
done
echo "    kill-mid-shard + re-dispatch + merge: fingerprints, report and journal bytes identical"

echo "==> equivalence + perf: sharded byte-identity bench (shard_speedup)"
# Spawns the campaign binary single-process and as a 2-worker
# coordinator against fresh trees; hard-gates the identity verdicts and
# reports the honest wall-clock ratio (no speedup floor on a one-core
# runner).
shard_json="${DOTM_SHARD_BENCH_JSON:-$(mktemp)}"
DOTM_BENCH_JSON="$shard_json" \
    cargo run --release --locked -p dotm-bench --bin shard_speedup

echo "==> perf trajectory: shard counter metrics vs committed baseline (soft)"
cargo run --release --locked -p dotm-bench --bin bench_compare -- \
    scripts/bench_baseline_8.json "$shard_json"

echo "==> service: campaign-as-a-service round-trip (serve_roundtrip)"
# Boots campaign --serve on a loopback port, submits the anchor job over
# HTTP, streams its NDJSON progress events, and hard-gates the contract:
# the HTTP report is byte-identical to a plain CLI campaign over the
# same store path, resubmission answers cached from the finished job,
# and a forced fresh re-run over the warmed store performs zero solver
# work (misses=0 computed=0) with every fingerprint reproduced.
serve_json="${DOTM_SERVE_BENCH_JSON:-$(mktemp)}"
DOTM_BENCH_JSON="$serve_json" \
    cargo run --release --locked -p dotm-bench --bin serve_roundtrip

echo "==> perf trajectory: service counter metrics vs committed baseline (soft)"
cargo run --release --locked -p dotm-bench --bin bench_compare -- \
    scripts/bench_baseline_9.json "$serve_json"

echo "==> observability: traced fig4 is a pure side channel"
# DOTM_TRACE=1 must leave stdout byte-identical (the per-phase profile
# goes to stderr, the events to DOTM_TRACE_DIR) and the exported NDJSON
# must pass the structural validator (unique ids, parents on the same
# thread containing their children).
trace_dir="$store_dir/trace"
mkdir -p "$trace_dir"
fig4_traced=$(DOTM_DEFECTS=3000 DOTM_MAX_CLASSES=10 DOTM_GS_COMMON=3 DOTM_GS_MM=2 \
    DOTM_TRACE=1 DOTM_TRACE_DIR="$trace_dir" \
    cargo run --release --locked -p dotm-bench --bin fig4)
diff <(echo "$fig4_on") <(echo "$fig4_traced") || {
    echo "FAIL: DOTM_TRACE=1 changed fig4's stdout"; exit 1; }
[ -s "$trace_dir/fig4.ndjson" ] || {
    echo "FAIL: traced run exported no NDJSON"; exit 1; }
[ -s "$trace_dir/fig4.trace.json" ] || {
    echo "FAIL: traced run exported no chrome trace"; exit 1; }
cargo run --release --locked -p dotm-bench --bin tracecheck -- \
    "$trace_dir/fig4.ndjson" || {
    echo "FAIL: exported NDJSON is structurally invalid"; exit 1; }
echo "    traced stdout identical, NDJSON validates"

echo "==> verify: all green"
