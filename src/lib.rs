//! # DOTM — Defect-Oriented Test Methodology for mixed-signal circuits
//!
//! Umbrella crate re-exporting the full workspace. See the individual
//! crates for details:
//!
//! * [`netlist`] — circuit netlists and fault-editing operations
//! * [`sim`] — analog (SPICE-class) circuit simulator
//! * [`layout`] — mask-level layout geometry and extraction
//! * [`defects`] — VLASIC-style Monte-Carlo defect simulator
//! * [`faults`] — circuit-level fault models and injection
//! * [`adc`] — the Flash ADC case-study macros
//! * [`core`] — the defect-oriented test path, signatures and global results

pub use dotm_adc as adc;
pub use dotm_core as core;
pub use dotm_defects as defects;
pub use dotm_faults as faults;
pub use dotm_layout as layout;
pub use dotm_netlist as netlist;
pub use dotm_sim as sim;
