//! The parallel executor's determinism contract, asserted end to end:
//! the same seed must produce a bit-for-bit identical [`MacroReport`]
//! at every thread count, and fixed seeds must keep producing the same
//! fault population and paper-band statistics from build to build.

use dotm::core::harnesses::{ComparatorHarness, LadderHarness};
use dotm::core::{
    detectability, run_macro_path, run_macro_path_with_faults, ExecConfig, GoodSpaceConfig,
    MacroHarness, MacroReport, PipelineConfig,
};
use dotm::defects::{sprinkle_collapsed, Sprinkler};
use dotm::faults::Severity;

fn comparator_config(threads: usize, measure_cache: bool) -> PipelineConfig {
    PipelineConfig {
        defects: 4_000,
        seed: 1995,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 1995 ^ 0xD07,
            exec: ExecConfig::with_threads(threads),
            ..GoodSpaceConfig::default()
        },
        max_classes: Some(12),
        non_catastrophic: true,
        exec: ExecConfig::with_threads(threads),
        measure_cache,
        ..PipelineConfig::default()
    }
}

/// Runs the comparator evaluation on a shared pre-sprinkled population,
/// so the two runs differ only in thread count (or cache setting).
fn run_comparator(threads: usize, measure_cache: bool) -> MacroReport {
    run_comparator_cfg(comparator_config(threads, measure_cache))
}

fn run_comparator_cfg(cfg: PipelineConfig) -> MacroReport {
    let harness = ComparatorHarness::production();
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    run_macro_path_with_faults(&harness, &cfg, &collapsed, area).expect("comparator path")
}

#[test]
fn comparator_report_is_thread_count_invariant() {
    // Warm start and the measurement cache are both on (the defaults):
    // the invariance contract has to hold on the path users actually run.
    let serial = run_comparator(1, true);
    let parallel = run_comparator(4, true);

    // Field-by-field, not just the digest, so a mismatch names the class.
    assert_eq!(serial.total_faults, parallel.total_faults);
    assert_eq!(serial.class_count, parallel.class_count);
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.count, b.count, "class {}", a.key);
        assert_eq!(a.severity, b.severity, "class {}", a.key);
        assert_eq!(a.voltage, b.voltage, "class {}", a.key);
        assert_eq!(a.currents, b.currents, "class {}", a.key);
        assert_eq!(a.flagged, b.flagged, "class {}", a.key);
        assert_eq!(a.sim_failed, b.sim_failed, "class {}", a.key);
        assert_eq!(a.inject_failed, b.inject_failed, "class {}", a.key);
        assert_eq!(a.rung, b.rung, "class {}", a.key);
        assert_eq!(a.inject_errors, b.inject_errors, "class {}", a.key);
        assert_eq!(a.excluded, b.excluded, "class {}", a.key);
        assert_eq!(a.solver, b.solver, "class {}", a.key);
    }
    // The solver telemetry is order-independent counter addition, so the
    // aggregates must also be thread-count-invariant.
    assert_eq!(serial.goodspace_solver, parallel.goodspace_solver);
    assert_eq!(
        serial.goodspace_corner_retries,
        parallel.goodspace_corner_retries
    );
    assert_eq!(serial.solver_totals(), parallel.solver_totals());
    assert_eq!(serial.rung_histogram(), parallel.rung_histogram());
    // Cache occupancy is scheduling-free by construction (lookups are a
    // global count, entries are distinct keys), so it must match too.
    assert_eq!(serial.cache_lookups, parallel.cache_lookups);
    assert_eq!(serial.cache_entries, parallel.cache_entries);
    // And the digest covers everything else (floats bit-for-bit).
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
}

#[test]
fn measurement_cache_is_invisible_in_the_report() {
    // A cache hit replays the memoized measurement *and* its solver
    // telemetry, so a cached run must be bit-for-bit identical to an
    // uncached one — the only trace is the cache-occupancy counters
    // themselves, which are zeroed here before fingerprinting.
    let mut cached = run_comparator(2, true);
    let mut uncached = run_comparator(2, false);
    assert!(
        cached.cache_lookups > 0,
        "cached run must route measurements through the cache"
    );
    assert!(cached.cache_entries <= cached.cache_lookups);
    assert_eq!(uncached.cache_lookups, 0);
    assert_eq!(uncached.cache_entries, 0);
    cached.cache_lookups = 0;
    cached.cache_entries = 0;
    uncached.cache_lookups = 0;
    uncached.cache_entries = 0;
    assert_eq!(cached.fingerprint(), uncached.fingerprint());
}

#[test]
fn factor_reuse_is_invisible_in_the_report() {
    // The bitwise factor cache only fires on *identical* system matrices,
    // so it replays the exact same solution bytes a fresh factorisation
    // would produce. Toggling `DOTM_FACTOR_REUSE` must therefore leave
    // every reported bit unchanged — the only trace is the reuse
    // occupancy counters, which are zeroed here before fingerprinting
    // (the counters live in the per-class solver telemetry, unlike the
    // report-level measurement-cache counters).
    let scrub = |report: &mut MacroReport| {
        for o in &mut report.outcomes {
            o.solver.factor_reuse_hits = 0;
            o.solver.factor_refactor_fallbacks = 0;
        }
        report.goodspace_solver.factor_reuse_hits = 0;
        report.goodspace_solver.factor_refactor_fallbacks = 0;
    };
    let mut on = run_comparator_cfg(PipelineConfig {
        factor_reuse: true,
        ..comparator_config(2, true)
    });
    let mut off = run_comparator_cfg(PipelineConfig {
        factor_reuse: false,
        ..comparator_config(2, true)
    });
    assert_eq!(off.solver_totals().factor_reuse_hits, 0);
    assert_eq!(off.solver_totals().factor_refactor_fallbacks, 0);
    scrub(&mut on);
    scrub(&mut off);
    assert_eq!(on.solver_totals(), off.solver_totals());
    assert_eq!(on.fingerprint(), off.fingerprint());
}

#[test]
fn batch_assembly_is_invisible_in_the_report() {
    // Batched assembly replays exactly the per-cell addition sequence of
    // the scalar path (gmin first, then constant stamps ascending in plan
    // order), so toggling `DOTM_BATCH_ASSEMBLY` must leave every reported
    // bit unchanged — no scrub at all, the path adds no counters. Checked
    // at both thread counts so the shared-baseline Arc is exercised under
    // real executor contention.
    let with_batch = |threads, batch_assembly| {
        run_comparator_cfg(PipelineConfig {
            batch_assembly,
            ..comparator_config(threads, true)
        })
    };
    let on_serial = with_batch(1, true);
    let off_serial = with_batch(1, false);
    let on_parallel = with_batch(4, true);
    let off_parallel = with_batch(4, false);
    assert_eq!(on_serial.solver_totals(), off_serial.solver_totals());
    assert_eq!(on_serial.fingerprint(), off_serial.fingerprint());
    assert_eq!(on_serial.fingerprint(), on_parallel.fingerprint());
    assert_eq!(on_serial.fingerprint(), off_parallel.fingerprint());
}

#[test]
fn variant_lockstep_is_invisible_in_the_report() {
    // The lockstep pre-pass captures each variant lane's first DC Newton
    // system and factors all lanes in one blocked kernel with per-lane
    // pivoting; an adopted prime replays the exact bytes the scalar walk
    // would have assembled and factored, and adoption bumps no solver
    // counter. Toggling `DOTM_VARIANT_LOCKSTEP` must therefore leave
    // every reported bit unchanged — no scrub at all. The ladder macro is
    // the harness that opts in (single plain-DC analysis), and
    // `non_catastrophic: true` gives bridge classes two severity lanes so
    // the blocked kernel actually runs.
    let with_lockstep = |threads: usize, variant_lockstep: bool| {
        let cfg = PipelineConfig {
            defects: 4_000,
            seed: 1995,
            goodspace: GoodSpaceConfig {
                common_samples: 3,
                mismatch_samples: 2,
                seed: 1995 ^ 0xD07,
                exec: ExecConfig::with_threads(threads),
                ..GoodSpaceConfig::default()
            },
            max_classes: Some(24),
            non_catastrophic: true,
            exec: ExecConfig::with_threads(threads),
            variant_lockstep,
            ..PipelineConfig::default()
        };
        run_macro_path(&LadderHarness, &cfg).expect("ladder path")
    };
    let on_serial = with_lockstep(1, true);
    let off_serial = with_lockstep(1, false);
    let on_parallel = with_lockstep(4, true);
    let off_parallel = with_lockstep(4, false);
    assert_eq!(on_serial.solver_totals(), off_serial.solver_totals());
    assert_eq!(on_serial.fingerprint(), off_serial.fingerprint());
    assert_eq!(on_serial.fingerprint(), on_parallel.fingerprint());
    assert_eq!(on_serial.fingerprint(), off_parallel.fingerprint());
}

#[test]
fn rank_update_report_is_thread_count_invariant() {
    // Rank updates change round-off relative to full refactorisation (the
    // `lu_speedup` bench gates verdict preservation), but within the
    // rank-update configuration every class is still a pure function of
    // its inputs — the determinism contract must hold at every thread
    // count with both factorisation knobs on.
    let with_knobs = |threads| {
        run_comparator_cfg(PipelineConfig {
            factor_reuse: true,
            rank_update: true,
            ..comparator_config(threads, true)
        })
    };
    let serial = with_knobs(1);
    let parallel = with_knobs(4);
    assert!(
        serial.solver_totals().factor_reuse_hits > 0,
        "the factor-reuse path must actually be exercised"
    );
    assert_eq!(serial.solver_totals(), parallel.solver_totals());
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
}

#[test]
fn fixed_seed_anchor_invariants() {
    let cfg = PipelineConfig {
        defects: 20_000,
        seed: 2026,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        non_catastrophic: true,
        ..PipelineConfig::default()
    };
    let report = run_macro_path(&LadderHarness, &cfg).expect("ladder path");
    // The sprinkle → collapse front end is a pure function of the seed:
    // these counts must not drift between builds, hosts or thread counts.
    // (If a deliberate change to the PRNG, the sprinkler or the collapse
    // keys moves them, re-pin the anchors in the same commit.)
    assert_eq!(report.total_faults, 645, "fault population drifted");
    assert_eq!(report.class_count, 417, "collapse classes drifted");
    // The back end is simulation; hold the statistics to the paper's
    // bands rather than exact values. This seed sits at 93.3 % coverage —
    // the figure the paper reports for the complete ADC.
    let coverage = report.coverage(Severity::Catastrophic);
    assert!(
        (90.0..=96.0).contains(&coverage),
        "ladder coverage {coverage:.1}% left the 93%-band"
    );
    let d = detectability(&report, Severity::Catastrophic);
    assert!(
        (60.0..=80.0).contains(&d.missing_code_pct),
        "ladder missing-code {:.1}% left its band",
        d.missing_code_pct
    );
}
