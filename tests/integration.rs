//! Workspace-level integration tests: the full defect-oriented test path
//! exercised across every crate boundary, on populations small enough for
//! CI.

use dotm::core::harnesses::{ClockgenHarness, ComparatorHarness, DecoderHarness, LadderHarness};
use dotm::core::{detectability, run_macro_path, GlobalReport, GoodSpaceConfig, PipelineConfig};
use dotm::faults::Severity;

fn fast_config(defects: usize) -> PipelineConfig {
    PipelineConfig {
        defects,
        seed: 2026,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        non_catastrophic: true,
        ..PipelineConfig::default()
    }
}

#[test]
fn ladder_path_end_to_end() {
    let report = run_macro_path(&LadderHarness, &fast_config(20_000)).expect("ladder path");
    assert!(report.total_faults > 100);
    let d = detectability(&report, Severity::Catastrophic);
    // Tap shorts lose codes: the ladder is overwhelmingly voltage-testable.
    // (Band sits below the ~69.5 % this seed produces under the in-tree
    // PRNG; the exact figure moves with the sampled fault population.)
    assert!(
        d.missing_code_pct > 65.0,
        "ladder missing-code {:.1}%",
        d.missing_code_pct
    );
    assert!(
        d.coverage_pct > 80.0,
        "ladder coverage {:.1}%",
        d.coverage_pct
    );
}

#[test]
fn clockgen_path_end_to_end() {
    let report =
        run_macro_path(&ClockgenHarness::default(), &fast_config(20_000)).expect("clockgen path");
    assert!(report.total_faults > 100);
    let d = detectability(&report, Severity::Catastrophic);
    // The paper: 93.8 % of clock-generator faults are current-detectable.
    assert!(
        d.current_pct > 75.0,
        "clockgen current detectability {:.1}%",
        d.current_pct
    );
    assert!(d.coverage_pct > 85.0);
}

#[test]
fn decoder_path_end_to_end() {
    let report =
        run_macro_path(&DecoderHarness::default(), &fast_config(20_000)).expect("decoder path");
    let d = detectability(&report, Severity::Catastrophic);
    // A digital cell: near-complete coverage through bitline observation
    // plus IDDQ.
    assert!(
        d.coverage_pct > 95.0,
        "decoder coverage {:.1}%",
        d.coverage_pct
    );
}

#[test]
fn comparator_path_smoke_with_truncated_classes() {
    let mut cfg = fast_config(4_000);
    cfg.max_classes = Some(12);
    cfg.non_catastrophic = false;
    let report = run_macro_path(&ComparatorHarness::production(), &cfg).expect("comparator path");
    let d = detectability(&report, Severity::Catastrophic);
    // The dominant classes are trunk bridges; most are detectable.
    assert!(d.coverage_pct > 55.0, "coverage {:.1}%", d.coverage_pct);
    assert!(
        d.current_pct > 40.0,
        "current detectability {:.1}%",
        d.current_pct
    );
}

#[test]
fn global_compilation_weighs_macros() {
    let ladder = run_macro_path(&LadderHarness, &fast_config(10_000)).expect("ladder");
    let clock = run_macro_path(&ClockgenHarness::default(), &fast_config(10_000)).expect("clock");
    let global = GlobalReport::new(vec![ladder, clock]);
    let d = global.detectability(Severity::Catastrophic);
    assert!(d.coverage_pct > 50.0 && d.coverage_pct <= 100.0);
    // The weighted average must sit between the per-macro extremes.
    let per: Vec<f64> = global
        .macros()
        .iter()
        .map(|r| r.coverage(Severity::Catastrophic))
        .collect();
    let lo = per.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = per.iter().cloned().fold(0.0f64, f64::max);
    assert!(d.coverage_pct >= lo - 1e-9 && d.coverage_pct <= hi + 1e-9);
}

#[test]
fn umbrella_crate_reexports_whole_stack() {
    // Compile-time check that the umbrella exposes every layer.
    let _nl = dotm::netlist::Netlist::new("x");
    let _lo = dotm::layout::Layout::new("x");
    let _stats = dotm::defects::DefectStatistics::default();
    let _inj = dotm::faults::Injector::default();
    let _adc = dotm::adc::behavior::FlashAdc::ideal();
    let _tt = dotm::core::TestTimeModel::default();
}

#[test]
fn fault_dictionary_diagnoses_ladder_outcomes() {
    use dotm::core::{compact_current_tests, FaultDictionary};

    let report = run_macro_path(&LadderHarness, &fast_config(15_000)).expect("ladder path");
    let dict = FaultDictionary::from_report(&report, Severity::Catastrophic);
    assert!(dict.len() > 20);
    // Diagnose the most common outcome pattern: pick a detected class and
    // feed its own prediction back in — it must rank at the top of its
    // exact-match group, and scores must normalise.
    let probe = report
        .outcomes_of(Severity::Catastrophic)
        .filter(|o| o.detection.detected())
        .max_by_key(|o| o.count)
        .expect("some detected class");
    let ranked = dict.diagnose(probe.detection);
    assert!(!ranked.is_empty());
    assert_eq!(ranked[0].mismatches, 0, "top candidate must match exactly");
    let sum: f64 = ranked.iter().map(|c| c.score).sum();
    assert!((sum - 1.0).abs() < 1e-9);
    // The four-bit outcome pattern cannot distinguish the hundreds of
    // tap-to-tap short classes (they all read "missing codes only"), so
    // the ladder's dictionary resolution is genuinely low — diagnosing a
    // ladder fault needs the *identity* of the missing code, not just the
    // pass/fail pattern. The resolution metric must reflect that honestly.
    let res = dict.resolution();
    assert!(res > 0.0 && res < 0.5, "resolution {res}");

    // And the current-test compaction runs on the same report.
    let compacted = compact_current_tests(&LadderHarness, &report, Severity::Catastrophic);
    assert!(compacted.selected_count() <= compacted.available);
    if let Some(last) = compacted.steps.last() {
        assert!((last.cumulative_coverage - 1.0).abs() < 1e-9);
    }
}

#[test]
fn injection_succeeds_for_every_sprinkled_class() {
    // Completeness: every fault class the sprinkler extracts from the
    // comparator layout must be injectable into the comparator testbench
    // (net names and device names line up end to end).
    use dotm::core::harnesses::ComparatorHarness;
    use dotm::core::MacroHarness;
    use dotm::defects::{sprinkle_collapsed, DefectStatistics, Sprinkler};
    use dotm::faults::Injector;

    let harness = ComparatorHarness::production();
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let collapsed = sprinkle_collapsed(&sprinkler, 30_000, 77);
    assert!(collapsed.class_count() > 50);
    let injector = Injector::default();
    let base = harness.testbench();
    let mut failures = Vec::new();
    for class in &collapsed.classes {
        let effect = &class.representative.effect;
        for variant in 0..injector.variant_count(effect) {
            let mut nl = base.clone();
            if let Err(e) = injector.inject(&mut nl, effect, Severity::Catastrophic, variant, "flt")
            {
                failures.push(format!("{}: {e}", class.key));
            }
        }
    }
    assert!(failures.is_empty(), "injection failures: {failures:#?}");
}
