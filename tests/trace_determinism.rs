//! The observability layer's central contract: tracing is a **pure side
//! channel**. With `dotm_obs` recording every span, phase and counter, a
//! store-backed, journaled run must produce
//!
//! * the same report fingerprint,
//! * byte-identical journal files, and
//! * a byte-identical store tree
//!
//! as the same run with the recorder off — at any thread count. The trace
//! itself must export as valid NDJSON whose spans nest correctly.
//!
//! The recorder is a process-wide singleton, so the tests in this file
//! serialize on a mutex and always disable it before returning.

use dotm::core::harnesses::ComparatorHarness;
use dotm::core::{
    run_macro_path_with_faults, run_macro_path_with_faults_hooked, ClassObserver, ClassOutcome,
    ExecConfig, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig, PipelineHooks,
};
use dotm::defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use dotm_store::{pipeline_context, DiskStore, JournalHeader, JournalWriter};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes tests that toggle the global recorder.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        defects: 4_000,
        seed: 1995,
        goodspace: GoodSpaceConfig {
            common_samples: 2,
            mismatch_samples: 2,
            seed: 1995 ^ 0xD07,
            exec: ExecConfig::with_threads(threads),
            ..GoodSpaceConfig::default()
        },
        max_classes: Some(6),
        non_catastrophic: true,
        exec: ExecConfig::with_threads(threads),
        measure_cache: false,
        ..PipelineConfig::default()
    }
}

struct Fixture {
    harness: ComparatorHarness,
    collapsed: CollapseReport,
    area: f64,
}

fn fixture() -> Fixture {
    let harness = ComparatorHarness::production();
    let cfg = config(1);
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    Fixture {
        harness,
        collapsed,
        area,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dotm-trace-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Journals every class; never aborts.
struct JournalingObserver {
    writer: Mutex<Option<JournalWriter>>,
}

impl ClassObserver for JournalingObserver {
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
            .expect("journal open")
            .record_class(index, outcomes)
            .expect("journal write");
        true
    }
}

/// One store-backed, journaled run into `dir`.
fn campaign_run(fx: &Fixture, dir: &Path, threads: usize) -> MacroReport {
    let cfg = config(threads);
    let head = JournalHeader {
        context: pipeline_context(&fx.harness, &cfg),
        macro_name: fx.harness.name().to_string(),
        classes: fx
            .collapsed
            .class_count()
            .min(cfg.max_classes.unwrap_or(usize::MAX)),
    };
    let store = DiskStore::open(dir, head.context).expect("open store");
    let journal_path = dir.join("journal").join("comparator.jnl");
    let writer = JournalWriter::create(&journal_path, &head).expect("create journal");
    let observer = JournalingObserver {
        writer: Mutex::new(Some(writer)),
    };
    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(&observer),
        completed: Vec::new(),
        shard: None,
    };
    let report =
        run_macro_path_with_faults_hooked(&fx.harness, &cfg, &fx.collapsed, fx.area, &hooks)
            .expect("macro path must run");
    observer
        .writer
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("journal still open")
        .finish(report.fingerprint())
        .expect("seal journal");
    report
}

/// Recursively lists `dir` as (relative path, file bytes), sorted.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

#[test]
fn tracing_never_changes_a_persisted_byte() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fx = fixture();

    for threads in [1, 4] {
        let dir_off = tmpdir(&format!("off-{threads}"));
        dotm_obs::set_enabled(false);
        let off = campaign_run(&fx, &dir_off, threads);

        let dir_on = tmpdir(&format!("on-{threads}"));
        dotm_obs::reset();
        dotm_obs::set_enabled(true);
        let on = campaign_run(&fx, &dir_on, threads);
        dotm_obs::set_enabled(false);

        assert_eq!(
            on.fingerprint(),
            off.fingerprint(),
            "report fingerprint must not see the recorder (threads={threads})"
        );
        let a = snapshot(&dir_off);
        let b = snapshot(&dir_on);
        assert_eq!(
            a.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            b.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            "same store and journal files (threads={threads})"
        );
        for ((path, bytes_off), (_, bytes_on)) in a.iter().zip(&b) {
            assert_eq!(
                bytes_off, bytes_on,
                "{path} differs under tracing (threads={threads})"
            );
        }
        let _ = fs::remove_dir_all(&dir_off);
        let _ = fs::remove_dir_all(&dir_on);
    }
}

#[test]
fn exported_trace_is_valid_and_nested() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fx = fixture();
    let cfg = config(2);

    dotm_obs::reset();
    dotm_obs::set_enabled(true);
    run_macro_path_with_faults(&fx.harness, &cfg, &fx.collapsed, fx.area).expect("traced run");
    let ndjson = dotm_obs::render_ndjson();
    let chrome = dotm_obs::render_chrome();
    dotm_obs::set_enabled(false);

    let summary = dotm_obs::validate_ndjson(&ndjson).expect("exported NDJSON must validate");
    assert!(summary.spans > 0, "a pipeline run opens spans");
    assert!(summary.roots > 0);
    assert!(
        summary.spans > summary.roots,
        "macro/class/analysis spans nest below a root"
    );
    assert!(summary.phases > 0, "Newton/assembly/LU phases accumulate");
    assert!(chrome.starts_with("{\"traceEvents\":["));

    // The macro → class → analysis hierarchy is present by name.
    for needle in [
        "\"name\":\"macro comparator\"",
        "\"cat\":\"class\"",
        "\"cat\":\"analysis\"",
    ] {
        assert!(ndjson.contains(needle), "trace is missing {needle}");
    }
}
