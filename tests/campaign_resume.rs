//! The persistent campaign's contracts, end to end on the fixed-seed
//! comparator fixture:
//!
//! * a run killed after N classes (via the injected observer abort — no
//!   real signal) and resumed from its journal produces a bit-identical
//!   `MacroReport` fingerprint, and a byte-identical journal, to an
//!   uninterrupted run;
//! * a second (warm) run answers every measurement from the store —
//!   zero computed entries, i.e. zero Newton iterations on stored
//!   classes — at any thread count, with an identical fingerprint;
//! * serial and multi-threaded runs write byte-identical store contents;
//! * a corrupted store entry degrades to a recomputed miss, never a
//!   wrong verdict, an error, or a crash.

use dotm::core::harnesses::ComparatorHarness;
use dotm::core::{
    run_macro_path_with_faults, run_macro_path_with_faults_hooked, ClassObserver, ClassOutcome,
    ExecConfig, GoodSpaceConfig, MacroHarness, MacroReport, PathError, PipelineConfig,
    PipelineHooks, ShardSpec,
};
use dotm::defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use dotm_store::{
    corrupt_one_entry, create_segment, load_journal, load_segment, merge_segments,
    pipeline_context, segment_path, DiskStore, JournalHeader, JournalWriter,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        defects: 4_000,
        seed: 1995,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 1995 ^ 0xD07,
            exec: ExecConfig::with_threads(threads),
            ..GoodSpaceConfig::default()
        },
        max_classes: Some(12),
        non_catastrophic: true,
        exec: ExecConfig::with_threads(threads),
        // Campaign mode: the store's in-memory overlay replaces the
        // per-run measurement cache (whose occupancy counters cannot be
        // reconstructed for journal-replayed classes).
        measure_cache: false,
        ..PipelineConfig::default()
    }
}

struct Fixture {
    harness: ComparatorHarness,
    collapsed: CollapseReport,
    area: f64,
}

fn fixture() -> Fixture {
    let harness = ComparatorHarness::production();
    let cfg = config(1);
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    Fixture {
        harness,
        collapsed,
        area,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dotm-campaign-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn classes_of(fx: &Fixture, cfg: &PipelineConfig) -> usize {
    match cfg.max_classes {
        Some(n) => fx.collapsed.class_count().min(n),
        None => fx.collapsed.class_count(),
    }
}

fn header(fx: &Fixture, cfg: &PipelineConfig) -> JournalHeader {
    JournalHeader {
        context: pipeline_context(&fx.harness, cfg),
        macro_name: fx.harness.name().to_string(),
        classes: classes_of(fx, cfg),
    }
}

/// Journals completed classes and aborts after `abort_after` of them
/// (`usize::MAX` = never) — the signal-free stand-in for a kill.
struct TestObserver {
    writer: Mutex<Option<JournalWriter>>,
    seen: AtomicUsize,
    abort_after: usize,
}

impl TestObserver {
    fn new(writer: JournalWriter, abort_after: usize) -> Self {
        TestObserver {
            writer: Mutex::new(Some(writer)),
            seen: AtomicUsize::new(0),
            abort_after,
        }
    }

    fn take_writer(&self) -> JournalWriter {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("writer present")
    }
}

impl ClassObserver for TestObserver {
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
            .expect("journal open")
            .record_class(index, outcomes)
            .expect("journal write");
        self.seen.fetch_add(1, Ordering::Relaxed) + 1 < self.abort_after
    }
}

/// One journaled, store-backed run. Returns the report (sealing the
/// journal) or the abort error.
fn campaign_run(
    fx: &Fixture,
    dir: &Path,
    threads: usize,
    resume: bool,
    abort_after: usize,
) -> Result<(MacroReport, dotm_store::StoreCounters), PathError> {
    let cfg = config(threads);
    let head = header(fx, &cfg);
    let store = DiskStore::open(dir, head.context).expect("open store");
    let journal_path = dir.join("journal").join("comparator.jnl");
    let completed = if resume {
        load_journal(&journal_path, &head).completed
    } else {
        Vec::new()
    };
    let writer = JournalWriter::create(&journal_path, &head).expect("create journal");
    let observer = TestObserver::new(writer, abort_after);
    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(&observer),
        completed,
        shard: None,
    };
    let report =
        run_macro_path_with_faults_hooked(&fx.harness, &cfg, &fx.collapsed, fx.area, &hooks)?;
    observer
        .take_writer()
        .finish(report.fingerprint())
        .expect("seal journal");
    Ok((report, store.counters()))
}

/// One shard worker's run: evaluates `shard.range(classes)` into the
/// shard's segment file, always resuming the segment's own prefix —
/// exactly what `campaign --shard i/N` does.
fn shard_run(
    fx: &Fixture,
    dir: &Path,
    threads: usize,
    shard: ShardSpec,
    abort_after: usize,
) -> Result<MacroReport, PathError> {
    let cfg = config(threads);
    let head = header(fx, &cfg);
    let store = DiskStore::open(dir, head.context).expect("open store");
    let seg = segment_path(&dir.join("journal"), fx.harness.name(), shard);
    let state = load_segment(&seg, &head, shard);
    let writer = create_segment(&seg, &head, shard).expect("create segment");
    let observer = TestObserver::new(writer, abort_after);
    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(&observer),
        completed: state.completed,
        shard: Some(shard),
    };
    let report =
        run_macro_path_with_faults_hooked(&fx.harness, &cfg, &fx.collapsed, fx.area, &hooks)?;
    observer
        .take_writer()
        .finish(report.fingerprint())
        .expect("seal segment");
    Ok(report)
}

/// The merge step: folds all `shards` segments (verifying headers and
/// checksums), replays the complete class set through the ordinary
/// pipeline path, and writes the canonical whole-macro journal.
fn merge_run(fx: &Fixture, dir: &Path, threads: usize, shards: usize) -> MacroReport {
    let cfg = config(threads);
    let head = header(fx, &cfg);
    let merged = merge_segments(&dir.join("journal"), &head, shards);
    assert!(
        merged.is_complete(),
        "incomplete shards: {:?}",
        merged.incomplete
    );
    let store = DiskStore::open(dir, head.context).expect("open store");
    let journal_path = dir.join("journal").join("comparator.jnl");
    let writer = JournalWriter::create(&journal_path, &head).expect("create journal");
    let observer = TestObserver::new(writer, usize::MAX);
    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(&observer),
        completed: merged.completed,
        shard: None,
    };
    let report =
        run_macro_path_with_faults_hooked(&fx.harness, &cfg, &fx.collapsed, fx.area, &hooks)
            .expect("merge replay");
    observer
        .take_writer()
        .finish(report.fingerprint())
        .expect("seal journal");
    report
}

#[test]
fn killed_and_resumed_run_is_bit_identical() {
    let fx = fixture();
    let cfg = config(2);

    // The reference: a plain, storeless run.
    let plain =
        run_macro_path_with_faults(&fx.harness, &cfg, &fx.collapsed, fx.area).expect("plain run");

    // An uninterrupted journaled run.
    let dir_full = tmpdir("resume-full");
    let (full, _) = campaign_run(&fx, &dir_full, 2, false, usize::MAX).expect("full run");
    assert_eq!(
        full.fingerprint(),
        plain.fingerprint(),
        "store+journal hooks must be invisible in the report"
    );

    // Kill after 5 of the 12 classes, then resume.
    let dir = tmpdir("resume-killed");
    let killed = campaign_run(&fx, &dir, 2, false, 5);
    match killed {
        Err(PathError::Aborted { completed }) => assert_eq!(completed, 5),
        other => panic!("expected abort, got {other:?}"),
    }
    let head = header(&fx, &config(2));
    let journal = dir.join("journal").join("comparator.jnl");
    let state = load_journal(&journal, &head);
    assert_eq!(state.prefix_len(), 5, "journal holds the completed prefix");
    assert_eq!(state.fingerprint, None, "unsealed journal");

    let (resumed, counters) = campaign_run(&fx, &dir, 2, true, usize::MAX).expect("resumed run");
    assert_eq!(
        resumed.fingerprint(),
        plain.fingerprint(),
        "resumed report must be bit-identical to an uninterrupted one"
    );
    assert!(
        counters.loads < full.outcomes.len() as u64 * 8,
        "replayed classes must not re-measure"
    );

    // And the journals — not just the reports — are byte-identical.
    assert_eq!(
        fs::read(&journal).expect("resumed journal"),
        fs::read(dir_full.join("journal").join("comparator.jnl")).expect("full journal"),
    );
    let sealed = load_journal(&journal, &head);
    assert_eq!(sealed.fingerprint, Some(plain.fingerprint()));

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir_full);
}

#[test]
fn warm_run_answers_everything_from_the_store_at_any_thread_count() {
    let fx = fixture();
    let dir = tmpdir("warm");
    let (cold, cold_counters) = campaign_run(&fx, &dir, 4, false, usize::MAX).expect("cold");
    assert!(
        cold_counters.computed > 0,
        "cold run must populate the store"
    );

    for threads in [1, 3] {
        let (warm, counters) =
            campaign_run(&fx, &dir, threads, true, usize::MAX).expect("warm run");
        // --resume replays the sealed journal, so the warm run is pure
        // replay; rerun without resume to exercise the store itself.
        assert_eq!(warm.fingerprint(), cold.fingerprint(), "threads={threads}");
        assert_eq!(counters.computed, 0, "threads={threads}");
        let (warm2, c2) =
            campaign_run(&fx, &dir, threads, false, usize::MAX).expect("warm non-resume run");
        assert_eq!(warm2.fingerprint(), cold.fingerprint(), "threads={threads}");
        assert_eq!(
            c2.computed, 0,
            "every measurement must come from the store (threads={threads})"
        );
        assert_eq!(c2.misses, 0, "threads={threads}");
        assert_eq!(c2.loads, cold_counters.loads, "threads={threads}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Recursively lists `dir` as (relative path, file bytes), sorted.
fn snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

#[test]
fn serial_and_parallel_runs_write_byte_identical_stores() {
    let fx = fixture();
    let dir_serial = tmpdir("bytes-serial");
    let dir_parallel = tmpdir("bytes-parallel");
    campaign_run(&fx, &dir_serial, 1, false, usize::MAX).expect("serial");
    campaign_run(&fx, &dir_parallel, 4, false, usize::MAX).expect("parallel");
    let a = snapshot(&dir_serial);
    let b = snapshot(&dir_parallel);
    assert_eq!(
        a.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        b.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "same set of entry and journal files"
    );
    for ((path_a, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "file {path_a} differs");
    }
    let _ = fs::remove_dir_all(&dir_serial);
    let _ = fs::remove_dir_all(&dir_parallel);
}

#[test]
fn corrupted_entry_degrades_to_a_recomputed_miss() {
    let fx = fixture();
    let dir = tmpdir("corrupt");
    let (cold, cold_counters) = campaign_run(&fx, &dir, 2, false, usize::MAX).expect("cold");
    corrupt_one_entry(&dir, 0)
        .expect("corruption probe")
        .expect("store has entries");
    let (rerun, counters) = campaign_run(&fx, &dir, 2, false, usize::MAX).expect("rerun");
    assert_eq!(
        rerun.fingerprint(),
        cold.fingerprint(),
        "a corrupt entry must never change a verdict"
    );
    assert!(counters.computed > 0, "the damaged entry is recomputed");
    assert!(
        counters.computed < cold_counters.computed,
        "only the damaged entry is recomputed, not the whole store"
    );
    // The rewrite healed the store: a third run computes nothing.
    let (_, healed) = campaign_run(&fx, &dir, 2, false, usize::MAX).expect("healed");
    assert_eq!(healed.computed, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_shard_worker_then_redispatch_merges_identically() {
    let fx = fixture();
    let cfg = config(2);
    let plain =
        run_macro_path_with_faults(&fx.harness, &cfg, &fx.collapsed, fx.area).expect("plain run");

    // Reference journal bytes: an uninterrupted single-process campaign.
    let dir_single = tmpdir("shard-single");
    campaign_run(&fx, &dir_single, 2, false, usize::MAX).expect("single");
    let single_journal =
        fs::read(dir_single.join("journal").join("comparator.jnl")).expect("single journal");

    let dir = tmpdir("shard-killed");
    let s0 = ShardSpec::new(0, 2).expect("shard 0/2");
    let s1 = ShardSpec::new(1, 2).expect("shard 1/2");

    // The first dispatch of shard 0 dies after 3 of its 6 classes.
    match shard_run(&fx, &dir, 2, s0, 3) {
        Err(PathError::Aborted { completed }) => assert_eq!(completed, 3),
        other => panic!("expected abort, got {other:?}"),
    }
    let head = header(&fx, &cfg);
    let jdir = dir.join("journal");
    let seg0 = segment_path(&jdir, fx.harness.name(), s0);
    let torn = load_segment(&seg0, &head, s0);
    assert_eq!(torn.prefix_len(), 3, "segment keeps the killed prefix");
    assert_eq!(torn.fingerprint, None, "unsealed segment");
    let merged = merge_segments(&jdir, &head, 2);
    assert_eq!(
        merged.incomplete,
        vec![0, 1],
        "the coordinator sees exactly the shards to (re-)dispatch"
    );

    // Re-dispatch shard 0 (replays the prefix, finishes, seals) and run
    // shard 1 at a different thread count.
    let r0 = shard_run(&fx, &dir, 2, s0, usize::MAX).expect("re-dispatched shard 0");
    let r1 = shard_run(&fx, &dir, 1, s1, usize::MAX).expect("shard 1");
    let classes = classes_of(&fx, &cfg);
    assert_eq!(
        r0.outcomes.len() + r1.outcomes.len(),
        plain.outcomes.len(),
        "shard reports partition the class outcomes"
    );
    assert_eq!(
        load_segment(&seg0, &head, s0).fingerprint,
        Some(r0.fingerprint()),
        "sealed segment carries the shard-report fingerprint"
    );
    assert_eq!(s0.range(classes).len() + s1.range(classes).len(), classes);

    // Merge: fingerprint, journal bytes and solver totals all match the
    // uninterrupted single-process run.
    let merged_report = merge_run(&fx, &dir, 2, 2);
    assert_eq!(
        merged_report.fingerprint(),
        plain.fingerprint(),
        "merged report must be bit-identical to a single-process run"
    );
    assert_eq!(
        merged_report.solver_totals(),
        plain.solver_totals(),
        "solver-accounting totals survive the shard/merge round trip"
    );
    assert_eq!(
        fs::read(jdir.join("comparator.jnl")).expect("merged journal"),
        single_journal,
        "merged journal bytes must equal the single-process journal"
    );

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir_single);
}

#[test]
fn any_workers_times_threads_combination_is_bit_identical() {
    let fx = fixture();
    let cfg = config(1);
    let plain =
        run_macro_path_with_faults(&fx.harness, &cfg, &fx.collapsed, fx.area).expect("plain run");
    let classes = classes_of(&fx, &cfg);

    // 3 workers × mixed thread counts, including an empty-range check
    // when shards outnumber a shard's classes unevenly.
    let dir = tmpdir("shard-matrix");
    for (index, threads) in [(0usize, 1usize), (1, 2), (2, 4)] {
        let shard = ShardSpec::new(index, 3).expect("shard");
        let report = shard_run(&fx, &dir, threads, shard, usize::MAX).expect("shard run");
        assert!(report.outcomes.len() >= shard.range(classes).len());
    }
    let merged = merge_run(&fx, &dir, 4, 3);
    assert_eq!(
        merged.fingerprint(),
        plain.fingerprint(),
        "3 workers × (1,2,4) threads must merge bit-identically"
    );
    let _ = fs::remove_dir_all(&dir);
}
