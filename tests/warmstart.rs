//! Warm-start equivalence, end to end: seeding Newton from the
//! fault-free nominal operating points may change solver effort, never a
//! verdict. The comparator harness is the hardest case — nonlinear
//! devices, transient analyses and fault-injected topologies — so the
//! warm and cold runs are compared class by class on everything the
//! methodology reports (detection set, voltage signature, current flags).

use dotm::core::harnesses::ComparatorHarness;
use dotm::core::{
    run_macro_path_with_faults, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig,
};
use dotm::defects::{sprinkle_collapsed, Sprinkler};

fn run_comparator(warm_start: bool) -> MacroReport {
    let harness = ComparatorHarness::production();
    let cfg = PipelineConfig {
        defects: 3_000,
        seed: 1995,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 1995 ^ 0xD07,
            ..GoodSpaceConfig::default()
        },
        max_classes: Some(10),
        non_catastrophic: true,
        warm_start,
        // The cache is exercised by tests/determinism.rs; keeping it off
        // here isolates the warm-start effect in the solver telemetry.
        measure_cache: false,
        ..PipelineConfig::default()
    };
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    run_macro_path_with_faults(&harness, &cfg, &collapsed, area).expect("comparator path")
}

#[test]
fn warm_start_never_flips_a_detection_verdict() {
    let cold = run_comparator(false);
    let warm = run_comparator(true);

    // The warm run must actually have taken the seeded path…
    let ws = warm.solver_totals();
    let cs = cold.solver_totals();
    assert!(
        ws.warm_hits + ws.warm_misses > 0,
        "warm run never attempted a seeded solve"
    );
    assert_eq!(
        cs.warm_hits + cs.warm_misses,
        0,
        "cold run must not touch the seed table"
    );

    // …and may differ from the cold run only in solver effort.
    assert_eq!(cold.total_faults, warm.total_faults);
    assert_eq!(cold.outcomes.len(), warm.outcomes.len());
    for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(a.key, b.key, "class order diverged");
        assert_eq!(a.count, b.count, "class {}", a.key);
        assert_eq!(a.severity, b.severity, "class {}", a.key);
        assert_eq!(
            a.detection, b.detection,
            "verdict flipped in class {}",
            a.key
        );
        assert_eq!(
            a.voltage, b.voltage,
            "voltage signature flipped in {}",
            a.key
        );
        assert_eq!(a.currents, b.currents, "current flags flipped in {}", a.key);
        assert_eq!(
            a.flagged, b.flagged,
            "compaction flags flipped in {}",
            a.key
        );
        assert_eq!(a.sim_failed, b.sim_failed, "class {}", a.key);
        assert_eq!(a.excluded, b.excluded, "class {}", a.key);
    }
}
