//! In-memory per-job event buffers feeding the NDJSON progress streams.
//!
//! Events are append-only per job; a subscriber reads by absolute index,
//! so any number of streams can follow one job without coordination, and
//! a late subscriber replays the retained history. The hub is memory-only
//! by design: the *authoritative* job state lives in the crash-safe job
//! records and the journals — after a server restart the streams
//! resynthesize their opening snapshot from disk and the hub refills
//! from there.
//!
//! Two mechanisms keep the hub bounded on a long-lived server:
//!
//! * each job's buffer is capped at [`EVENT_CAP`] events — a chatty run
//!   drops its oldest events first, and a subscriber that fell behind
//!   the drop point resumes at the oldest retained event (its returned
//!   cursor jumps forward over the gap);
//! * once a job is terminal and its `end` event has replayed to a
//!   stream, the server [`EventHub::retire`]s the whole buffer — later
//!   subscribers get the disk snapshot plus a fresh `end`, and the
//!   memory is released instead of leaking one history per finished job.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Most events retained per job. The anchor campaign emits a few
/// events per class, so this holds a full run's history with headroom
/// while bounding what one runaway job can pin in memory.
const EVENT_CAP: usize = 4096;

/// One job's retained events plus the absolute index of the first.
#[derive(Default)]
struct Buffer {
    /// Absolute index of `events[0]` in the job's full event sequence —
    /// advances as the cap drops old events.
    base: usize,
    events: VecDeque<String>,
}

/// Append-only event buffers keyed by job id.
#[derive(Default)]
pub struct EventHub {
    events: Mutex<HashMap<String, Buffer>>,
    wake: Condvar,
}

impl EventHub {
    /// An empty hub.
    pub fn new() -> Self {
        EventHub::default()
    }

    /// Appends one event line to a job's buffer and wakes every waiting
    /// subscriber (all jobs — spurious wakes are fine, waiters re-check
    /// their own index). Beyond [`EVENT_CAP`] the oldest event drops.
    pub fn publish(&self, job: &str, event: String) {
        let mut map = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let buf = map.entry(job.to_string()).or_default();
        buf.events.push_back(event);
        while buf.events.len() > EVENT_CAP {
            buf.events.pop_front();
            buf.base += 1;
        }
        self.wake.notify_all();
    }

    /// Returns the job's events from absolute index `from` on, plus the
    /// cursor to pass as the next `from`, blocking up to `timeout` for a
    /// first new one. An empty batch means the timeout elapsed — the
    /// caller re-checks its liveness condition and calls again. When the
    /// cap has dropped events past `from`, the batch starts at the
    /// oldest retained event and the cursor jumps over the gap.
    pub fn read_from(&self, job: &str, from: usize, timeout: Duration) -> (usize, Vec<String>) {
        let mut map = self.events.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(buf) = map.get(job) {
                let have = buf.base + buf.events.len();
                if have > from {
                    let skip = from.saturating_sub(buf.base);
                    let batch: Vec<String> = buf.events.iter().skip(skip).cloned().collect();
                    return (have, batch);
                }
            }
            let (guard, wait) = self
                .wake
                .wait_timeout(map, timeout)
                .unwrap_or_else(|e| e.into_inner());
            map = guard;
            if wait.timed_out() {
                return (from, Vec::new());
            }
        }
    }

    /// Drops a job's whole buffer — called once the job is terminal on
    /// disk and its `end` has replayed. Waiters wake, see no events, and
    /// fall back to their disk-state liveness check.
    pub fn retire(&self, job: &str) {
        let mut map = self.events.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(job);
        self.wake.notify_all();
    }

    /// Number of events currently retained in memory for a job.
    pub fn len(&self, job: &str) -> usize {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(job)
            .map_or(0, |b| b.events.len())
    }

    /// Whether no events are retained for a job.
    pub fn is_empty(&self, job: &str) -> bool {
        self.len(job) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn replays_history_and_wakes_waiters() {
        let hub = Arc::new(EventHub::new());
        hub.publish("a", "one".into());
        hub.publish("a", "two".into());
        assert_eq!(
            hub.read_from("a", 0, Duration::from_millis(1)),
            (2, vec!["one".to_string(), "two".to_string()])
        );
        assert_eq!(
            hub.read_from("a", 1, Duration::from_millis(1)),
            (2, vec!["two".to_string()])
        );
        assert_eq!(hub.read_from("a", 2, Duration::from_millis(1)).1, [""; 0]);
        assert_eq!(
            hub.read_from("other", 0, Duration::from_millis(1)).1,
            [""; 0]
        );

        let waiter = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.read_from("a", 2, Duration::from_secs(10)))
        };
        hub.publish("a", "three".into());
        assert_eq!(
            waiter.join().expect("waiter"),
            (3, vec!["three".to_string()])
        );
        assert_eq!(hub.len("a"), 3);
        assert!(hub.is_empty("b"));
    }

    #[test]
    fn cap_drops_oldest_and_cursors_jump_the_gap() {
        let hub = EventHub::new();
        for i in 0..EVENT_CAP + 10 {
            hub.publish("a", format!("e{i}"));
        }
        assert_eq!(hub.len("a"), EVENT_CAP, "cap holds");
        // A subscriber from 0 resumes at the oldest retained event and
        // its cursor lands past everything it received.
        let (next, batch) = hub.read_from("a", 0, Duration::from_millis(1));
        assert_eq!(next, EVENT_CAP + 10);
        assert_eq!(batch.len(), EVENT_CAP);
        assert_eq!(batch.first().map(String::as_str), Some("e10"));
        assert_eq!(
            batch.last().map(String::as_str),
            Some(format!("e{}", EVENT_CAP + 9).as_str())
        );
        // The cursor is consistent: nothing new at `next`.
        assert!(hub
            .read_from("a", next, Duration::from_millis(1))
            .1
            .is_empty());
    }

    #[test]
    fn retire_releases_the_buffer_and_wakes_waiters() {
        let hub = Arc::new(EventHub::new());
        hub.publish("a", "one".into());
        assert_eq!(hub.len("a"), 1);
        let waiter = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.read_from("a", 1, Duration::from_millis(200)))
        };
        // Give the waiter a moment to park, then retire out from under
        // it: it must come back empty via the timeout path — retiring
        // must not leave it blocked on a buffer that no longer exists.
        thread::sleep(Duration::from_millis(20));
        hub.retire("a");
        assert!(hub.is_empty("a"));
        assert_eq!(hub.read_from("a", 0, Duration::from_millis(1)).1, [""; 0]);
        // The parked waiter sees no events for a retired job and times out.
        let (next, batch) = waiter.join().expect("waiter");
        assert_eq!((next, batch.len()), (1, 0));
    }
}
