//! In-memory per-job event buffers feeding the NDJSON progress streams.
//!
//! Events are append-only per job; a subscriber reads by index, so any
//! number of streams can follow one job without coordination, and a
//! late subscriber replays the whole history. The hub is memory-only by
//! design: the *authoritative* job state lives in the crash-safe job
//! records and the journals — after a server restart the streams
//! resynthesize their opening snapshot from disk and the hub refills
//! from there.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Append-only event buffers keyed by job id.
#[derive(Default)]
pub struct EventHub {
    events: Mutex<HashMap<String, Vec<String>>>,
    wake: Condvar,
}

impl EventHub {
    /// An empty hub.
    pub fn new() -> Self {
        EventHub::default()
    }

    /// Appends one event line to a job's buffer and wakes every waiting
    /// subscriber (all jobs — spurious wakes are fine, waiters re-check
    /// their own index).
    pub fn publish(&self, job: &str, event: String) {
        let mut map = self.events.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(job.to_string()).or_default().push(event);
        self.wake.notify_all();
    }

    /// Returns the job's events from index `from` on, blocking up to
    /// `timeout` for a first new one. An empty vector means the timeout
    /// elapsed — the caller re-checks its liveness condition and calls
    /// again.
    pub fn read_from(&self, job: &str, from: usize, timeout: Duration) -> Vec<String> {
        let mut map = self.events.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let have = map.get(job).map_or(0, Vec::len);
            if have > from {
                return map.get(job).expect("non-empty buffer")[from..].to_vec();
            }
            let (guard, wait) = self
                .wake
                .wait_timeout(map, timeout)
                .unwrap_or_else(|e| e.into_inner());
            map = guard;
            if wait.timed_out() {
                return Vec::new();
            }
        }
    }

    /// Number of events buffered for a job.
    pub fn len(&self, job: &str) -> usize {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(job)
            .map_or(0, Vec::len)
    }

    /// Whether no events are buffered for a job.
    pub fn is_empty(&self, job: &str) -> bool {
        self.len(job) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn replays_history_and_wakes_waiters() {
        let hub = Arc::new(EventHub::new());
        hub.publish("a", "one".into());
        hub.publish("a", "two".into());
        assert_eq!(
            hub.read_from("a", 0, Duration::from_millis(1)),
            ["one", "two"]
        );
        assert_eq!(hub.read_from("a", 1, Duration::from_millis(1)), ["two"]);
        assert!(hub.read_from("a", 2, Duration::from_millis(1)).is_empty());
        assert!(hub
            .read_from("other", 0, Duration::from_millis(1))
            .is_empty());

        let waiter = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.read_from("a", 2, Duration::from_secs(10)))
        };
        hub.publish("a", "three".into());
        assert_eq!(waiter.join().expect("waiter"), ["three"]);
        assert_eq!(hub.len("a"), 3);
        assert!(hub.is_empty("b"));
    }
}
