//! The campaign process exit-code contract.
//!
//! The coordinator and the service both supervise `campaign`
//! subprocesses and must tell failure modes apart *without* string-
//! matching stderr (stderr is a human channel; its wording changes).
//! The contract is the numeric exit code:
//!
//! | code | name | meaning |
//! |---|---|---|
//! | 0 | ok | run complete, report on stdout |
//! | 2 | usage | bad flags / knobs (also what clap-style CLIs use) |
//! | 3 | stale-shard | segments missing, short, unsealed or from another context |
//! | 4 | io | store/journal filesystem failure |
//! | 5 | interrupted | the class observer aborted the run; the journal keeps a resumable prefix |
//!
//! Code 1 stays reserved for uncategorised failures (assertion-style
//! gates such as `DOTM_EXPECT_WARM`), and anything else a child dies
//! with — panics (101), signals — classifies as [`FailureClass::Io`]:
//! "something broke that a retry against the same inputs may fix",
//! which is exactly how the re-dispatch loop treats real I/O trouble.

/// Successful exit.
pub const OK: i32 = 0;
/// Malformed command line or knob combination.
pub const USAGE: i32 = 2;
/// Shard segments incomplete, unsealed or context-mismatched: re-run
/// the workers (or re-dispatch) before merging.
pub const STALE_SHARD: i32 = 3;
/// Store or journal I/O failure.
pub const IO: i32 = 4;
/// The in-order class observer aborted the run (`DOTM_ABORT_AFTER` or a
/// service cancellation); the journal holds a resumable prefix.
pub const INTERRUPTED: i32 = 5;

/// A classified campaign-process failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Bad invocation: retrying without changing the command is useless.
    Usage,
    /// Incomplete/stale shard segments: re-dispatch workers, then retry.
    StaleShard,
    /// Filesystem-level failure (including uncategorised deaths).
    Io,
    /// Deliberate mid-run abort; resume continues from the journal.
    Interrupted,
}

impl FailureClass {
    /// The exit code this class maps to.
    pub fn code(self) -> i32 {
        match self {
            FailureClass::Usage => USAGE,
            FailureClass::StaleShard => STALE_SHARD,
            FailureClass::Io => IO,
            FailureClass::Interrupted => INTERRUPTED,
        }
    }

    /// Stable lower-case name used in job records and event payloads.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Usage => "usage",
            FailureClass::StaleShard => "stale-shard",
            FailureClass::Io => "io",
            FailureClass::Interrupted => "interrupted",
        }
    }
}

/// Classifies a child's exit code: `None` for success, the failure class
/// otherwise. Unknown non-zero codes (panics, signal deaths surfacing as
/// no code) classify as [`FailureClass::Io`].
pub fn classify(code: Option<i32>) -> Option<FailureClass> {
    match code {
        Some(OK) => None,
        Some(USAGE) => Some(FailureClass::Usage),
        Some(STALE_SHARD) => Some(FailureClass::StaleShard),
        Some(INTERRUPTED) => Some(FailureClass::Interrupted),
        _ => Some(FailureClass::Io),
    }
}

/// Maps an `std::io::Error` from the campaign's store/journal/merge path
/// to its exit code. `InvalidData` is how the merge reports incomplete
/// or context-mismatched segments ([`STALE_SHARD`]); everything else is
/// a real filesystem failure ([`IO`]).
pub fn io_exit_code(err: &std::io::Error) -> i32 {
    if err.kind() == std::io::ErrorKind::InvalidData {
        STALE_SHARD
    } else {
        IO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_through_classify() {
        for class in [
            FailureClass::Usage,
            FailureClass::StaleShard,
            FailureClass::Io,
            FailureClass::Interrupted,
        ] {
            assert_eq!(classify(Some(class.code())), Some(class), "{class:?}");
        }
        assert_eq!(classify(Some(OK)), None);
    }

    #[test]
    fn unknown_deaths_classify_as_io() {
        assert_eq!(classify(Some(1)), Some(FailureClass::Io));
        assert_eq!(classify(Some(101)), Some(FailureClass::Io), "rust panic");
        assert_eq!(classify(None), Some(FailureClass::Io), "killed by signal");
    }

    #[test]
    fn io_errors_map_by_kind() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            io_exit_code(&Error::new(ErrorKind::InvalidData, "short segment")),
            STALE_SHARD
        );
        assert_eq!(
            io_exit_code(&Error::new(ErrorKind::PermissionDenied, "store")),
            IO
        );
        assert_eq!(
            io_exit_code(&Error::new(ErrorKind::NotFound, "journal")),
            IO
        );
    }

    #[test]
    fn codes_are_distinct_and_stable() {
        let codes = [OK, USAGE, STALE_SHARD, IO, INTERRUPTED];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // The contract is wire-visible (job records, scripts): pin it.
        assert_eq!((USAGE, STALE_SHARD, IO, INTERRUPTED), (2, 3, 4, 5));
    }
}
