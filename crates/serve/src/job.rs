//! Campaign jobs: the spec a client submits, the content-derived job
//! id, and the crash-safe on-disk record (`jobs/<id>.job`).
//!
//! ## Identity and dedup
//!
//! A job's id is the FNV-128 of its *result-affecting* fields (macro
//! selection, defect count, seeds, Monte-Carlo sizes, class truncation)
//! in a canonical sorted-key encoding. Execution details — worker
//! count, thread count, crash-injection knobs, the `fresh` flag — do
//! not change a single report byte (the byte-identity gates enforce
//! exactly that), so they stay out of the id: resubmitting the same
//! configuration with a different worker count still finds the finished
//! job and answers from it.
//!
//! ## Crash safety
//!
//! A job record is one line, written to a temp file and renamed into
//! place like a store entry: `{"dotm_job":1,"id":…,"data":"<hex>",
//! "crc":"<fnv64>"}` where `data` hex-wraps the flat JSON job body. A
//! torn or corrupt record reads as absent (the client resubmits — ids
//! are deterministic, nothing is lost). A record in `running` state at
//! server startup is a crashed run: it re-enters the queue, and the
//! campaign's own journal resume makes the re-run cheap.

use crate::http::json_escape;
use dotm_store::{fnv64, Fnv128};
use std::fs;
use std::path::{Path, PathBuf};

/// The five anchor macros, in campaign execution order.
pub const ALL_MACROS: [&str; 5] = [
    "comparator",
    "ladder",
    "bias_gen",
    "clock_gen",
    "decoder_slice",
];

/// Extracts the raw value of `"key":` from a flat one-line JSON object.
pub(crate) fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    if let Some(s) = rest.strip_prefix('"') {
        s.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

pub(crate) fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

pub(crate) fn from_hex(hex: &str) -> Option<Vec<u8>> {
    if hex.len() % 2 != 0 {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

/// What a client asks the service to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Macro names to run, a non-empty subset of [`ALL_MACROS`], in
    /// campaign order.
    pub macros: Vec<String>,
    /// Defects sprinkled per macro.
    pub defects: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Good-space common-sample count.
    pub gs_common: usize,
    /// Good-space mismatch-sample count.
    pub gs_mm: usize,
    /// Truncate to the most frequent classes (`0` = all).
    pub max_classes: usize,
    /// Executor threads (`0` = auto).
    pub threads: usize,
    /// Shard worker processes (`0` = one ordinary campaign process).
    pub workers: usize,
    /// Remote mode: shards are claimed and uploaded by pull workers
    /// instead of spawned locally; the service only merges.
    pub remote: bool,
    /// Force a re-run even when the identical job already finished
    /// (the store still answers warm — `computed=0`).
    pub fresh: bool,
    /// Crash injection: the first run attempt aborts after this many
    /// classes (`0` = off). Used by the kill-mid-job gates.
    pub abort_once: u64,
}

impl JobSpec {
    /// The spec a submission with an empty body gets: the server
    /// process's own `DOTM_*` environment, all macros, no workers.
    pub fn from_env() -> JobSpec {
        use dotm_core::env::{serve_workers, u64_knob, usize_knob};
        JobSpec {
            macros: ALL_MACROS.iter().map(|m| m.to_string()).collect(),
            defects: usize_knob("DOTM_DEFECTS", 25_000),
            seed: u64_knob("DOTM_SEED", 1995),
            gs_common: usize_knob("DOTM_GS_COMMON", 5),
            gs_mm: usize_knob("DOTM_GS_MM", 4),
            max_classes: usize_knob("DOTM_MAX_CLASSES", 0),
            threads: usize_knob("DOTM_THREADS", 0),
            workers: serve_workers(),
            remote: false,
            fresh: false,
            abort_once: 0,
        }
    }

    /// Parses a submission body: a flat JSON object overriding any
    /// subset of the environment defaults. `macros` is a comma-separated
    /// string. Unknown macros, a malformed body or an empty selection
    /// are an error (the message is the HTTP 400 payload).
    pub fn parse(body: &[u8]) -> Result<JobSpec, String> {
        let mut spec = JobSpec::from_env();
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let text = text.trim();
        if text.is_empty() {
            return Ok(spec);
        }
        if !text.starts_with('{') || !text.ends_with('}') {
            return Err("body must be a JSON object".into());
        }
        let num = |key: &str, slot: &mut usize| -> Result<(), String> {
            if let Some(v) = json_field(text, key) {
                *slot = v
                    .parse()
                    .map_err(|_| format!("{key}: expected an unsigned integer, got {v:?}"))?;
            }
            Ok(())
        };
        num("defects", &mut spec.defects)?;
        num("gs_common", &mut spec.gs_common)?;
        num("gs_mm", &mut spec.gs_mm)?;
        num("max_classes", &mut spec.max_classes)?;
        num("threads", &mut spec.threads)?;
        num("workers", &mut spec.workers)?;
        if let Some(v) = json_field(text, "seed") {
            spec.seed = v
                .parse()
                .map_err(|_| format!("seed: expected an unsigned integer, got {v:?}"))?;
        }
        if let Some(v) = json_field(text, "abort_once") {
            spec.abort_once = v
                .parse()
                .map_err(|_| format!("abort_once: expected an unsigned integer, got {v:?}"))?;
        }
        let flag = |key: &str, slot: &mut bool| -> Result<(), String> {
            if let Some(v) = json_field(text, key) {
                *slot = match v {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("{key}: expected true/false, got {other:?}")),
                };
            }
            Ok(())
        };
        let mut remote = spec.remote;
        let mut fresh = spec.fresh;
        flag("remote", &mut remote)?;
        flag("fresh", &mut fresh)?;
        spec.remote = remote;
        spec.fresh = fresh;
        if let Some(list) = json_field(text, "macros") {
            let mut macros = Vec::new();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if !ALL_MACROS.contains(&name) {
                    return Err(format!(
                        "unknown macro {name:?} (know: {})",
                        ALL_MACROS.join(", ")
                    ));
                }
                if !macros.iter().any(|m| m == name) {
                    macros.push(name.to_string());
                }
            }
            if macros.is_empty() {
                return Err("macros: empty selection".into());
            }
            // Canonical campaign order, independent of request order.
            macros.sort_by_key(|m| ALL_MACROS.iter().position(|a| a == m));
            spec.macros = macros;
        }
        if spec.remote && spec.workers == 0 {
            return Err("remote jobs need workers > 0".into());
        }
        Ok(spec)
    }

    /// Canonical sorted-key encoding of the result-affecting fields —
    /// the dedup identity.
    pub fn canonical(&self) -> String {
        format!(
            "{{\"defects\":{},\"gs_common\":{},\"gs_mm\":{},\"macros\":\"{}\",\"max_classes\":{},\"seed\":{}}}",
            self.defects,
            self.gs_common,
            self.gs_mm,
            self.macros.join(","),
            self.max_classes,
            self.seed
        )
    }

    /// The job id: FNV-128 of [`canonical`](JobSpec::canonical), as 32
    /// hex digits.
    pub fn id(&self) -> String {
        format!("{:032x}", Fnv128::new().str(&self.canonical()).finish())
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the executor.
    Queued,
    /// The executor is running it (a record still in this state at
    /// startup is a crashed run and re-enters the queue).
    Running,
    /// Finished; the report bytes are on disk next to the record.
    Merged,
    /// Finished unsuccessfully; `exit` holds the classified code.
    Failed,
}

impl JobState {
    /// Stable lower-case name used on the wire and on disk.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Merged => "merged",
            JobState::Failed => "failed",
        }
    }

    fn parse(name: &str) -> Option<JobState> {
        match name {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "merged" => Some(JobState::Merged),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }
}

/// One job: spec plus queue bookkeeping, mirrored to `jobs/<id>.job`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Content-derived id (see [`JobSpec::id`]).
    pub id: String,
    /// What to run.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Exit code of the last finished attempt (`0` until one fails).
    pub exit: i32,
    /// Run attempts started so far (crash-injection fires only on the
    /// first, so a restarted server never re-injects).
    pub attempts: u64,
    /// Submission order, for FIFO scheduling across restarts.
    pub seq: u64,
}

impl Job {
    /// A freshly submitted job.
    pub fn new(spec: JobSpec, seq: u64) -> Job {
        Job {
            id: spec.id(),
            spec,
            state: JobState::Queued,
            exit: 0,
            attempts: 0,
            seq,
        }
    }

    /// `jobs/<id>.job` under the jobs directory.
    pub fn path(jobs_dir: &Path, id: &str) -> PathBuf {
        jobs_dir.join(format!("{id}.job"))
    }

    /// `jobs/<id>.report` — the finished job's report bytes.
    pub fn report_path(jobs_dir: &Path, id: &str) -> PathBuf {
        jobs_dir.join(format!("{id}.report"))
    }

    fn body(&self) -> String {
        format!(
            "{{\"abort_once\":{},\"attempts\":{},\"defects\":{},\"exit\":{},\"fresh\":{},\
             \"gs_common\":{},\"gs_mm\":{},\"macros\":\"{}\",\"max_classes\":{},\"remote\":{},\
             \"seed\":{},\"seq\":{},\"state\":\"{}\",\"threads\":{},\"workers\":{}}}",
            self.spec.abort_once,
            self.attempts,
            self.spec.defects,
            self.exit,
            self.spec.fresh,
            self.spec.gs_common,
            self.spec.gs_mm,
            self.spec.macros.join(","),
            self.spec.max_classes,
            self.spec.remote,
            self.spec.seed,
            self.seq,
            self.state.name(),
            self.spec.threads,
            self.spec.workers,
        )
    }

    /// Persists the record: temp file + atomic rename, FNV-checksummed
    /// like a store entry.
    ///
    /// # Errors
    /// Any filesystem error — job records are load-bearing for the
    /// service's crash contract, so failures are not absorbed.
    pub fn save(&self, jobs_dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(jobs_dir)?;
        let body = self.body();
        let line = format!(
            "{{\"dotm_job\":1,\"id\":\"{}\",\"data\":\"{}\",\"crc\":\"{:016x}\"}}\n",
            self.id,
            to_hex(body.as_bytes()),
            fnv64(body.as_bytes()),
        );
        let tmp = jobs_dir.join(format!("{}.job.tmp-{}", self.id, std::process::id()));
        fs::write(&tmp, line)?;
        fs::rename(&tmp, Job::path(jobs_dir, &self.id))
    }

    /// Loads one record. `None` for a missing, torn or corrupt file —
    /// indistinguishable from "never submitted", which is safe because
    /// ids are deterministic and resubmission recreates the record.
    pub fn load(jobs_dir: &Path, id: &str) -> Option<Job> {
        let text = fs::read_to_string(Job::path(jobs_dir, id)).ok()?;
        let line = text.lines().next()?;
        if json_field(line, "dotm_job")? != "1" || json_field(line, "id")? != id {
            return None;
        }
        let data = from_hex(json_field(line, "data")?)?;
        let crc = u64::from_str_radix(json_field(line, "crc")?, 16).ok()?;
        if fnv64(&data) != crc {
            return None;
        }
        let body = String::from_utf8(data).ok()?;
        let macros: Vec<String> = json_field(&body, "macros")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        let parse_bool = |v: &str| match v {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        };
        let spec = JobSpec {
            macros,
            defects: json_field(&body, "defects")?.parse().ok()?,
            seed: json_field(&body, "seed")?.parse().ok()?,
            gs_common: json_field(&body, "gs_common")?.parse().ok()?,
            gs_mm: json_field(&body, "gs_mm")?.parse().ok()?,
            max_classes: json_field(&body, "max_classes")?.parse().ok()?,
            threads: json_field(&body, "threads")?.parse().ok()?,
            workers: json_field(&body, "workers")?.parse().ok()?,
            remote: parse_bool(json_field(&body, "remote")?)?,
            fresh: parse_bool(json_field(&body, "fresh")?)?,
            abort_once: json_field(&body, "abort_once")?.parse().ok()?,
        };
        let job = Job {
            id: id.to_string(),
            state: JobState::parse(json_field(&body, "state")?)?,
            exit: json_field(&body, "exit")?.parse().ok()?,
            attempts: json_field(&body, "attempts")?.parse().ok()?,
            seq: json_field(&body, "seq")?.parse().ok()?,
            spec,
        };
        // The record's id must be the spec's id: a mismatch means the
        // file was tampered with or the id scheme changed — ignore it.
        (job.spec.id() == id).then_some(job)
    }

    /// Loads every valid record under the jobs directory.
    pub fn load_all(jobs_dir: &Path) -> Vec<Job> {
        let Ok(entries) = fs::read_dir(jobs_dir) else {
            return Vec::new();
        };
        let mut jobs: Vec<Job> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_suffix(".job")?;
                Job::load(jobs_dir, id)
            })
            .collect();
        jobs.sort_by_key(|j| j.seq);
        jobs
    }

    /// The job's wire representation (without progress — the server
    /// appends that from live journal snapshots).
    pub fn status_fields(&self) -> String {
        format!(
            "\"id\":\"{}\",\"state\":\"{}\",\"exit\":{},\"attempts\":{},\"workers\":{},\
             \"remote\":{},\"macros\":\"{}\"",
            json_escape(&self.id),
            self.state.name(),
            self.exit,
            self.attempts,
            self.spec.workers,
            self.spec.remote,
            json_escape(&self.spec.macros.join(",")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dotm-job-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn spec() -> JobSpec {
        JobSpec {
            macros: vec!["comparator".into(), "ladder".into()],
            defects: 2000,
            seed: 1995,
            gs_common: 2,
            gs_mm: 2,
            max_classes: 8,
            threads: 0,
            workers: 2,
            remote: false,
            fresh: false,
            abort_once: 0,
        }
    }

    #[test]
    fn id_covers_results_not_execution() {
        let base = spec();
        let mut execution = spec();
        execution.workers = 7;
        execution.threads = 3;
        execution.fresh = true;
        execution.abort_once = 4;
        assert_eq!(
            base.id(),
            execution.id(),
            "execution knobs are not identity"
        );

        type Mutation = (fn(&mut JobSpec), &'static str);
        let mutations: Vec<Mutation> = vec![
            (|s| s.defects = 2001, "defects"),
            (|s| s.seed = 1996, "seed"),
            (|s| s.gs_common = 3, "gs_common"),
            (|s| s.gs_mm = 3, "gs_mm"),
            (|s| s.max_classes = 9, "max_classes"),
            (|s| s.macros.truncate(1), "macros"),
        ];
        for (mutate, what) in mutations {
            let mut changed = spec();
            mutate(&mut changed);
            assert_ne!(base.id(), changed.id(), "{what} must change the id");
        }
    }

    #[test]
    fn parse_overrides_and_rejects() {
        // Only overridden fields are asserted: the defaults are
        // env-driven and the harness environment stays untouched.
        let spec = JobSpec::parse(
            br#"{"defects":500,"seed":7,"macros":"ladder, comparator","workers":3,"fresh":true}"#,
        )
        .expect("valid body");
        assert_eq!(spec.defects, 500);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.workers, 3);
        assert!(spec.fresh);
        // Canonical campaign order regardless of request order.
        assert_eq!(spec.macros, ["comparator", "ladder"]);

        assert!(JobSpec::parse(b"not json").is_err());
        assert!(JobSpec::parse(br#"{"defects":"many"}"#).is_err());
        assert!(JobSpec::parse(br#"{"macros":"mystery"}"#).is_err());
        assert!(JobSpec::parse(br#"{"macros":" , "}"#).is_err());
        assert!(JobSpec::parse(br#"{"remote":true,"workers":0}"#).is_err());
        assert!(
            JobSpec::parse(b"")
                .expect("empty body is defaults")
                .macros
                .len()
                == 5
        );
    }

    #[test]
    fn records_roundtrip_and_corruption_reads_as_absent() {
        let dir = tmpdir("roundtrip");
        let mut job = Job::new(spec(), 3);
        job.state = JobState::Failed;
        job.exit = 3;
        job.attempts = 2;
        job.save(&dir).expect("save");
        assert_eq!(Job::load(&dir, &job.id), Some(job.clone()));
        assert_eq!(Job::load_all(&dir), vec![job.clone()]);

        // Flip one payload byte: the checksum must reject the record.
        let path = Job::path(&dir, &job.id);
        let mut text = fs::read_to_string(&path).expect("read");
        let at = text.find("\"data\":\"").expect("data field") + 9;
        let byte = text.as_bytes()[at];
        text.replace_range(at..at + 1, if byte == b'0' { "1" } else { "0" });
        fs::write(&path, text).expect("write");
        assert_eq!(Job::load(&dir, &job.id), None, "corrupt record is absent");
        assert!(Job::load_all(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_sorts_by_submission_order() {
        let dir = tmpdir("order");
        let mut late = Job::new(spec(), 9);
        late.spec.seed = 2000; // distinct id
        late.id = late.spec.id();
        let early = Job::new(spec(), 1);
        late.save(&dir).expect("save");
        early.save(&dir).expect("save");
        let seqs: Vec<u64> = Job::load_all(&dir).iter().map(|j| j.seq).collect();
        assert_eq!(seqs, [1, 9]);
        let _ = fs::remove_dir_all(&dir);
    }
}
