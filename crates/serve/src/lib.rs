//! dotm-serve — campaign-as-a-service over the shared store.
//!
//! A hand-rolled, zero-dependency HTTP/1.1 service (`std::net` only)
//! that turns the `campaign` CLI into a long-lived job API:
//!
//! * `POST /jobs` — submit a campaign config; identical configs dedup
//!   to the same job id (a finished job answers immediately from its
//!   stored report).
//! * `GET /jobs/:id` — status with live per-macro journal progress.
//! * `GET /jobs/:id/events` — NDJSON progress stream.
//! * `GET /jobs/:id/report` — the campaign report, byte-identical to
//!   the CLI's stdout (it *is* the captured stdout).
//! * `POST /jobs/:id/shards/:i/claim` + `.../segments/:macro` — the
//!   pull contract for remote shard workers.
//! * `GET /store/occupancy`, `GET /metrics`, `POST /shutdown`.
//!
//! Jobs persist as checksummed single-line records under
//! `<store>/jobs/`; the queue survives crashes and restarts, and an
//! interrupted run resumes from its journal prefix exactly like the
//! CLI's `--resume`. See [`server`] for the lifecycle and crash model,
//! [`exit`] for the process exit-code contract shared with the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exit;
pub mod http;
pub mod hub;
pub mod job;
pub mod runner;
pub mod server;

pub use exit::{classify, io_exit_code, FailureClass};
pub use hub::EventHub;
pub use job::{Job, JobSpec, JobState, ALL_MACROS};
pub use runner::{parse_progress_line, JobRunner, RunOutcome, SubprocessRunner};
pub use server::{serve, Server};
