//! The campaign service: routes, queue, executor and shutdown drain.
//!
//! ## Job lifecycle
//!
//! `POST /jobs` parses a [`JobSpec`], derives its content id and either
//! answers from the finished record (dedup) or persists a `queued`
//! record and wakes the executor. One executor thread runs jobs
//! strictly in submission order — jobs share the store's per-macro
//! journal namespace, so running two at once would interleave writers;
//! parallelism comes from *within* a job (its shard workers and
//! executor threads), not from overlapping jobs.
//!
//! ## Crash model
//!
//! Every state transition is persisted temp+rename before it is
//! observable over HTTP. A server killed at any point restarts into a
//! consistent queue: `running` records re-enter the queue (their
//! journals resume), `queued` records keep their order, finished
//! records keep their reports. The in-memory event hub refills as the
//! re-run progresses; streams opened against a restarted server start
//! from a disk snapshot.
//!
//! ## Shutdown
//!
//! `POST /shutdown` (or dropping the accept loop) cancels the running
//! attempt at its next journaled class, persists it back to `queued`,
//! and stops accepting connections. Nothing is lost: the next server
//! over the same store resumes the drained job from its journal prefix.

use crate::http::{json_escape, read_request, respond, respond_json, start_stream, Request};
use crate::hub::EventHub;
use crate::job::{Job, JobSpec, JobState};
use crate::runner::{JobRunner, RunOutcome};
use dotm_core::ShardSpec;
use dotm_store::{journal_progress, segment_path};
use std::collections::{HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct QueueState {
    queue: VecDeque<String>,
    running: Option<String>,
    next_seq: u64,
    /// Remote shards handed out and not yet fully uploaded.
    claims: HashSet<(String, usize)>,
}

/// The service: shared state behind an `Arc`, driven by [`Server::run`].
pub struct Server {
    store_dir: PathBuf,
    jobs_dir: PathBuf,
    hub: EventHub,
    runner: Box<dyn JobRunner>,
    state: Mutex<QueueState>,
    work: Condvar,
    shutdown: AtomicBool,
    cancel: AtomicBool,
    bound: Mutex<Option<SocketAddr>>,
    bound_wake: Condvar,
    /// Per-operation socket read/write timeout applied to every accepted
    /// connection (`DOTM_SERVE_IO_TIMEOUT_MS`, captured at construction).
    io_timeout: Duration,
}

fn poll_interval() -> Duration {
    Duration::from_millis(dotm_core::env::serve_poll_ms())
}

impl Server {
    /// A server over `store_dir` executing jobs through `runner`.
    /// Recovery happens here: crashed `running` records re-enter the
    /// queue before the listener ever opens.
    pub fn new(store_dir: PathBuf, runner: Box<dyn JobRunner>) -> Server {
        let jobs_dir = store_dir.join("jobs");
        let mut queue = VecDeque::new();
        let mut next_seq = 0u64;
        for mut job in Job::load_all(&jobs_dir) {
            next_seq = next_seq.max(job.seq + 1);
            if job.state == JobState::Running {
                eprintln!("[serve] job {} was running at shutdown — requeued", job.id);
                job.state = JobState::Queued;
                if let Err(e) = job.save(&jobs_dir) {
                    eprintln!("[serve] job {}: requeue failed: {e}", job.id);
                    continue;
                }
            }
            if job.state == JobState::Queued {
                queue.push_back(job.id);
            }
        }
        Server {
            store_dir,
            jobs_dir,
            hub: EventHub::new(),
            runner,
            state: Mutex::new(QueueState {
                queue,
                running: None,
                next_seq,
                claims: HashSet::new(),
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            bound: Mutex::new(None),
            bound_wake: Condvar::new(),
            io_timeout: Duration::from_millis(dotm_core::env::serve_io_timeout_ms()),
        }
    }

    /// Events currently buffered in memory for `job` — test observability
    /// for the hub's eviction contract.
    pub fn buffered_events(&self, job: &str) -> usize {
        self.hub.len(job)
    }

    /// The address the listener bound, waiting up to `timeout` for
    /// [`Server::run`] (on another thread) to get there.
    pub fn bound_addr(&self, timeout: Duration) -> Option<SocketAddr> {
        let mut bound = self.bound.lock().unwrap_or_else(|e| e.into_inner());
        while bound.is_none() {
            let (guard, wait) = self
                .bound_wake
                .wait_timeout(bound, timeout)
                .unwrap_or_else(|e| e.into_inner());
            bound = guard;
            if wait.timed_out() {
                break;
            }
        }
        *bound
    }

    /// Binds `addr` and serves until shutdown. The executor drains (the
    /// in-flight attempt is cancelled to a resumable journal state)
    /// before this returns; the listener closes when it does.
    pub fn run(self: &Arc<Self>, addr: &str) -> std::io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        eprintln!("[serve] listening on {local}");
        {
            let mut bound = self.bound.lock().unwrap_or_else(|e| e.into_inner());
            *bound = Some(local);
            self.bound_wake.notify_all();
        }
        dotm_obs::set_enabled(true);

        let executor = {
            let server = Arc::clone(self);
            std::thread::spawn(move || server.executor())
        };
        let poll = poll_interval();
        while !self.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = Arc::clone(self);
                    std::thread::spawn(move || server.handle(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: cancel the in-flight attempt and wake the executor so
        // it observes the flag even with an empty queue.
        self.cancel.store(true, Ordering::Release);
        self.work.notify_all();
        executor.join().expect("executor thread");
        eprintln!("[serve] drained; listener closed");
        Ok(())
    }

    /// Requests shutdown (also reachable over HTTP as `POST /shutdown`).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cancel.store(true, Ordering::Release);
        self.work.notify_all();
    }

    // ---- executor ----------------------------------------------------

    fn executor(self: Arc<Self>) {
        let poll = poll_interval();
        loop {
            let id = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(id) = st.queue.pop_front() {
                        break id;
                    }
                    let (guard, _) = self
                        .work
                        .wait_timeout(st, poll)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            };
            let Some(mut job) = Job::load(&self.jobs_dir, &id) else {
                eprintln!("[serve] job {id}: record vanished from the queue");
                continue;
            };
            job.state = JobState::Running;
            if let Err(e) = job.save(&self.jobs_dir) {
                eprintln!("[serve] job {id}: cannot persist running state: {e}");
                continue;
            }
            self.state.lock().unwrap_or_else(|e| e.into_inner()).running = Some(id.clone());
            self.hub.publish(
                &id,
                format!(
                    "{{\"event\":\"state\",\"state\":\"running\",\"attempt\":{}}}",
                    job.attempts
                ),
            );
            let hub = &self.hub;
            let events = |event: String| hub.publish(&id, event);
            let outcome = self.runner.run(&job, &events, &self.cancel);
            job.attempts += 1;
            match outcome {
                RunOutcome::Merged { report } => match write_report(&self.jobs_dir, &id, &report) {
                    Ok(()) => {
                        job.state = JobState::Merged;
                        job.exit = 0;
                        dotm_obs::counter("serve.jobs_merged", 1);
                    }
                    Err(e) => {
                        eprintln!("[serve] job {id}: report write failed: {e}");
                        job.state = JobState::Failed;
                        job.exit = crate::exit::IO;
                    }
                },
                RunOutcome::Interrupted => {
                    // Back to the queue, resumable. On shutdown this is
                    // the drain; otherwise it re-enters at the front so
                    // the resume happens before newer work.
                    job.state = JobState::Queued;
                    dotm_obs::counter("serve.jobs_interrupted", 1);
                }
                RunOutcome::Failed { class, code } => {
                    job.state = JobState::Failed;
                    job.exit = code;
                    dotm_obs::counter("serve.jobs_failed", 1);
                    self.hub.publish(
                        &id,
                        format!(
                            "{{\"event\":\"failure\",\"class\":\"{}\",\"exit\":{code}}}",
                            class.name()
                        ),
                    );
                }
            }
            if let Err(e) = job.save(&self.jobs_dir) {
                eprintln!(
                    "[serve] job {id}: cannot persist {} state: {e}",
                    job.state.name()
                );
            }
            {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.running = None;
                if job.state == JobState::Queued && !self.shutdown.load(Ordering::Acquire) {
                    st.queue.push_front(id.clone());
                }
                if job.state != JobState::Running {
                    st.claims.retain(|(j, _)| j != &id);
                }
            }
            self.hub.publish(
                &id,
                format!("{{\"event\":\"state\",\"state\":\"{}\"}}", job.state.name()),
            );
        }
    }

    // ---- routing -----------------------------------------------------

    fn handle(self: Arc<Self>, mut stream: TcpStream) {
        // A stalled peer may hold its connection, but every blocking
        // socket operation — including the request read below — times
        // out, so it can never park this thread forever.
        let _ = stream.set_read_timeout(Some(self.io_timeout));
        let _ = stream.set_write_timeout(Some(self.io_timeout));
        let Ok(Some(req)) = read_request(&mut stream) else {
            return;
        };
        dotm_obs::counter("serve.requests", 1);
        let segments: Vec<String> = req.segments().iter().map(|s| s.to_string()).collect();
        let parts: Vec<&str> = segments.iter().map(String::as_str).collect();
        let result = match (req.method.as_str(), parts.as_slice()) {
            ("POST", ["jobs"]) => self.submit(&mut stream, &req),
            ("GET", ["jobs", id]) => self.status(&mut stream, id),
            ("GET", ["jobs", id, "events"]) => self.stream_events(&mut stream, id),
            ("GET", ["jobs", id, "report"]) => self.report(&mut stream, id),
            ("POST", ["jobs", id, "shards", shard, "claim"]) => self.claim(&mut stream, id, shard),
            ("POST", ["jobs", id, "shards", shard, "segments", name]) => {
                self.upload(&mut stream, id, shard, name, &req.body)
            }
            ("GET", ["store", "occupancy"]) => self.occupancy(&mut stream),
            ("GET", ["metrics"]) => self.metrics(&mut stream),
            ("POST", ["shutdown"]) => {
                let r = respond_json(&mut stream, 200, "{\"ok\":true}");
                self.request_shutdown();
                r
            }
            _ => respond_json(&mut stream, 404, "{\"error\":\"no such route\"}"),
        };
        if let Err(e) = result {
            eprintln!("[serve] {} {}: {e}", req.method, req.path);
        }
    }

    fn submit(&self, stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
        if self.shutdown.load(Ordering::Acquire) {
            return respond_json(stream, 503, "{\"error\":\"shutting down\"}");
        }
        let spec = match JobSpec::parse(&req.body) {
            Ok(spec) => spec,
            Err(e) => {
                let msg = format!("{{\"error\":\"{}\"}}", json_escape(&e));
                return respond_json(stream, 400, &msg);
            }
        };
        let id = spec.id();
        // Decide under the lock, respond after it drops — `status_json`
        // takes the same lock for the queue depth.
        let decision = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let queued_or_running = st.queue.contains(&id) || st.running.as_deref() == Some(&id);
            match Job::load(&self.jobs_dir, &id) {
                Some(job) if job.state == JobState::Merged && !spec.fresh => Ok((200, job, true)),
                Some(job) if queued_or_running => Ok((202, job, false)),
                _ => {
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    let job = Job::new(spec, seq);
                    match job.save(&self.jobs_dir) {
                        Ok(()) => {
                            st.queue.push_back(id.clone());
                            dotm_obs::counter("serve.jobs_submitted", 1);
                            Ok((202, job, false))
                        }
                        Err(e) => Err(e.to_string()),
                    }
                }
            }
        };
        match decision {
            Ok((status, job, cached)) => {
                self.work.notify_all();
                respond_json(stream, status, &self.status_json(&job, cached))
            }
            Err(e) => {
                let msg = format!("{{\"error\":\"{}\"}}", json_escape(&e));
                respond_json(stream, 500, &msg)
            }
        }
    }

    fn status(&self, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
        match Job::load(&self.jobs_dir, id) {
            Some(job) => respond_json(stream, 200, &self.status_json(&job, false)),
            None => respond_json(stream, 404, "{\"error\":\"unknown job\"}"),
        }
    }

    fn report(&self, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
        let Some(job) = Job::load(&self.jobs_dir, id) else {
            return respond_json(stream, 404, "{\"error\":\"unknown job\"}");
        };
        if job.state != JobState::Merged {
            let msg = format!("{{\"error\":\"job is {}, not merged\"}}", job.state.name());
            return respond_json(stream, 409, &msg);
        }
        match std::fs::read(Job::report_path(&self.jobs_dir, id)) {
            Ok(bytes) => respond(stream, 200, "text/plain; charset=utf-8", &bytes),
            Err(_) => respond_json(stream, 500, "{\"error\":\"report file missing\"}"),
        }
    }

    fn stream_events(&self, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
        use std::io::Write;
        let Some(job) = Job::load(&self.jobs_dir, id) else {
            return respond_json(stream, 404, "{\"error\":\"unknown job\"}");
        };
        start_stream(stream, "application/x-ndjson")?;
        // Opening snapshot from disk — valid even on a freshly restarted
        // server whose hub is empty.
        let snapshot = format!("{{\"event\":\"snapshot\",{}}}\n", job.status_fields());
        stream.write_all(snapshot.as_bytes())?;
        stream.flush()?;
        let poll = poll_interval();
        let mut from = 0usize;
        loop {
            let (next, batch) = self.hub.read_from(id, from, poll);
            from = next;
            for event in &batch {
                stream.write_all(event.as_bytes())?;
                stream.write_all(b"\n")?;
            }
            if !batch.is_empty() {
                stream.flush()?;
                continue;
            }
            // Quiet: terminal state (or server shutdown) ends the
            // stream with an explicit `end` event.
            let state = Job::load(&self.jobs_dir, id).map(|j| j.state);
            let terminal = matches!(state, Some(JobState::Merged | JobState::Failed) | None);
            if terminal || self.shutdown.load(Ordering::Acquire) {
                let end = format!(
                    "{{\"event\":\"end\",\"state\":\"{}\"}}\n",
                    state.map_or("unknown", JobState::name)
                );
                stream.write_all(end.as_bytes())?;
                let flushed = stream.flush();
                // The history has now served its purpose: the job is
                // terminal on disk and its `end` event has replayed, so
                // the in-memory buffer is released. Later subscribers
                // still get the disk snapshot above plus a fresh `end`
                // — only the replay of intermediate events is gone.
                if terminal {
                    self.hub.retire(id);
                }
                return flushed;
            }
        }
    }

    fn claim(&self, stream: &mut TcpStream, id: &str, shard: &str) -> std::io::Result<()> {
        let Some(job) = Job::load(&self.jobs_dir, id) else {
            return respond_json(stream, 404, "{\"error\":\"unknown job\"}");
        };
        let Ok(index) = shard.parse::<usize>() else {
            return respond_json(stream, 400, "{\"error\":\"bad shard index\"}");
        };
        if !job.spec.remote {
            return respond_json(stream, 409, "{\"error\":\"not a remote job\"}");
        }
        if index >= job.spec.workers {
            let msg = format!(
                "{{\"error\":\"shard {index} out of range (workers={})\"}}",
                job.spec.workers
            );
            return respond_json(stream, 400, &msg);
        }
        if matches!(job.state, JobState::Merged | JobState::Failed) {
            return respond_json(stream, 409, "{\"error\":\"job already finished\"}");
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.claims.insert((id.to_string(), index)) {
            return respond_json(stream, 409, "{\"error\":\"shard already claimed\"}");
        }
        drop(st);
        // Everything a pull worker needs to run
        // `campaign --shard index/workers` against its own store and
        // upload the sealed segments back.
        let msg = format!(
            "{{\"job\":\"{}\",\"shard\":{index},\"shards\":{},\"defects\":{},\"seed\":{},\
             \"gs_common\":{},\"gs_mm\":{},\"max_classes\":{},\"macros\":\"{}\"}}",
            json_escape(id),
            job.spec.workers,
            job.spec.defects,
            job.spec.seed,
            job.spec.gs_common,
            job.spec.gs_mm,
            job.spec.max_classes,
            json_escape(&job.spec.macros.join(",")),
        );
        respond_json(stream, 200, &msg)
    }

    fn upload(
        &self,
        stream: &mut TcpStream,
        id: &str,
        shard: &str,
        name: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let Some(job) = Job::load(&self.jobs_dir, id) else {
            return respond_json(stream, 404, "{\"error\":\"unknown job\"}");
        };
        let Ok(index) = shard.parse::<usize>() else {
            return respond_json(stream, 400, "{\"error\":\"bad shard index\"}");
        };
        if !job.spec.remote || index >= job.spec.workers {
            return respond_json(stream, 409, "{\"error\":\"not an open remote shard\"}");
        }
        if !job.spec.macros.iter().any(|m| m == name) {
            return respond_json(stream, 400, "{\"error\":\"macro not part of this job\"}");
        }
        let Ok(text) = std::str::from_utf8(body) else {
            return respond_json(stream, 400, "{\"error\":\"segment is not UTF-8\"}");
        };
        let expected = (index, job.spec.workers);
        match dotm_store::journal_progress_text(text) {
            Some(p) if p.shard == Some(expected) && p.macro_name == name && p.sealed => {}
            Some(p) if p.shard != Some(expected) || p.macro_name != name => {
                return respond_json(stream, 400, "{\"error\":\"segment header mismatch\"}");
            }
            _ => {
                return respond_json(stream, 400, "{\"error\":\"segment not sealed\"}");
            }
        }
        let jdir = self.store_dir.join("journal");
        let spec = ShardSpec::new(index, job.spec.workers).expect("index < workers checked above");
        let path = segment_path(&jdir, name, spec);
        if let Err(e) = write_atomically(&path, body) {
            let msg = format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string()));
            return respond_json(stream, 500, &msg);
        }
        respond_json(stream, 200, "{\"ok\":true}")
    }

    fn occupancy(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        match dotm_store::occupancy(&self.store_dir) {
            Ok(occ) => {
                let msg = format!(
                    "{{\"entries\":{},\"bytes\":{},\"name_digest\":\"{:016x}\"}}",
                    occ.entries, occ.bytes, occ.name_digest
                );
                respond_json(stream, 200, &msg)
            }
            Err(e) => {
                let msg = format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string()));
                respond_json(stream, 500, &msg)
            }
        }
    }

    fn metrics(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let (depth, running) = {
            let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            (st.queue.len(), st.running.is_some() as usize)
        };
        let jobs = Job::load_all(&self.jobs_dir);
        let count = |state: JobState| jobs.iter().filter(|j| j.state == state).count();
        let mut out = format!(
            "queue_depth {depth}\njobs_running {running}\njobs_total {}\n\
             jobs_queued {}\njobs_merged {}\njobs_failed {}\n",
            jobs.len(),
            count(JobState::Queued),
            count(JobState::Merged),
            count(JobState::Failed),
        );
        for (name, value) in dotm_obs::counters_snapshot() {
            out.push_str(&format!("counter.{name} {value}\n"));
        }
        for (name, calls, ns) in dotm_obs::phase_totals() {
            if calls > 0 {
                out.push_str(&format!(
                    "phase.{name}.calls {calls}\nphase.{name}.ns {ns}\n"
                ));
            }
        }
        respond(stream, 200, "text/plain; charset=utf-8", out.as_bytes())
    }

    // ---- helpers -----------------------------------------------------

    fn status_json(&self, job: &Job, cached: bool) -> String {
        let depth = {
            let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.queue.len()
        };
        format!(
            "{{{},\"cached\":{cached},\"queue_depth\":{depth},\"progress\":[{}]}}",
            job.status_fields(),
            self.progress_json(job),
        )
    }

    /// Live per-file journal/segment snapshots for the job's macros,
    /// sorted by file name — valid mid-write (see `dotm-store`'s
    /// concurrent-read contract).
    fn progress_json(&self, job: &Job) -> String {
        let jdir = self.store_dir.join("journal");
        let Ok(entries) = std::fs::read_dir(&jdir) else {
            return String::new();
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jnl"))
            .collect();
        files.sort();
        let mut parts = Vec::new();
        for path in files {
            let Some(p) = journal_progress(&path) else {
                continue;
            };
            if !job.spec.macros.contains(&p.macro_name) {
                continue;
            }
            let file = path
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            let shard = match p.shard {
                Some((i, n)) => format!("[{i},{n}]"),
                None => "null".to_string(),
            };
            parts.push(format!(
                "{{\"file\":\"{}\",\"macro\":\"{}\",\"classes\":{},\"done\":{},\
                 \"sealed\":{},\"shard\":{shard}}}",
                json_escape(&file),
                json_escape(&p.macro_name),
                p.classes,
                p.done,
                p.sealed,
            ));
        }
        parts.join(",")
    }
}

fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn write_report(jobs_dir: &Path, id: &str, report: &[u8]) -> std::io::Result<()> {
    write_atomically(&Job::report_path(jobs_dir, id), report)
}

/// Builds and runs a server: binds `addr`, serves until shutdown, then
/// drains. The production entry point behind `campaign --serve`.
pub fn serve(addr: &str, store_dir: PathBuf, runner: Box<dyn JobRunner>) -> std::io::Result<()> {
    Arc::new(Server::new(store_dir, runner)).run(addr)
}
