//! A deliberately small HTTP/1.1 surface over `std::net::TcpStream`:
//! enough to parse one request (method, path, `Content-Length` body)
//! and write one response, matching the repo's hermetic zero-dependency
//! style. Each connection carries exactly one exchange
//! (`Connection: close`); the progress stream writes an unframed body
//! and signals its end by closing the socket, which HTTP/1.1 permits
//! for close-delimited responses.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body accepted (segment uploads dominate; the anchor
/// campaign's segments are a few KiB, so 64 MiB is generous headroom).
const MAX_BODY: usize = 64 << 20;

/// Largest request head (request line + headers) accepted. The service's
/// own routes fit in a few hundred bytes; 64 KiB leaves room for any
/// reasonable proxy headers while bounding what one connection can make
/// the parser buffer.
const MAX_HEAD: usize = 64 << 10;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The path split on `/`, empty segments dropped: `/jobs/x/report`
    /// → `["jobs", "x", "report"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Reads one head line against the remaining head budget. `Ok(None)`
/// when the line would exceed the budget — a request line or header
/// growing without bound is a malformation, not an I/O error.
fn read_head_line(
    reader: &mut BufReader<&mut TcpStream>,
    budget: &mut usize,
    line: &mut String,
) -> std::io::Result<Option<usize>> {
    line.clear();
    let n = reader.by_ref().take(*budget as u64).read_line(line)?;
    *budget -= n;
    if *budget == 0 && !line.ends_with('\n') {
        return Ok(None);
    }
    Ok(Some(n))
}

/// Reads one request from the stream. `Ok(None)` when the peer closed
/// without sending one, or on any malformation (the caller just drops
/// the connection — a malformed request line has no useful reply).
/// Malformation includes a head larger than [`MAX_HEAD`] or a
/// `Content-Length` beyond [`MAX_BODY`]; the body is read incrementally,
/// so a peer that *claims* a large body but never sends it costs no
/// allocation beyond the bytes it actually delivered.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEAD;
    let mut line = String::new();
    match read_head_line(&mut reader, &mut budget, &mut line)? {
        None | Some(0) => return Ok(None),
        Some(_) => {}
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    let mut header = String::new();
    loop {
        match read_head_line(&mut reader, &mut budget, &mut header)? {
            None | Some(0) => return Ok(None),
            Some(_) => {}
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let Ok(n) = value.trim().parse::<usize>() else {
                    return Ok(None);
                };
                if n > MAX_BODY {
                    return Ok(None);
                }
                content_length = n;
            }
        }
    }
    // Grow the body as bytes arrive instead of trusting the header with
    // an upfront allocation; a short read (peer closed early) is a
    // malformed request like any other.
    let mut body = Vec::new();
    if content_length > 0 {
        reader
            .by_ref()
            .take(content_length as u64)
            .read_to_end(&mut body)?;
        if body.len() < content_length {
            return Ok(None);
        }
    }
    Ok(Some(Request { method, path, body }))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn respond_json(stream: &mut TcpStream, status: u16, json: &str) -> std::io::Result<()> {
    respond(stream, status, "application/json", json.as_bytes())
}

/// Starts a close-delimited streaming response (no `Content-Length`):
/// the caller writes body chunks directly and ends the body by dropping
/// the connection.
pub fn start_stream(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Escapes a string for embedding in a JSON value.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn exchange(raw: &[u8]) -> Option<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            // Over-limit requests make the server hang up mid-send;
            // the client shrugging at the broken pipe is part of the
            // contract under test.
            let _ = s.write_all(&raw);
            let _ = s.flush();
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn).expect("read");
        client.join().expect("client");
        req
    }

    #[test]
    fn parses_method_path_and_body() {
        let req = exchange(b"POST /jobs?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\nabcd")
            .expect("a request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.segments(), vec!["jobs"]);
    }

    #[test]
    fn empty_and_malformed_requests_read_as_none() {
        assert!(exchange(b"").is_none());
        assert!(exchange(b"\r\n\r\n").is_none());
        assert!(
            exchange(b"GET / HTTP/1.1\r\nContent-Length: oops\r\n\r\n").is_none(),
            "unparseable length"
        );
    }

    #[test]
    fn oversized_heads_read_as_none() {
        // One header line past the head cap: the parser must stop
        // buffering and reject, not grow the line without bound.
        let mut raw = b"GET / HTTP/1.1\r\nX-Junk: ".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_HEAD));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(exchange(&raw).is_none(), "head over {MAX_HEAD} bytes");

        // Many small headers summing past the cap are rejected too.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0.. {
            raw.extend_from_slice(format!("X-H{i}: {:0>120}\r\n", i).as_bytes());
            if raw.len() > MAX_HEAD {
                break;
            }
        }
        raw.extend_from_slice(b"\r\n");
        assert!(exchange(&raw).is_none(), "cumulative head over the cap");
    }

    #[test]
    fn declared_lengths_past_the_cap_and_truncated_bodies_read_as_none() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(exchange(huge.as_bytes()).is_none(), "length over the cap");
        assert!(
            exchange(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_none(),
            "peer closed before delivering the declared body"
        );
    }

    #[test]
    fn segments_split_nested_paths() {
        let req = exchange(b"GET /jobs/abc/shards/3/claim HTTP/1.1\r\n\r\n").expect("request");
        assert_eq!(req.segments(), vec!["jobs", "abc", "shards", "3", "claim"]);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
