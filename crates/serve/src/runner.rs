//! Job execution: the [`JobRunner`] seam between the server's queue
//! machinery and the campaign binary.
//!
//! The real implementation ([`SubprocessRunner`]) spawns the `campaign`
//! binary and captures its stdout verbatim — the served report *is* the
//! CLI's bytes by construction, which is what makes the HTTP
//! byte-identity gate a tautology rather than a hope. Tests swap in a
//! scripted runner to drive the queue through crashes and restarts
//! without building circuits.

use crate::exit::{classify, FailureClass, IO};
use crate::job::Job;
use dotm_core::ShardSpec;
use dotm_store::{journal_progress, segment_path, JournalProgress};
use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How one run attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Success: the campaign's stdout, byte-for-byte.
    Merged {
        /// Report bytes (the subprocess's captured stdout).
        report: Vec<u8>,
    },
    /// The run stopped at a journaled point (deliberate abort or a
    /// service cancellation) and will resume when re-run.
    Interrupted,
    /// The run failed; `class` is the exit-code classification.
    Failed {
        /// Why.
        class: FailureClass,
        /// The raw exit code (for the job record).
        code: i32,
    },
}

/// Executes one job attempt. `events` receives NDJSON event payloads
/// (without trailing newline) as the run progresses — possibly from a
/// reader thread, hence `Sync`; `cancel` flips when the server wants
/// the attempt stopped at the next journaled point.
pub trait JobRunner: Send + Sync {
    /// Runs the attempt to completion (or cancellation) and reports how
    /// it ended.
    fn run(&self, job: &Job, events: &(dyn Fn(String) + Sync), cancel: &AtomicBool) -> RunOutcome;
}

/// The production runner: spawns the campaign binary per job.
pub struct SubprocessRunner {
    exe: PathBuf,
    store_dir: PathBuf,
}

/// Parses one `[progress] macro=<m> class=<done>/<total>` stderr line
/// into its event payload. `None` for every other line.
pub fn parse_progress_line(line: &str) -> Option<String> {
    let rest = line.strip_prefix("[progress] ")?;
    let macro_name = rest.strip_prefix("macro=")?.split_whitespace().next()?;
    let class = rest.split("class=").nth(1)?;
    let (done, total) = class.trim().split_once('/')?;
    let done: usize = done.parse().ok()?;
    let total: usize = total.parse().ok()?;
    Some(format!(
        "{{\"event\":\"progress\",\"macro\":\"{macro_name}\",\"done\":{done},\"classes\":{total}}}"
    ))
}

impl SubprocessRunner {
    /// A runner that spawns `exe` (the campaign binary) against
    /// `store_dir`.
    pub fn new(exe: PathBuf, store_dir: PathBuf) -> SubprocessRunner {
        SubprocessRunner { exe, store_dir }
    }

    fn command(&self, job: &Job) -> Command {
        let mut cmd = Command::new(&self.exe);
        if job.spec.remote {
            cmd.arg("--merge")
                .arg("--shards")
                .arg(job.spec.workers.to_string());
        } else if job.spec.workers > 0 {
            cmd.arg("--workers").arg(job.spec.workers.to_string());
        } else if job.attempts > 0 {
            // Only re-attempts resume: `--resume` stamps a ", resuming"
            // suffix on the report header, and a first attempt's stdout
            // must be byte-identical to the plain CLI campaign.
            cmd.arg("--resume");
        }
        // The job spec fully determines the campaign environment; the
        // server's own injection/sharding knobs must not leak through.
        for stale in [
            "DOTM_ABORT_AFTER",
            "DOTM_EXPECT_WARM",
            "DOTM_SHARD",
            "DOTM_SHARDS",
            "DOTM_SHARD_ABORT_ONCE",
        ] {
            cmd.env_remove(stale);
        }
        cmd.env("DOTM_STORE_DIR", &self.store_dir)
            .env("DOTM_DEFECTS", job.spec.defects.to_string())
            .env("DOTM_SEED", job.spec.seed.to_string())
            .env("DOTM_GS_COMMON", job.spec.gs_common.to_string())
            .env("DOTM_GS_MM", job.spec.gs_mm.to_string())
            .env("DOTM_MAX_CLASSES", job.spec.max_classes.to_string())
            .env("DOTM_THREADS", job.spec.threads.to_string())
            .env("DOTM_MACROS", job.spec.macros.join(","))
            .env("DOTM_PROGRESS", "1")
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if job.attempts == 0 && job.spec.abort_once > 0 {
            cmd.env("DOTM_ABORT_AFTER", job.spec.abort_once.to_string());
        }
        cmd
    }

    /// Waits for the child, polling `cancel`; a cancelled child is
    /// killed (the journal keeps every flushed class) and reported as
    /// interrupted.
    fn supervise(
        &self,
        mut child: Child,
        events: &(dyn Fn(String) + Sync),
        cancel: &AtomicBool,
    ) -> RunOutcome {
        let poll = Duration::from_millis(dotm_core::env::serve_poll_ms());
        let stdout = child.stdout.take().expect("stdout piped");
        let stderr = child.stderr.take().expect("stderr piped");
        let (report, killed, status) = std::thread::scope(|scope| {
            let out = scope.spawn(move || {
                let mut bytes = Vec::new();
                let mut reader = stdout;
                let _ = reader.read_to_end(&mut bytes);
                bytes
            });
            // Stderr drains live: `[progress]` lines become events the
            // moment the campaign's observer emits them; everything else
            // is forwarded chatter.
            let err = scope.spawn(move || {
                for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                    if let Some(event) = parse_progress_line(&line) {
                        events(event);
                    } else {
                        eprintln!("[job] {line}");
                    }
                }
            });
            let mut killed = false;
            let status = loop {
                if cancel.load(Ordering::Acquire) && !killed {
                    let _ = child.kill();
                    killed = true;
                }
                match child.try_wait() {
                    Ok(Some(status)) => break status,
                    Ok(None) => std::thread::sleep(poll),
                    Err(_) => {
                        let _ = child.kill();
                        break child.wait().expect("child must be reapable");
                    }
                }
            };
            let report = out.join().expect("stdout reader");
            err.join().expect("stderr reader");
            (report, killed, status)
        });
        if killed {
            return RunOutcome::Interrupted;
        }
        match classify(status.code()) {
            None => RunOutcome::Merged { report },
            Some(FailureClass::Interrupted) => RunOutcome::Interrupted,
            Some(class) => RunOutcome::Failed {
                class,
                code: status.code().unwrap_or(IO),
            },
        }
    }

    /// Remote jobs: wait until every `(macro, shard)` segment under the
    /// journal directory is sealed (uploaded by pull workers), then
    /// merge. Progress events report uploaded-class totals per macro.
    fn await_segments(
        &self,
        job: &Job,
        events: &(dyn Fn(String) + Sync),
        cancel: &AtomicBool,
    ) -> bool {
        let jdir = self.store_dir.join("journal");
        let poll = Duration::from_millis(dotm_core::env::serve_poll_ms());
        let mut last: Vec<(String, usize)> = Vec::new();
        loop {
            if cancel.load(Ordering::Acquire) {
                return false;
            }
            let mut complete = true;
            let mut totals: Vec<(String, usize)> = Vec::new();
            for name in &job.spec.macros {
                let mut done = 0usize;
                for index in 0..job.spec.workers {
                    let shard = ShardSpec::new(index, job.spec.workers).expect("validated spec");
                    let snapshot = journal_progress(&segment_path(&jdir, name, shard));
                    match snapshot {
                        Some(JournalProgress {
                            sealed: true,
                            done: d,
                            ..
                        }) => done += d,
                        Some(JournalProgress { done: d, .. }) => {
                            complete = false;
                            done += d;
                        }
                        None => complete = false,
                    }
                }
                totals.push((name.clone(), done));
            }
            if totals != last {
                for (name, done) in &totals {
                    events(format!(
                        "{{\"event\":\"upload\",\"macro\":\"{name}\",\"done\":{done}}}"
                    ));
                }
                last = totals;
            }
            if complete {
                return true;
            }
            std::thread::sleep(poll);
        }
    }
}

impl JobRunner for SubprocessRunner {
    fn run(&self, job: &Job, events: &(dyn Fn(String) + Sync), cancel: &AtomicBool) -> RunOutcome {
        if job.spec.remote && !self.await_segments(job, events, cancel) {
            return RunOutcome::Interrupted;
        }
        match self.command(job).spawn() {
            Ok(child) => self.supervise(child, events, cancel),
            Err(err) => RunOutcome::Failed {
                class: FailureClass::Io,
                code: crate::exit::io_exit_code(&err),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_lines_parse_and_chatter_does_not() {
        assert_eq!(
            parse_progress_line("[progress] macro=comparator class=3/8"),
            Some(
                "{\"event\":\"progress\",\"macro\":\"comparator\",\"done\":3,\"classes\":8}"
                    .to_string()
            )
        );
        for line in [
            "[campaign] merging 2 shard segments",
            "[progress] macro=comparator",
            "[progress] class=3/8",
            "[progress] macro=x class=three/8",
            "plain chatter",
        ] {
            assert_eq!(parse_progress_line(line), None, "{line:?}");
        }
    }

    #[test]
    fn command_shape_follows_the_spec() {
        let runner = SubprocessRunner::new(PathBuf::from("campaign"), PathBuf::from("/tmp/store"));
        let mut job = Job::new(crate::job::JobSpec::from_env(), 0);

        let args = |cmd: &Command| -> Vec<String> {
            cmd.get_args()
                .map(|a| a.to_string_lossy().into_owned())
                .collect()
        };
        let env_of = |cmd: &Command, name: &str| -> Option<String> {
            cmd.get_envs()
                .find(|(k, _)| *k == std::ffi::OsStr::new(name))
                .and_then(|(_, v)| v.map(|v| v.to_string_lossy().into_owned()))
        };

        job.spec.workers = 0;
        assert!(
            args(&runner.command(&job)).is_empty(),
            "first attempt runs plain"
        );
        job.attempts = 2;
        assert_eq!(args(&runner.command(&job)), ["--resume"]);
        job.attempts = 0;
        job.spec.workers = 3;
        assert_eq!(args(&runner.command(&job)), ["--workers", "3"]);
        job.spec.remote = true;
        assert_eq!(args(&runner.command(&job)), ["--merge", "--shards", "3"]);

        // Crash injection only on the very first attempt.
        job.spec.abort_once = 5;
        job.attempts = 0;
        assert_eq!(
            env_of(&runner.command(&job), "DOTM_ABORT_AFTER"),
            Some("5".into())
        );
        job.attempts = 1;
        assert_eq!(env_of(&runner.command(&job), "DOTM_ABORT_AFTER"), None);
        assert_eq!(
            env_of(&runner.command(&job), "DOTM_PROGRESS"),
            Some("1".into())
        );
        assert_eq!(
            env_of(&runner.command(&job), "DOTM_STORE_DIR"),
            Some("/tmp/store".into())
        );
    }
}
