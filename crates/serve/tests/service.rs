//! Service-level integration tests: a real listening [`Server`] driven
//! over loopback HTTP, with a scripted [`JobRunner`] standing in for
//! the campaign binary. Covers the queue lifecycle (submit → running →
//! merged, FIFO order, dedup), the crash contract (shutdown drains to a
//! resumable `queued` record; a restarted server resumes it; a record
//! stuck in `running` re-enters the queue), the NDJSON event stream,
//! and the remote-shard claim/upload contract.

use dotm_core::{ClassOutcome, CurrentFlags, DetectionSet, ShardSpec, VoltageSignature};
use dotm_defects::FaultMechanism;
use dotm_faults::Severity;
use dotm_serve::{Job, JobRunner, JobState, RunOutcome, Server};
use dotm_sim::SimStats;
use dotm_store::{create_segment, segment_path, JournalHeader};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dotm-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

struct ScriptedRunner<F>(F);

impl<F> JobRunner for ScriptedRunner<F>
where
    F: Fn(&Job, &(dyn Fn(String) + Sync), &AtomicBool) -> RunOutcome + Send + Sync,
{
    fn run(&self, job: &Job, events: &(dyn Fn(String) + Sync), cancel: &AtomicBool) -> RunOutcome {
        (self.0)(job, events, cancel)
    }
}

fn runner<F>(f: F) -> Box<dyn JobRunner>
where
    F: Fn(&Job, &(dyn Fn(String) + Sync), &AtomicBool) -> RunOutcome + Send + Sync + 'static,
{
    Box::new(ScriptedRunner(f))
}

/// Blocks until `cancel` flips, then reports the attempt interrupted —
/// a stand-in for a long campaign run.
fn blocking_runner() -> Box<dyn JobRunner> {
    runner(|_job, _events, cancel| {
        while !cancel.load(Ordering::Acquire) {
            thread::sleep(Duration::from_millis(2));
        }
        RunOutcome::Interrupted
    })
}

type Running = (Arc<Server>, SocketAddr, JoinHandle<std::io::Result<()>>);

fn start(store: &Path, runner: Box<dyn JobRunner>) -> Running {
    let server = Arc::new(Server::new(store.to_path_buf(), runner));
    let handle = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run("127.0.0.1:0"))
    };
    let addr = server
        .bound_addr(Duration::from_secs(10))
        .expect("server must bind");
    (server, addr, handle)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("send head");
    stream.write_all(body).expect("send body");
    stream.flush().expect("flush");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `GET /jobs/:id` until its state matches, with a deadline.
fn wait_state(addr: SocketAddr, id: &str, state: &str) -> String {
    let needle = format!("\"state\":\"{state}\"");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), b"");
        assert_eq!(status, 200, "{body}");
        if body.contains(&needle) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {state}: {body}"
        );
        thread::sleep(Duration::from_millis(5));
    }
}

fn field<'a>(body: &'a str, key: &str) -> &'a str {
    let at = body
        .find(&format!("\"{key}\":"))
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + key.len()
        + 3;
    body[at..]
        .trim_start_matches('"')
        .split(['"', ',', '}'])
        .next()
        .expect("value")
}

#[test]
fn lifecycle_submit_run_report_and_dedup() {
    let store = tmpdir("lifecycle");
    let (_, addr, handle) = start(
        &store,
        runner(|job, events, _| {
            events(
                "{\"event\":\"progress\",\"macro\":\"comparator\",\"done\":1,\"classes\":2}"
                    .to_string(),
            );
            RunOutcome::Merged {
                report: format!("report for {}\n", job.id).into_bytes(),
            }
        }),
    );

    let (status, _) = request(addr, "GET", "/jobs/nope", b"");
    assert_eq!(status, 404);

    let body = br#"{"defects":100,"seed":1,"macros":"comparator"}"#;
    let (status, submitted) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{submitted}");
    assert!(submitted.contains("\"cached\":false"));
    let id = field(&submitted, "id").to_string();

    wait_state(addr, &id, "merged");
    let (status, report) = request(addr, "GET", &format!("/jobs/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(report, format!("report for {id}\n"));

    // Identical config — even with different execution knobs — answers
    // from the finished job without running anything.
    let warm = br#"{"defects":100,"seed":1,"macros":"comparator","workers":4}"#;
    let (status, cached) = request(addr, "POST", "/jobs", warm);
    assert_eq!(status, 200, "{cached}");
    assert!(cached.contains("\"cached\":true"), "{cached}");
    assert_eq!(field(&cached, "id"), id);

    // `fresh` forces a re-run of the same id.
    let fresh = br#"{"defects":100,"seed":1,"macros":"comparator","fresh":true}"#;
    let (status, rerun) = request(addr, "POST", "/jobs", fresh);
    assert_eq!(status, 202, "{rerun}");
    wait_state(addr, &id, "merged");

    let (status, metrics) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(metrics.contains("jobs_merged 1"), "{metrics}");
    assert!(
        metrics.contains("counter.serve.jobs_submitted"),
        "{metrics}"
    );

    let (status, occ) = request(addr, "GET", "/store/occupancy", b"");
    assert_eq!(status, 200, "{occ}");
    assert!(occ.contains("\"entries\":0"), "empty store: {occ}");

    let (status, _) = request(addr, "POST", "/shutdown", b"");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn queue_runs_jobs_in_submission_order() {
    let store = tmpdir("fifo");
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let seen = Arc::clone(&order);
    let (_, addr, handle) = start(
        &store,
        runner(move |job, _, _| {
            seen.lock().expect("order").push(job.id.clone());
            RunOutcome::Merged {
                report: b"ok\n".to_vec(),
            }
        }),
    );

    let mut ids = Vec::new();
    for seed in [11, 22, 33] {
        let body = format!("{{\"defects\":10,\"seed\":{seed},\"macros\":\"ladder\"}}");
        let (status, reply) = request(addr, "POST", "/jobs", body.as_bytes());
        assert_eq!(status, 202, "{reply}");
        ids.push(field(&reply, "id").to_string());
    }
    for id in &ids {
        wait_state(addr, id, "merged");
    }
    assert_eq!(*order.lock().expect("order"), ids, "FIFO by submission");

    let (_, _) = request(addr, "POST", "/shutdown", b"");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn shutdown_drains_and_a_restarted_server_resumes() {
    let store = tmpdir("drain");
    let jobs_dir = store.join("jobs");
    let (_, addr, handle) = start(&store, blocking_runner());

    let body = br#"{"defects":10,"seed":5,"macros":"bias_gen"}"#;
    let (status, reply) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{reply}");
    let id = field(&reply, "id").to_string();
    wait_state(addr, &id, "running");

    // Shutdown mid-run: the attempt is cancelled and drained back to a
    // persisted, resumable `queued` record before run() returns.
    let (status, _) = request(addr, "POST", "/shutdown", b"");
    assert_eq!(status, 200);
    handle.join().expect("server thread").expect("clean exit");
    let drained = Job::load(&jobs_dir, &id).expect("record survives shutdown");
    assert_eq!(drained.state, JobState::Queued, "drained to queued");
    assert_eq!(drained.attempts, 1, "the interrupted attempt counted");

    // Submitting to a down server fails at connect; the record is the
    // durable handoff. A new server over the same store picks it up
    // without any resubmission.
    let (_, addr2, handle2) = start(
        &store,
        runner(|_, _, _| RunOutcome::Merged {
            report: b"resumed\n".to_vec(),
        }),
    );
    wait_state(addr2, &id, "merged");
    let (status, report) = request(addr2, "GET", &format!("/jobs/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(report, "resumed\n");
    let finished = Job::load(&jobs_dir, &id).expect("record");
    assert_eq!(finished.attempts, 2);

    let (_, _) = request(addr2, "POST", "/shutdown", b"");
    handle2.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn a_record_crashed_while_running_reenters_the_queue() {
    let store = tmpdir("crashed");
    let jobs_dir = store.join("jobs");
    // Simulate a server killed mid-run: the record froze in `running`.
    let spec = dotm_serve::JobSpec::parse(br#"{"defects":10,"seed":9,"macros":"clock_gen"}"#)
        .expect("spec");
    let mut job = Job::new(spec, 0);
    job.state = JobState::Running;
    job.attempts = 1;
    job.save(&jobs_dir).expect("save");

    // Recovery happens in Server::new, before any listener exists.
    let _server = Server::new(store.clone(), blocking_runner());
    let recovered = Job::load(&jobs_dir, &job.id).expect("record");
    assert_eq!(recovered.state, JobState::Queued, "requeued at startup");
    assert_eq!(recovered.attempts, 1, "attempt history preserved");
    let _ = std::fs::remove_dir_all(&store);
}

/// Opens `GET /jobs/:id/events` and reads NDJSON lines until the `end`
/// event (which terminates every stream).
fn stream_ndjson(addr: SocketAddr, id: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /jobs/{id}/events HTTP/1.1\r\n\r\n").expect("send");
    stream.flush().expect("flush");
    let mut lines = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut in_body = false;
    while reader.read_line(&mut line).expect("read") > 0 {
        let trimmed = line.trim_end().to_string();
        if in_body && !trimmed.is_empty() {
            let done = trimmed.contains("\"event\":\"end\"");
            lines.push(trimmed);
            if done {
                break;
            }
        } else if trimmed.is_empty() {
            in_body = true;
        }
        line.clear();
    }
    lines
}

#[test]
fn event_stream_replays_history_and_ends() {
    let store = tmpdir("events");
    let (_, addr, handle) = start(
        &store,
        runner(|_, events, _| {
            events("{\"event\":\"progress\",\"macro\":\"ladder\",\"done\":2,\"classes\":4}".into());
            RunOutcome::Merged {
                report: b"r\n".to_vec(),
            }
        }),
    );
    let body = br#"{"defects":10,"seed":3,"macros":"ladder"}"#;
    let (_, reply) = request(addr, "POST", "/jobs", body);
    let id = field(&reply, "id").to_string();
    wait_state(addr, &id, "merged");

    // A late subscriber still sees the whole story: snapshot, the
    // buffered history, and an explicit end event.
    let lines = stream_ndjson(addr, &id);
    assert!(
        lines
            .first()
            .is_some_and(|l| l.contains("\"event\":\"snapshot\"")),
        "{lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"progress\"") && l.contains("\"done\":2")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"state\":\"running\"")),
        "{lines:?}"
    );
    assert!(
        lines
            .last()
            .is_some_and(|l| l.contains("\"event\":\"end\"") && l.contains("merged")),
        "{lines:?}"
    );

    let (_, _) = request(addr, "POST", "/shutdown", b"");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn finished_job_history_is_released_once_end_replays() {
    let store = tmpdir("retire");
    let (server, addr, handle) = start(
        &store,
        runner(|_, events, _| {
            events("{\"event\":\"progress\",\"macro\":\"ladder\",\"done\":3,\"classes\":4}".into());
            RunOutcome::Merged {
                report: b"r\n".to_vec(),
            }
        }),
    );
    let body = br#"{"defects":10,"seed":6,"macros":"ladder"}"#;
    let (_, reply) = request(addr, "POST", "/jobs", body);
    let id = field(&reply, "id").to_string();
    wait_state(addr, &id, "merged");
    assert!(
        server.buffered_events(&id) > 0,
        "an unwatched finished job still holds its history"
    );

    // The first subscriber replays the full history; its `end` retires
    // the in-memory buffer (shortly after the client sees the event).
    let lines = stream_ndjson(addr, &id);
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"progress\"")),
        "{lines:?}"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.buffered_events(&id) > 0 {
        assert!(
            Instant::now() < deadline,
            "finished job's event history was never released"
        );
        thread::sleep(Duration::from_millis(2));
    }

    // A later subscriber still gets a valid stream — the disk snapshot
    // and a fresh `end` — just no intermediate replay.
    let lines = stream_ndjson(addr, &id);
    assert!(
        lines
            .first()
            .is_some_and(|l| l.contains("\"event\":\"snapshot\"") && l.contains("merged")),
        "{lines:?}"
    );
    assert!(
        lines
            .last()
            .is_some_and(|l| l.contains("\"event\":\"end\"") && l.contains("merged")),
        "{lines:?}"
    );
    assert!(
        !lines.iter().any(|l| l.contains("\"event\":\"progress\"")),
        "retired history must not resurrect: {lines:?}"
    );

    let (_, _) = request(addr, "POST", "/shutdown", b"");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn stalled_clients_neither_block_jobs_nor_hold_their_sockets() {
    // Shorten the reaping timeout for the server built here; the knob is
    // captured at construction, and healthy test traffic completes each
    // socket operation in milliseconds either way.
    std::env::set_var("DOTM_SERVE_IO_TIMEOUT_MS", "500");
    let store = tmpdir("stalled");
    let (_, addr, handle) = start(
        &store,
        runner(|_, _, _| RunOutcome::Merged {
            report: b"ok\n".to_vec(),
        }),
    );
    std::env::remove_var("DOTM_SERVE_IO_TIMEOUT_MS");

    // One client stalls mid-head; another declares a megabyte body and
    // never sends a byte of it.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"POST /jobs HTTP/1.1\r\nContent-Le")
        .expect("partial head");
    slow.flush().expect("flush");
    let mut hungry = TcpStream::connect(addr).expect("connect");
    hungry
        .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n")
        .expect("head");
    hungry.flush().expect("flush");

    // The service keeps accepting and finishing work while both hang.
    let body = br#"{"defects":10,"seed":4,"macros":"ladder"}"#;
    let (status, reply) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{reply}");
    let id = field(&reply, "id").to_string();
    wait_state(addr, &id, "merged");

    // And the read timeout reaps both stalled connections: the server
    // hangs up, so each client sees EOF rather than its own (much
    // longer) read timeout firing.
    for (mut conn, tag) in [(slow, "mid-head"), (hungry, "bodyless")] {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("client timeout");
        let mut sink = Vec::new();
        let got = conn.read_to_end(&mut sink);
        assert!(
            got.is_ok(),
            "{tag}: server never closed the stalled socket: {got:?}"
        );
    }

    let (_, _) = request(addr, "POST", "/shutdown", b"");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
}

/// Builds a sealed shard segment's bytes the way a pull worker would.
fn sealed_segment(dir: &Path, macro_name: &str, index: usize, count: usize) -> Vec<u8> {
    let header = JournalHeader {
        context: 0xdead_beef,
        macro_name: macro_name.to_string(),
        classes: 4,
    };
    let shard = ShardSpec::new(index, count).expect("shard");
    let path = dir.join("scratch.jnl");
    let mut writer = create_segment(&path, &header, shard).expect("segment");
    for i in shard.range(header.classes) {
        let outcome = ClassOutcome {
            key: format!("class-{i}"),
            mechanism: FaultMechanism::Open,
            count: 1,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::OutputStuckAt,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags::default(),
            },
            flagged: vec![i],
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: SimStats::default(),
        };
        writer.record_class(i, &[outcome]).expect("record");
    }
    writer.finish(0x5ea1).expect("seal");
    let bytes = std::fs::read(&path).expect("segment bytes");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn remote_jobs_follow_the_claim_and_upload_contract() {
    let store = tmpdir("remote");
    let scratch = tmpdir("remote-scratch");
    let (_, addr, handle) = start(&store, blocking_runner());

    let body = br#"{"defects":10,"seed":8,"macros":"comparator","remote":true,"workers":2}"#;
    let (status, reply) = request(addr, "POST", "/jobs", body);
    assert_eq!(status, 202, "{reply}");
    let id = field(&reply, "id").to_string();
    wait_state(addr, &id, "running");

    // Claim: first taker wins, double claims conflict, bad indices 400.
    let claim = format!("/jobs/{id}/shards/0/claim");
    let (status, grant) = request(addr, "POST", &claim, b"");
    assert_eq!(status, 200, "{grant}");
    assert!(
        grant.contains("\"shard\":0") && grant.contains("\"shards\":2"),
        "{grant}"
    );
    assert!(
        grant.contains("\"defects\":10") && grant.contains("\"seed\":8"),
        "{grant}"
    );
    let (status, _) = request(addr, "POST", &claim, b"");
    assert_eq!(status, 409, "double claim");
    let (status, _) = request(addr, "POST", &format!("/jobs/{id}/shards/7/claim"), b"");
    assert_eq!(status, 400, "out-of-range shard");

    // Upload: garbage and mismatched headers are rejected; a sealed
    // segment with the right (macro, shard) lands at the segment path.
    let upload = format!("/jobs/{id}/shards/0/segments/comparator");
    let (status, _) = request(addr, "POST", &upload, b"not a segment");
    assert_eq!(status, 400, "garbage body");
    let wrong_shard = sealed_segment(&scratch, "comparator", 1, 2);
    let (status, _) = request(addr, "POST", &upload, &wrong_shard);
    assert_eq!(status, 400, "shard header mismatch");
    let (status, _) = request(
        addr,
        "POST",
        &format!("/jobs/{id}/shards/0/segments/ladder"),
        b"x",
    );
    assert_eq!(status, 400, "macro outside the job");

    let good = sealed_segment(&scratch, "comparator", 0, 2);
    let (status, ok) = request(addr, "POST", &upload, &good);
    assert_eq!(status, 200, "{ok}");
    let landed = segment_path(
        &store.join("journal"),
        "comparator",
        ShardSpec::new(0, 2).expect("shard"),
    );
    assert_eq!(std::fs::read(&landed).expect("uploaded segment"), good);

    let (_, _) = request(addr, "POST", "/shutdown", b"");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&scratch);
}
