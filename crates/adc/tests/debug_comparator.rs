//! Diagnostic dump of comparator internals (run with --nocapture).

use dotm_adc::comparator::*;
use dotm_adc::process::*;
use dotm_sim::Simulator;

#[test]
#[ignore]
fn dump_waveforms() {
    let stim = ComparatorStimulus::dc_offset(1.6, 0.03);
    let nl = comparator_testbench(ComparatorConfig::default(), &stim);
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(decision_sim_time(), 0.25e-9).unwrap();
    let nodes = [
        "ck1", "ck2", "ck3", "na", "nb", "ga", "gb", "oa", "ob", "ntail", "nls", "la", "lb", "fa",
        "fb", "xa", "xb", "ck2b",
    ];
    let probe_times: Vec<(f64, &str)> = vec![
        (Phase::Sample.settle_time(), "end sample c0"),
        (Phase::Amplify.settle_time(), "end amplify c0"),
        (75.0e-9, "r0"),
        (75.25e-9, "r1"),
        (75.5e-9, "r2"),
        (75.75e-9, "r3"),
        (76.0e-9, "r4"),
        (76.25e-9, "r5"),
        (76.5e-9, "r6"),
        (76.75e-9, "r7"),
        (Phase::Latch.settle_time(), "end latch c0"),
        (0.98 * CLOCK_PERIOD, "gap before c1"),
        (CLOCK_PERIOD + 5e-9, "early sample c1"),
        (CLOCK_PERIOD + Phase::Sample.settle_time(), "end sample c1"),
        (decision_time(), "decision"),
    ];
    for (t, label) in probe_times {
        let k = tr.index_at(t);
        print!("t={:6.1}ns {:16}", t * 1e9, label);
        for n in nodes {
            let id = nl.find_node(n).unwrap();
            print!(" {n}={:5.2}", tr.voltage(k, id));
        }
        println!();
    }
}

#[test]
#[ignore]
fn dump_clockgen_nodes() {
    use dotm_adc::clockgen::*;
    let nl = clockgen_testbench();
    let opts = dotm_sim::SimOptions {
        integration: dotm_sim::Integration::BackwardEuler,
        ..dotm_sim::SimOptions::default()
    };
    let mut sim = Simulator::with_options(&nl, opts);
    let tr = sim.transient(CLOCK_PERIOD, 0.5e-9).unwrap();
    let t = Phase::Sample.settle_time();
    let k = tr.index_at(t);
    for n in [
        "x1", "x2", "x3", "a1", "a2", "a3", "b1", "b2", "b3", "c1", "c2", "c3", "nmid1", "nmid2",
        "nmid3", "ck1", "ck2", "ck3",
    ] {
        let id = nl.find_node(n).unwrap();
        print!(" {n}={:5.2}", tr.voltage(k, id));
    }
    println!();
    let id = nl.device_id("VDDDIG").unwrap();
    for tt in [20e-9, 30e-9, 36e-9, 50e-9, 60e-9] {
        println!(
            "i({:.0}ns) = {:.3e}",
            tt * 1e9,
            tr.branch_current(tr.index_at(tt), id).unwrap()
        );
    }
}
