//! Property-based tests on the behavioural converter and decoder.

use dotm_adc::behavior::{ComparatorBehavior, FlashAdc};
use dotm_adc::decoder::{decode_thermometer, thermometer_height};
use dotm_adc::ladder::{ideal_tap_voltage, TAPS};
use dotm_adc::process::{VREF_HI, VREF_LO};
use proptest::prelude::*;

proptest! {
    #[test]
    fn clean_thermometer_always_decodes_its_height(h in 0usize..=255) {
        let mut t = vec![false; 256];
        t[..h].iter_mut().for_each(|b| *b = true);
        prop_assert_eq!(decode_thermometer(&t) as usize, h);
        prop_assert_eq!(thermometer_height(&t), h);
    }

    #[test]
    fn bubble_codes_are_or_of_firing_rows(h in 1usize..250, bubble in 1usize..250) {
        prop_assume!(bubble > h + 1);
        let mut t = vec![false; 256];
        t[..h].iter_mut().for_each(|b| *b = true);
        t[bubble - 1] = true; // stuck-at-1 above the level
        let code = decode_thermometer(&t);
        prop_assert_eq!(code, (h as u8) | (bubble as u8));
    }

    #[test]
    fn ideal_conversion_is_monotone(steps in 2usize..100) {
        let adc = FlashAdc::ideal();
        let mut last = 0u8;
        for k in 0..steps {
            let vin = (VREF_LO - 0.05)
                + (VREF_HI - VREF_LO + 0.1) * k as f64 / (steps - 1) as f64;
            let code = adc.convert(vin, 0);
            prop_assert!(code >= last);
            last = code;
        }
    }

    #[test]
    fn conversion_brackets_the_ideal_tap(k in 1usize..=255) {
        let adc = FlashAdc::ideal();
        // Just above tap k the code is exactly k.
        let vin = ideal_tap_voltage(k) + 1e-6;
        prop_assert_eq!(adc.convert(vin, 0) as usize, k);
    }

    #[test]
    fn any_single_stuck_comparator_fails_the_ramp_test(
        k in 1usize..254,
        high in proptest::bool::ANY,
    ) {
        // k = 254 stuck-low is genuinely masked by the wired-OR decoder:
        // the firing rows 254 and 255 OR to 255, so no code disappears —
        // a real (boundary) test escape of the missing-code test.
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(
            k,
            if high {
                ComparatorBehavior::StuckHigh
            } else {
                ComparatorBehavior::StuckLow
            },
        );
        prop_assert!(adc.fails_missing_code_test());
    }

    #[test]
    fn sub_lsb_offsets_pass_the_ramp_test(k in 1usize..255, offset_mv in -3.0f64..3.0) {
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(k, ComparatorBehavior::Normal { offset: offset_mv * 1e-3 });
        prop_assert!(!adc.fails_missing_code_test());
    }

    #[test]
    fn ladder_taps_are_strictly_increasing(k in 1usize..TAPS) {
        prop_assert!(ideal_tap_voltage(k + 1) > ideal_tap_voltage(k));
        prop_assert!(ideal_tap_voltage(k) > VREF_LO);
        prop_assert!(ideal_tap_voltage(k) < VREF_HI + 1e-12);
    }
}
