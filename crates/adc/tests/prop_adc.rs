//! Randomised tests on the behavioural converter and decoder.
//!
//! Formerly proptest; now exhaustive or seeded loops over the in-tree
//! PRNG so the workspace builds hermetically. Most ranges here are
//! small enough to sweep exhaustively, which is strictly stronger than
//! the sampled originals.

use dotm_adc::behavior::{ComparatorBehavior, FlashAdc};
use dotm_adc::decoder::{decode_thermometer, thermometer_height};
use dotm_adc::ladder::{ideal_tap_voltage, TAPS};
use dotm_adc::process::{VREF_HI, VREF_LO};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

#[test]
fn clean_thermometer_always_decodes_its_height() {
    for h in 0usize..=255 {
        let mut t = vec![false; 256];
        t[..h].iter_mut().for_each(|b| *b = true);
        assert_eq!(decode_thermometer(&t) as usize, h);
        assert_eq!(thermometer_height(&t), h);
    }
}

#[test]
fn bubble_codes_are_or_of_firing_rows() {
    for h in 1usize..250 {
        for bubble in (h + 2)..250 {
            let mut t = vec![false; 256];
            t[..h].iter_mut().for_each(|b| *b = true);
            t[bubble - 1] = true; // stuck-at-1 above the level
            let code = decode_thermometer(&t);
            assert_eq!(code, (h as u8) | (bubble as u8), "h {h} bubble {bubble}");
        }
    }
}

#[test]
fn ideal_conversion_is_monotone() {
    for steps in 2usize..100 {
        let adc = FlashAdc::ideal();
        let mut last = 0u8;
        for k in 0..steps {
            let vin = (VREF_LO - 0.05) + (VREF_HI - VREF_LO + 0.1) * k as f64 / (steps - 1) as f64;
            let code = adc.convert(vin, 0);
            assert!(code >= last, "steps {steps} k {k}: {code} < {last}");
            last = code;
        }
    }
}

#[test]
fn conversion_brackets_the_ideal_tap() {
    let adc = FlashAdc::ideal();
    for k in 1usize..=255 {
        // Just above tap k the code is exactly k.
        let vin = ideal_tap_voltage(k) + 1e-6;
        assert_eq!(adc.convert(vin, 0) as usize, k);
    }
}

#[test]
fn any_single_stuck_comparator_fails_the_ramp_test() {
    // k = 254 stuck-low is genuinely masked by the wired-OR decoder:
    // the firing rows 254 and 255 OR to 255, so no code disappears —
    // a real (boundary) test escape of the missing-code test.
    for k in 1usize..254 {
        for high in [false, true] {
            let mut adc = FlashAdc::ideal();
            adc.set_comparator(
                k,
                if high {
                    ComparatorBehavior::StuckHigh
                } else {
                    ComparatorBehavior::StuckLow
                },
            );
            assert!(adc.fails_missing_code_test(), "k {k} high {high}");
        }
    }
}

#[test]
fn sub_lsb_offsets_pass_the_ramp_test() {
    let mut rng = StdRng::seed_from_u64(0xadc1);
    for _ in 0..64 {
        let k = rng.gen_range(1usize..255);
        let offset_mv = rng.gen_range(-3.0f64..3.0);
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(
            k,
            ComparatorBehavior::Normal {
                offset: offset_mv * 1e-3,
            },
        );
        assert!(
            !adc.fails_missing_code_test(),
            "k {k} offset {offset_mv} mV"
        );
    }
}

#[test]
fn ladder_taps_are_strictly_increasing() {
    for k in 1usize..TAPS {
        assert!(ideal_tap_voltage(k + 1) > ideal_tap_voltage(k));
        assert!(ideal_tap_voltage(k) > VREF_LO);
        assert!(ideal_tap_voltage(k) < VREF_HI + 1e-12);
    }
}
