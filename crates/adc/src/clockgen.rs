//! The three-phase clock generator macro — the ADC's digital cell.
//!
//! Each phase output is gated through a NOR interlock with the previous
//! phase in the ring (`φ1 ← φ3`, `φ2 ← φ1`, `φ3 ← φ2`), guaranteeing
//! non-overlap even for sloppy sequencer inputs, and then amplified by a
//! two-inverter buffer chain whose final stage drives the long clock
//! distribution lines through all 256 comparators.
//!
//! The whole macro runs from the digital supply `vdd_dig`; its quiescent
//! current is the paper's IDDQ measurement, and it is near zero in the
//! fault-free circuit — which is exactly why so many clock-line faults
//! are IDDQ-detectable.

use crate::process::{Phase, VDD};
use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};

fn nmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::nmos_default().sized(w, l)
}

fn pmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::pmos_default().sized(w, l)
}

/// Ports of the clock generator macro.
pub const PORTS: &[&str] = &["vdd_dig", "x1", "x2", "x3", "ck1", "ck2", "ck3"];

/// Builds the clock-generator macro: per phase an input inverter, the
/// interlock NOR, and the two-stage output buffer.
pub fn clockgen_macro() -> Netlist {
    let mut nl = Netlist::new("clock_gen");
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd_dig");
    let outs = ["ck1", "ck2", "ck3"].map(|n| nl.node(n));
    for n in 1..=3usize {
        let x = nl.node(&format!("x{n}"));
        let a = nl.node(&format!("a{n}"));
        let b = nl.node(&format!("b{n}"));
        let c = nl.node(&format!("c{n}"));
        let y = outs[n - 1];
        let y_prev = outs[(n + 1) % 3]; // ring: 1←3, 2←1, 3←2
        let mid = nl.node(&format!("nmid{n}"));
        // Input inverter: a = !x.
        nl.add_mosfet(
            &format!("MG{n}IN"),
            a,
            x,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(2e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}IP"),
            a,
            x,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
        // Interlock NOR: b = !(a | y_prev) = x & !y_prev.
        nl.add_mosfet(
            &format!("MG{n}NA"),
            b,
            a,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}NB"),
            b,
            y_prev,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}PA"),
            mid,
            a,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(8e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}PB"),
            b,
            y_prev,
            mid,
            vdd,
            MosType::Pmos,
            pmos(8e-6, 0.8e-6),
        )
        .unwrap();
        // Two-stage buffer: c = !b, y = !c (large driver).
        nl.add_mosfet(
            &format!("MG{n}CN"),
            c,
            b,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(4e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}CP"),
            c,
            b,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(8e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}DN"),
            y,
            c,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(14e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MG{n}DP"),
            y,
            c,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(28e-6, 0.8e-6),
        )
        .unwrap();
        // The load of the 256-comparator distribution line.
        nl.add_capacitor(&format!("CL{n}"), y, gnd, 2e-12).unwrap();
    }
    nl
}

/// Testbench: the macro with its digital supply and the ideal sequencer
/// phase inputs.
pub fn clockgen_testbench() -> Netlist {
    let mut nl = clockgen_macro();
    let vdd = nl.node("vdd_dig");
    nl.add_vsource("VDDDIG", vdd, Netlist::GROUND, Waveform::dc(VDD))
        .unwrap();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let x = nl.node(&format!("x{}", i + 1));
        nl.add_vsource(
            &format!("VX{}", i + 1),
            x,
            Netlist::GROUND,
            phase.waveform(),
        )
        .unwrap();
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::CLOCK_PERIOD;
    use dotm_sim::Simulator;

    #[test]
    fn ports_exist() {
        let nl = clockgen_macro();
        for p in PORTS {
            assert!(nl.find_node(p).is_some(), "missing {p}");
        }
        assert_eq!(nl.device_count(), 3 * 11);
    }

    #[test]
    fn phases_reproduce_inputs() {
        let nl = clockgen_testbench();
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(CLOCK_PERIOD, 0.5e-9).unwrap();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let y = nl.find_node(&format!("ck{}", i + 1)).unwrap();
            let (s, e) = phase.window();
            let mid = tr.index_at((s + e) / 2.0);
            assert!(
                tr.voltage(mid, y) > VDD - 0.2,
                "ck{} must be high mid-phase",
                i + 1
            );
            for (j, other) in Phase::ALL.iter().enumerate() {
                if i != j {
                    let (os, oe) = other.window();
                    let k = tr.index_at((os + oe) / 2.0);
                    assert!(
                        tr.voltage(k, y) < 0.2,
                        "ck{} must be low during phase {}",
                        i + 1,
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn interlock_prevents_overlap() {
        // Feed x2 asserted already during phase 1's window: ck2 must stay
        // low while ck1 is high.
        let mut nl = clockgen_macro();
        let vdd = nl.node("vdd_dig");
        nl.add_vsource("VDDDIG", vdd, Netlist::GROUND, Waveform::dc(VDD))
            .unwrap();
        let x1 = nl.node("x1");
        let x2 = nl.node("x2");
        let x3 = nl.node("x3");
        nl.add_vsource("VX1", x1, Netlist::GROUND, Phase::Sample.waveform())
            .unwrap();
        // x2 rises mid-φ1 (overlapping request).
        nl.add_vsource(
            "VX2",
            x2,
            Netlist::GROUND,
            Waveform::pulse(0.0, VDD, 20e-9, 2e-9, 2e-9, 50e-9, CLOCK_PERIOD),
        )
        .unwrap();
        nl.add_vsource("VX3", x3, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(45e-9, 0.5e-9).unwrap();
        let ck1 = nl.find_node("ck1").unwrap();
        let ck2 = nl.find_node("ck2").unwrap();
        // At 30 ns: x1 and x2 both high; interlock must hold ck2 low.
        let k = tr.index_at(30e-9);
        assert!(tr.voltage(k, ck1) > VDD - 0.3);
        assert!(tr.voltage(k, ck2) < 0.3, "interlock failed: ck2 high");
    }

    #[test]
    fn quiescent_iddq_is_negligible() {
        // Mid-phase, all nodes settled: the digital cell draws only
        // leakage — the tight IDDQ baseline the paper exploits.
        let nl = clockgen_testbench();
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(CLOCK_PERIOD, 0.5e-9).unwrap();
        let id = nl.device_id("VDDDIG").unwrap();
        let t = Phase::Sample.settle_time();
        let i = tr.branch_current(tr.index_at(t), id).unwrap().abs();
        assert!(i < 1e-6, "IDDQ must be sub-µA, got {i}");
    }

    #[test]
    fn clock_line_short_raises_iddq() {
        // A bridging fault from ck1 to ground: the driver crowbars and
        // IDDQ jumps by orders of magnitude.
        let mut nl = clockgen_testbench();
        let ck1 = nl.find_node("ck1").unwrap();
        nl.insert_bridge("F", ck1, Netlist::GROUND, 0.2, None)
            .unwrap();
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(CLOCK_PERIOD, 0.5e-9).unwrap();
        let id = nl.device_id("VDDDIG").unwrap();
        let t = Phase::Sample.settle_time();
        let i = tr.branch_current(tr.index_at(t), id).unwrap().abs();
        assert!(i > 1e-3, "shorted clock must pull mA-scale IDDQ, got {i}");
    }
}
