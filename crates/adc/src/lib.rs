//! # dotm-adc — the Flash ADC case study
//!
//! The paper evaluates its defect-oriented test methodology on an 8-bit
//! CMOS full-flash ADC for embedded video, decomposed into five macro cell
//! types. This crate provides those macros at transistor level (netlists
//! generated with `dotm-netlist`, layouts with `dotm-layout`) plus the
//! behavioural models used for fault-signature propagation:
//!
//! * [`comparator`] — the three-phase auto-zeroed comparator with its
//!   flipflop load (256 instances; the analog/digital boundary);
//! * [`ladder`] — the dual-ladder resistor string generating the 256
//!   reference voltages;
//! * [`bias`] — the class-A bias generator (`vbn`, `vbnc`, `vbp`, `vaz`);
//! * [`clockgen`] — the three-phase clock generator with its large output
//!   buffers (a digital cell: its quiescent supply current is the paper's
//!   IDDQ measurement);
//! * [`decoder`] — the thermometer→binary decoder (behavioural plus a
//!   representative gate-level slice for defect analysis);
//! * [`behavior`] — calibrated behavioural models of all macros assembled
//!   into a full [`behavior::FlashAdc`] for missing-code evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod bias;
pub mod clockgen;
pub mod column;
pub mod comparator;
pub mod decoder;
pub mod ladder;
pub mod layouts;
pub mod process;
