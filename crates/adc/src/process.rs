//! Shared process and timing constants of the case-study ADC.

use dotm_netlist::Waveform;

/// Analog and digital supply voltage (V).
pub const VDD: f64 = 5.0;

/// Reference-ladder top voltage (V).
pub const VREF_HI: f64 = 3.5;

/// Reference-ladder bottom voltage (V).
pub const VREF_LO: f64 = 1.5;

/// Number of comparator stages (8-bit full flash).
pub const N_COMPARATORS: usize = 256;

/// Conversion clock period (s): the video-rate converter runs its three
/// phases within 100 ns.
pub const CLOCK_PERIOD: f64 = 100e-9;

/// Clock edge rise/fall time used by the ideal phase sources (s).
pub const CLOCK_EDGE: f64 = 2e-9;

/// Nominal bias voltages produced by the bias generator.
///
/// `vbn` and `vbnc` are deliberately *marginally different* — the paper's
/// DfT analysis hinges on shorts between two bias lines that carry very
/// similar signals being nearly undetectable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasValues {
    /// NMOS tail-current bias (V).
    pub vbn: f64,
    /// NMOS bleed bias, close to `vbn` (V).
    pub vbnc: f64,
    /// PMOS bleed bias (V).
    pub vbp: f64,
    /// Auto-zero common-mode level (V).
    pub vaz: f64,
}

impl Default for BiasValues {
    fn default() -> Self {
        BiasValues {
            vbn: 1.05,
            vbnc: 1.10,
            vbp: 3.60,
            vaz: 2.20,
        }
    }
}

/// The three comparator phases within one clock period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Input sampling / auto-zero.
    Sample,
    /// Amplification of the sampled difference.
    Amplify,
    /// Regenerative latching.
    Latch,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 3] = [Phase::Sample, Phase::Amplify, Phase::Latch];

    /// `(start, end)` of the active window within a period, in seconds.
    pub fn window(self) -> (f64, f64) {
        match self {
            Phase::Sample => (0.0, 0.40 * CLOCK_PERIOD),
            Phase::Amplify => (0.45 * CLOCK_PERIOD, 0.70 * CLOCK_PERIOD),
            Phase::Latch => (0.75 * CLOCK_PERIOD, 0.95 * CLOCK_PERIOD),
        }
    }

    /// A time (within period 0) at which this phase's currents have
    /// settled: just before the phase ends.
    pub fn settle_time(self) -> f64 {
        let (_, end) = self.window();
        end - 2.0 * CLOCK_EDGE
    }

    /// The ideal (pre-buffer) clock waveform for this phase, repeating with
    /// [`CLOCK_PERIOD`].
    pub fn waveform(self) -> Waveform {
        let (start, end) = self.window();
        Waveform::pulse(
            0.0,
            VDD,
            start,
            CLOCK_EDGE,
            CLOCK_EDGE,
            end - start - CLOCK_EDGE,
            CLOCK_PERIOD,
        )
    }

    /// Short display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sample => "sampling",
            Phase::Amplify => "amplification",
            Phase::Latch => "latching",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_do_not_overlap() {
        let windows: Vec<(f64, f64)> = Phase::ALL.iter().map(|p| p.window()).collect();
        for w in windows.windows(2) {
            assert!(w[0].1 < w[1].0, "phases must be non-overlapping: {w:?}");
        }
        assert!(windows[2].1 < CLOCK_PERIOD);
    }

    #[test]
    fn waveforms_are_high_mid_phase_only() {
        for p in Phase::ALL {
            let w = p.waveform();
            let (start, end) = p.window();
            let mid = (start + end) / 2.0;
            assert_eq!(w.value_at(mid), VDD, "{p:?} must be high mid-phase");
            for q in Phase::ALL {
                if q != p {
                    let (qs, qe) = q.window();
                    assert_eq!(
                        w.value_at((qs + qe) / 2.0),
                        0.0,
                        "{p:?} must be low during {q:?}"
                    );
                }
            }
            // Repeats across periods.
            assert_eq!(w.value_at(mid + CLOCK_PERIOD), VDD);
        }
    }

    #[test]
    fn settle_times_fall_inside_windows() {
        for p in Phase::ALL {
            let (s, e) = p.window();
            let t = p.settle_time();
            assert!(t > s && t < e);
        }
    }

    #[test]
    fn bias_values_have_a_similar_pair() {
        let b = BiasValues::default();
        assert!((b.vbn - b.vbnc).abs() < 0.3, "vbn/vbnc must be similar");
        assert!((b.vbn - b.vbp).abs() > 1.0, "vbn/vbp must differ strongly");
    }
}
