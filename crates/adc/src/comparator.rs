//! The comparator macro: a three-phase, fully balanced, auto-zeroed
//! comparator with its flipflop load — the cell the paper's §3.2 analyses
//! in depth.
//!
//! Topology (all names appear identically in the layout generator):
//!
//! * **Sampling (φ1)** — input switches put `vin` on the left sampling
//!   capacitor and `vref` on the right one while the amplifier inputs are
//!   auto-zeroed to `vaz`.
//! * **Amplification (φ2)** — the switches swap to `vref`/`vin`, so the
//!   amplifier sees `2·(vref − vin)` differentially; a class-A NMOS pair
//!   with diode loads (plus `vbp`/`vbnc` bleed sources) amplifies it.
//! * **Latching (φ3)** — a regenerative CMOS latch resolves the amplified
//!   difference to full logic levels, which it holds dynamically through
//!   the next sampling phase.
//! * **Flipflop** — at the beginning of the new sampling phase the decision
//!   transfers through pass gates into a balanced static flipflop. The
//!   production flipflop equalises its nodes with a φ1-gated device, which
//!   draws a strongly process-dependent static current during sampling —
//!   the paper's "leakage current in the flipflops". The DfT redesign
//!   ([`ComparatorConfig::dft_flipflop`]) removes that static path.

use crate::process::{BiasValues, Phase, CLOCK_PERIOD, VDD};
use dotm_netlist::{MosType, MosfetParams, Netlist, NodeId, Waveform};
use dotm_sim::TranResult;

/// Build options for the comparator macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComparatorConfig {
    /// Use the DfT-redesigned flipflop without the sampling-phase static
    /// current path.
    pub dft_flipflop: bool,
}

/// Names of the comparator macro's ports (shared with the layout and the
/// testbench).
pub const PORTS: &[&str] = &[
    "vdd", "vin", "vref", "ck1", "ck2", "ck3", "vbn", "vbnc", "vbp", "vaz", "fa", "fb",
];

fn nmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::nmos_default().sized(w, l)
}

fn pmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::pmos_default().sized(w, l)
}

/// Builds the comparator + flipflop macro cell as a standalone netlist
/// whose port nodes are named per [`PORTS`].
pub fn comparator_macro(cfg: ComparatorConfig) -> Netlist {
    let mut nl = Netlist::new(if cfg.dft_flipflop {
        "comparator_dft"
    } else {
        "comparator"
    });
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let vref = nl.node("vref");
    let ck1 = nl.node("ck1");
    let ck2 = nl.node("ck2");
    let ck3 = nl.node("ck3");
    let vbn = nl.node("vbn");
    let vbnc = nl.node("vbnc");
    let vbp = nl.node("vbp");
    let vaz = nl.node("vaz");
    let na = nl.node("na");
    let nb = nl.node("nb");
    let ga = nl.node("ga");
    let gb = nl.node("gb");
    let oa = nl.node("oa");
    let ob = nl.node("ob");
    let ntail = nl.node("ntail");
    let nls = nl.node("nls");
    let la = nl.node("la");
    let lb = nl.node("lb");
    let fa = nl.node("fa");
    let fb = nl.node("fb");

    // --- input sampling network -----------------------------------------
    // φ1 puts (vref, vin) on (na, nb); φ2 swaps to (vin, vref), so the
    // left amplifier input moves by +(vin − vref) and the right by the
    // negative — a fully balanced 2× differential drive.
    nl.add_mosfet(
        "MS1A",
        vref,
        ck1,
        na,
        gnd,
        MosType::Nmos,
        nmos(6e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_mosfet("MS1B", vin, ck1, nb, gnd, MosType::Nmos, nmos(6e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("MS2A", vin, ck2, na, gnd, MosType::Nmos, nmos(6e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet(
        "MS2B",
        vref,
        ck2,
        nb,
        gnd,
        MosType::Nmos,
        nmos(6e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_capacitor("CA", na, ga, 200e-15).unwrap();
    nl.add_capacitor("CB", nb, gb, 200e-15).unwrap();
    nl.add_mosfet("MS3A", ga, ck1, vaz, gnd, MosType::Nmos, nmos(3e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("MS3B", gb, ck1, vaz, gnd, MosType::Nmos, nmos(3e-6, 0.8e-6))
        .unwrap();

    // --- class-A amplifier ----------------------------------------------
    nl.add_mosfet("M1", oa, ga, ntail, gnd, MosType::Nmos, nmos(20e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M2", ob, gb, ntail, gnd, MosType::Nmos, nmos(20e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M3", ntail, vbn, gnd, gnd, MosType::Nmos, nmos(10e-6, 2e-6))
        .unwrap();
    // Diode-connected PMOS loads.
    nl.add_mosfet("M4", oa, oa, vdd, vdd, MosType::Pmos, pmos(3e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M5", ob, ob, vdd, vdd, MosType::Pmos, pmos(3e-6, 1.6e-6))
        .unwrap();
    // Class-A bleed sources from the bias generator.
    nl.add_mosfet("M16", oa, vbp, vdd, vdd, MosType::Pmos, pmos(2e-6, 2e-6))
        .unwrap();
    nl.add_mosfet("M17", ob, vbp, vdd, vdd, MosType::Pmos, pmos(2e-6, 2e-6))
        .unwrap();
    nl.add_mosfet("M18", oa, vbnc, gnd, gnd, MosType::Nmos, nmos(2e-6, 2e-6))
        .unwrap();
    nl.add_mosfet("M19", ob, vbnc, gnd, gnd, MosType::Nmos, nmos(2e-6, 2e-6))
        .unwrap();

    // --- regenerative latch (stacked, StrongARM-style) --------------------
    // Input pair under the cross-coupled NMOS pair, PMOS cross on top.
    // During φ2 the outputs precharge high and equalise; during φ3 the
    // footer opens a ratioed race that regenerates to full logic levels,
    // which the PMOS cross holds dynamically through the next φ1.
    let xa = nl.node("xa");
    let xb = nl.node("xb");
    nl.add_mosfet("ML1", xa, oa, nls, gnd, MosType::Nmos, nmos(6e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML2", xb, ob, nls, gnd, MosType::Nmos, nmos(6e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML3", la, lb, xa, gnd, MosType::Nmos, nmos(2e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML4", lb, la, xb, gnd, MosType::Nmos, nmos(2e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML5", la, lb, vdd, vdd, MosType::Pmos, pmos(4e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML6", lb, la, vdd, vdd, MosType::Pmos, pmos(4e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("ML7", nls, ck3, gnd, gnd, MosType::Nmos, nmos(8e-6, 0.8e-6))
        .unwrap();
    // The latch drives the flipflop and its share of the output wiring:
    // explicit load capacitance sets the regeneration time constant to a
    // few nanoseconds (also what keeps the dynamically held decision alive
    // through the next sampling phase).
    nl.add_capacitor("CLA", la, gnd, 250e-15).unwrap();
    nl.add_capacitor("CLB", lb, gnd, 250e-15).unwrap();
    nl.add_capacitor("CXA", xa, gnd, 80e-15).unwrap();
    nl.add_capacitor("CXB", xb, gnd, 80e-15).unwrap();
    // φ2 precharge-and-equalise of the latch outputs: full-rail PMOS
    // precharge gated by a locally inverted φ2, so the latch enters the
    // decision race perfectly symmetric (no hysteresis from the held
    // previous state).
    let ck2b = nl.node("ck2b");
    nl.add_mosfet(
        "MI2N",
        ck2b,
        ck2,
        gnd,
        gnd,
        MosType::Nmos,
        nmos(2e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_mosfet(
        "MI2P",
        ck2b,
        ck2,
        vdd,
        vdd,
        MosType::Pmos,
        pmos(4e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_mosfet(
        "MLE1",
        la,
        ck2b,
        vdd,
        vdd,
        MosType::Pmos,
        pmos(6e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_mosfet(
        "MLE2",
        lb,
        ck2b,
        vdd,
        vdd,
        MosType::Pmos,
        pmos(6e-6, 0.8e-6),
    )
    .unwrap();
    nl.add_mosfet("MLE3", la, ck2b, lb, vdd, MosType::Pmos, pmos(3e-6, 0.8e-6))
        .unwrap();

    // --- flipflop load -----------------------------------------------------
    nl.add_mosfet("MFP1", la, ck1, fa, gnd, MosType::Nmos, nmos(4e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("MFP2", lb, ck1, fb, gnd, MosType::Nmos, nmos(4e-6, 0.8e-6))
        .unwrap();
    nl.add_mosfet("MFN1", fb, fa, gnd, gnd, MosType::Nmos, nmos(3e-6, 4e-6))
        .unwrap();
    nl.add_mosfet("MFI1", fb, fa, vdd, vdd, MosType::Pmos, pmos(6e-6, 4e-6))
        .unwrap();
    nl.add_mosfet("MFN2", fa, fb, gnd, gnd, MosType::Nmos, nmos(3e-6, 4e-6))
        .unwrap();
    nl.add_mosfet("MFI2", fa, fb, vdd, vdd, MosType::Pmos, pmos(6e-6, 4e-6))
        .unwrap();
    if !cfg.dft_flipflop {
        // Production flipflop: a φ1-gated equaliser creates the ratioed
        // static current the paper's DfT analysis eliminates.
        nl.add_mosfet("MEQ", fa, ck1, fb, gnd, MosType::Nmos, nmos(2e-6, 0.8e-6))
            .unwrap();
    }
    nl
}

/// Testbench stimuli for a comparator run.
#[derive(Debug, Clone)]
pub struct ComparatorStimulus {
    /// Input waveform on `vin`.
    pub vin: Waveform,
    /// Reference voltage on `vref`.
    pub vref: f64,
    /// Bias values (normally [`BiasValues::default`]).
    pub bias: BiasValues,
}

impl ComparatorStimulus {
    /// DC input at `vref + dv`.
    pub fn dc_offset(vref: f64, dv: f64) -> Self {
        ComparatorStimulus {
            vin: Waveform::dc(vref + dv),
            vref,
            bias: BiasValues::default(),
        }
    }
}

/// Builds the full testbench: the macro plus supplies, bias/reference
/// sources and the clock-generator output buffers (powered from the
/// *digital* supply `vdd_dig`, whose quiescent current is the paper's
/// IDDQ measurement).
pub fn comparator_testbench(cfg: ComparatorConfig, stim: &ComparatorStimulus) -> Netlist {
    let mut nl = comparator_macro(cfg);
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd");
    let vdd_dig = nl.node("vdd_dig");
    let vin = nl.node("vin");
    let vref = nl.node("vref");

    nl.add_vsource("VDD", vdd, gnd, Waveform::dc(VDD)).unwrap();
    nl.add_vsource("VDDDIG", vdd_dig, gnd, Waveform::dc(VDD))
        .unwrap();
    nl.add_vsource("VIN", vin, gnd, stim.vin.clone()).unwrap();
    let _ = vref;
    // Bias lines are driven through the bias generator's output impedance
    // (diode-connected mirror branches ≈ 1/gm, the vaz divider's Thevenin
    // resistance): shorts between bias lines redistribute microamps, they
    // do not fight an ideal source — the crux of the paper's
    // similar-signal-shorts DfT analysis.
    for (name, value, rout) in [
        ("VBN", stim.bias.vbn, 6.8e3),
        ("VBNC", stim.bias.vbnc, 6.8e3),
        ("VBP", stim.bias.vbp, 7.5e3),
        ("VAZ", stim.bias.vaz, 8.0e3),
    ] {
        let line = nl.node(&name.to_lowercase());
        let src = nl.node(&format!("{}_src", name.to_lowercase()));
        nl.add_vsource(name, src, gnd, Waveform::dc(value)).unwrap();
        nl.add_resistor(&format!("R{name}"), src, line, rout)
            .unwrap();
    }
    // The reference tap reaches the comparator through the fine ladder's
    // local impedance.
    {
        let src = nl.node("vref_src");
        let line = nl.node("vref");
        nl.add_vsource("VREF", src, gnd, Waveform::dc(stim.vref))
            .unwrap();
        nl.add_resistor("RVREF", src, line, 100.0).unwrap();
    }

    // Decoder input stage: the flipflop outputs drive the first gates of
    // the digital decoder (powered from the digital supply). A comparator
    // fault that leaves fa/fb at intermediate analog levels crowbars these
    // gates — the paper's "many faults disturb the boundary between analog
    // and digital, causing an increased quiescent current of the digital
    // part of the IC".
    for out in ["fa", "fb"] {
        let o = nl.node(out);
        let sink = nl.node(&format!("dec_{out}"));
        nl.add_mosfet(
            &format!("MDEC{}N", out.to_uppercase()),
            sink,
            o,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MDEC{}P", out.to_uppercase()),
            sink,
            o,
            vdd_dig,
            vdd_dig,
            MosType::Pmos,
            pmos(6e-6, 0.8e-6),
        )
        .unwrap();
    }

    // Clock-generator output buffers: ideal phase sources drive a
    // two-inverter buffer chain per phase; the second (driver) stage feeds
    // the macro's clock distribution lines.
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let n = i + 1;
        let ck_in = nl.node(&format!("ck{n}_in"));
        let ck_mid = nl.node(&format!("ck{n}_b"));
        let ck = nl.node(&format!("ck{n}"));
        nl.add_vsource(&format!("VCK{n}"), ck_in, gnd, phase.waveform())
            .unwrap();
        nl.add_mosfet(
            &format!("MCB{n}AN"),
            ck_mid,
            ck_in,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(2e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MCB{n}AP"),
            ck_mid,
            ck_in,
            vdd_dig,
            vdd_dig,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MCB{n}BN"),
            ck,
            ck_mid,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(12e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MCB{n}BP"),
            ck,
            ck_mid,
            vdd_dig,
            vdd_dig,
            MosType::Pmos,
            pmos(24e-6, 0.8e-6),
        )
        .unwrap();
    }
    nl
}

/// Time (s) at which the flipflop output holds the decision for the sample
/// taken in cycle 0: mid-amplification of cycle 1.
pub fn decision_time() -> f64 {
    CLOCK_PERIOD + (Phase::Amplify.window().0 + Phase::Amplify.window().1) / 2.0
}

/// Total transient length needed to read one decision.
pub fn decision_sim_time() -> f64 {
    CLOCK_PERIOD + Phase::Amplify.window().1
}

/// Reads the differential flipflop decision `v(fa) − v(fb)` at
/// [`decision_time`] from a transient result.
pub fn read_decision(nl: &Netlist, tr: &TranResult) -> f64 {
    let fa = nl.find_node("fa").expect("fa exists");
    let fb = nl.find_node("fb").expect("fb exists");
    let k = tr.index_at(decision_time());
    tr.voltage(k, fa) - tr.voltage(k, fb)
}

/// Node ids of the three buffered clock lines.
pub fn clock_lines(nl: &Netlist) -> [NodeId; 3] {
    [
        nl.find_node("ck1").expect("ck1"),
        nl.find_node("ck2").expect("ck2"),
        nl.find_node("ck3").expect("ck3"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::VREF_HI;
    use dotm_sim::Simulator;

    const DT: f64 = 0.25e-9;

    fn run_decision(cfg: ComparatorConfig, dv: f64) -> f64 {
        let stim = ComparatorStimulus::dc_offset(2.5, dv);
        let nl = comparator_testbench(cfg, &stim);
        let mut sim = Simulator::new(&nl);
        let tr = sim
            .transient(decision_sim_time(), DT)
            .expect("comparator transient must converge");
        read_decision(&nl, &tr)
    }

    #[test]
    fn macro_has_expected_structure() {
        let nl = comparator_macro(ComparatorConfig::default());
        assert!(nl.device("M1").is_some());
        assert!(nl.device("MEQ").is_some());
        for port in PORTS {
            assert!(nl.find_node(port).is_some(), "missing port {port}");
        }
        let dft = comparator_macro(ComparatorConfig { dft_flipflop: true });
        assert!(dft.device("MEQ").is_none());
    }

    #[test]
    fn resolves_positive_input_above_reference() {
        for dv in [0.05, 0.008] {
            let d = run_decision(ComparatorConfig::default(), dv);
            assert!(
                d > 2.0,
                "vin = vref + {dv}: expected fa high, got diff {d:.3}"
            );
        }
    }

    #[test]
    fn resolves_negative_input_below_reference() {
        for dv in [-0.05, -0.008] {
            let d = run_decision(ComparatorConfig::default(), dv);
            assert!(
                d < -2.0,
                "vin = vref {dv}: expected fa low, got diff {d:.3}"
            );
        }
    }

    #[test]
    fn dft_flipflop_preserves_function() {
        let cfg = ComparatorConfig { dft_flipflop: true };
        assert!(run_decision(cfg, 0.02) > 2.0);
        assert!(run_decision(cfg, -0.02) < -2.0);
    }

    #[test]
    fn works_across_reference_range() {
        for vref in [1.6, 2.5, VREF_HI - 0.1] {
            let stim = ComparatorStimulus::dc_offset(vref, 0.03);
            let nl = comparator_testbench(ComparatorConfig::default(), &stim);
            let mut sim = Simulator::new(&nl);
            let tr = sim.transient(decision_sim_time(), DT).unwrap();
            assert!(read_decision(&nl, &tr) > 2.0, "failed at vref = {vref}");
        }
    }

    #[test]
    fn sampling_phase_draws_static_flipflop_current() {
        // The production flipflop must draw markedly more analog supply
        // current during sampling than the DfT version.
        let stim = ComparatorStimulus::dc_offset(2.5, 0.05);
        let mut ivdd = [0.0f64; 2];
        for (k, dft) in [(0usize, false), (1usize, true)] {
            let nl = comparator_testbench(ComparatorConfig { dft_flipflop: dft }, &stim);
            let mut sim = Simulator::new(&nl);
            let tr = sim.transient(decision_sim_time(), DT).unwrap();
            // Measure in cycle 1's sampling phase (state fully settled).
            let t = CLOCK_PERIOD + Phase::Sample.settle_time();
            let idx = tr.index_at(t);
            let id = nl.device_id("VDD").unwrap();
            ivdd[k] = tr.branch_current(idx, id).unwrap().abs();
        }
        assert!(
            ivdd[0] > ivdd[1] + 20e-6,
            "production FF must draw >20µA extra during sampling: prod {:.1}µA vs dft {:.1}µA",
            ivdd[0] * 1e6,
            ivdd[1] * 1e6
        );
    }
}
