//! The class-A bias generator macro.
//!
//! Produces the four bias lines distributed to all 256 comparators:
//! `vbn` (tail current), `vbnc` (NMOS bleed — deliberately close in value
//! to `vbn`), `vbp` (PMOS bleed) and `vaz` (auto-zero common-mode level).
//!
//! A resistor-defined reference current through a diode-connected NMOS
//! sets `vbn`; PMOS mirrors replicate the current into a second NMOS
//! diode sized for the slightly higher `vbnc`; the PMOS mirror gate is
//! itself `vbp`; `vaz` comes from a resistive divider.

use crate::process::VDD;
use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};

fn nmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::nmos_default().sized(w, l)
}

fn pmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::pmos_default().sized(w, l)
}

/// Ports of the bias generator macro.
pub const PORTS: &[&str] = &["vdd", "vbn", "vbnc", "vbp", "vaz"];

/// Builds the bias generator macro.
pub fn bias_macro() -> Netlist {
    let mut nl = Netlist::new("bias_gen");
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd");
    let vbn = nl.node("vbn");
    let vbnc = nl.node("vbnc");
    let vbp = nl.node("vbp");
    let vaz = nl.node("vaz");

    // Reference branch: RREF from vdd into diode-connected MB1 → vbn.
    nl.add_resistor("RREF", vdd, vbn, 175e3).unwrap();
    nl.add_mosfet("MB1", vbn, vbn, gnd, gnd, MosType::Nmos, nmos(10e-6, 2e-6))
        .unwrap();

    // PMOS mirror: MB2 (gate vbn) pulls the mirrored current through the
    // diode-connected MB4, defining vbp.
    nl.add_mosfet("MB2", vbp, vbn, gnd, gnd, MosType::Nmos, nmos(10e-6, 2e-6))
        .unwrap();
    nl.add_mosfet("MB4", vbp, vbp, vdd, vdd, MosType::Pmos, pmos(8e-6, 2e-6))
        .unwrap();

    // Second branch: MB5 (gate vbp) sources the current into the
    // diode-connected MB3, sized for the slightly higher vbnc.
    nl.add_mosfet("MB5", vbnc, vbp, vdd, vdd, MosType::Pmos, pmos(8e-6, 2e-6))
        .unwrap();
    nl.add_mosfet(
        "MB3",
        vbnc,
        vbnc,
        gnd,
        gnd,
        MosType::Nmos,
        nmos(7.6e-6, 2e-6),
    )
    .unwrap();

    // Auto-zero level: resistive divider (~2.2 V), stiff enough that the
    // line serves 256 comparators (Thevenin ≈ 8 kΩ).
    nl.add_resistor("RD1", vdd, vaz, 18e3).unwrap();
    nl.add_resistor("RD2", vaz, gnd, 14.3e3).unwrap();
    nl
}

/// Builds the bias-generator testbench (macro plus the analog supply).
pub fn bias_testbench() -> Netlist {
    let mut nl = bias_macro();
    let vdd = nl.node("vdd");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(VDD))
        .unwrap();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::BiasValues;
    use dotm_sim::Simulator;

    #[test]
    fn outputs_are_near_nominal() {
        let nl = bias_testbench();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let nominal = BiasValues::default();
        let checks = [
            ("vbn", nominal.vbn, 0.15),
            ("vbnc", nominal.vbnc, 0.15),
            ("vbp", nominal.vbp, 0.25),
            ("vaz", nominal.vaz, 0.10),
        ];
        for (name, expect, tol) in checks {
            let v = op.voltage(nl.find_node(name).unwrap());
            assert!(
                (v - expect).abs() < tol,
                "{name}: got {v:.3}, expected {expect:.3} ± {tol}"
            );
        }
    }

    #[test]
    fn vbn_and_vbnc_are_similar_signals() {
        let nl = bias_testbench();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let vbn = op.voltage(nl.find_node("vbn").unwrap());
        let vbnc = op.voltage(nl.find_node("vbnc").unwrap());
        let vbp = op.voltage(nl.find_node("vbp").unwrap());
        assert!((vbn - vbnc).abs() < 0.3, "vbn {vbn} vs vbnc {vbnc}");
        assert!((vbn - vbp).abs() > 1.5, "vbn {vbn} vs vbp {vbp}");
    }

    #[test]
    fn supply_current_is_tens_of_microamps() {
        let nl = bias_testbench();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let i = op
            .branch_current(nl.device_id("VDD").unwrap())
            .unwrap()
            .abs();
        assert!(i > 20e-6 && i < 500e-6, "bias IVdd {i}");
    }

    #[test]
    fn short_between_similar_bias_lines_barely_shifts_current() {
        // The DfT motivation: a vbn↔vbnc short (similar values) moves IVdd
        // far less than a vbn↔vbp short (dissimilar values).
        let measure = |edit: &dyn Fn(&mut Netlist)| {
            let mut nl = bias_testbench();
            edit(&mut nl);
            let mut sim = Simulator::new(&nl);
            let op = sim.dc_op().unwrap();
            op.branch_current(nl.device_id("VDD").unwrap())
                .unwrap()
                .abs()
        };
        let nominal = measure(&|_| {});
        let similar = measure(&|nl: &mut Netlist| {
            let a = nl.find_node("vbn").unwrap();
            let b = nl.find_node("vbnc").unwrap();
            nl.insert_bridge("F", a, b, 0.2, None).unwrap();
        });
        let dissimilar = measure(&|nl: &mut Netlist| {
            let a = nl.find_node("vbn").unwrap();
            let b = nl.find_node("vbp").unwrap();
            nl.insert_bridge("F", a, b, 0.2, None).unwrap();
        });
        let d_sim = (similar - nominal).abs();
        let d_dis = (dissimilar - nominal).abs();
        assert!(
            d_dis > 5.0 * d_sim.max(1e-9),
            "dissimilar short must move IVdd much more: similar Δ{d_sim:.2e}, dissimilar Δ{d_dis:.2e}"
        );
    }
}
