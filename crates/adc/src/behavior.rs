//! Behavioural macro models and the full Flash ADC assembly.
//!
//! The paper's divide-and-conquer: circuit-level simulation happens per
//! macro; propagation of fault signatures to the circuit edge uses
//! "higher-level models of the other cells". This module provides those
//! models — a comparator parameterised by its voltage fault signature, the
//! reference taps, and the wired-OR decoder — plus the missing-code test
//! itself (triangular stimulus, 1000 samples, check that every output
//! number occurs).

use crate::decoder::decode_thermometer;
use crate::ladder::{ideal_tap_voltage, TAPS};
use crate::process::{VREF_HI, VREF_LO};
use std::collections::BTreeSet;

/// Behavioural model of one comparator stage, as parameterised by a fault
/// signature from the circuit-level analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComparatorBehavior {
    /// Working comparator with an input-referred offset (V).
    Normal {
        /// Input-referred offset (V); positive offset makes the stage trip
        /// at a higher input voltage.
        offset: f64,
    },
    /// Output stuck high (thermometer bit always 1).
    StuckHigh,
    /// Output stuck low.
    StuckLow,
    /// Erratic ("mixed") behaviour: the decision inverts on a fraction of
    /// the samples, deterministically derived from the sample index.
    Erratic {
        /// Invert every `period`-th sample (≥ 2).
        period: usize,
    },
}

impl ComparatorBehavior {
    /// The decision of this stage for input `vin` against reference
    /// `vref` on sample number `sample`.
    pub fn decide(&self, vin: f64, vref: f64, sample: usize) -> bool {
        match *self {
            ComparatorBehavior::Normal { offset } => vin > vref + offset,
            ComparatorBehavior::StuckHigh => true,
            ComparatorBehavior::StuckLow => false,
            ComparatorBehavior::Erratic { period } => {
                let ideal = vin > vref;
                if period >= 2 && sample % period == 0 {
                    !ideal
                } else {
                    ideal
                }
            }
        }
    }

    /// An ideal comparator.
    pub fn ideal() -> Self {
        ComparatorBehavior::Normal { offset: 0.0 }
    }
}

/// Behavioural model of the complete flash converter: 256 reference taps,
/// 256 comparator stages, and the transition-detect wired-OR decoder.
#[derive(Debug, Clone)]
pub struct FlashAdc {
    refs: Vec<f64>,
    comps: Vec<ComparatorBehavior>,
}

impl FlashAdc {
    /// An ideal converter with evenly spaced references.
    pub fn ideal() -> Self {
        FlashAdc {
            refs: (1..=TAPS).map(ideal_tap_voltage).collect(),
            comps: vec![ComparatorBehavior::ideal(); TAPS],
        }
    }

    /// Number of comparator stages.
    pub fn stages(&self) -> usize {
        self.comps.len()
    }

    /// Replaces the behaviour of stage `k` (0-based).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn set_comparator(&mut self, k: usize, behavior: ComparatorBehavior) {
        self.comps[k] = behavior;
    }

    /// Overrides reference tap `k` (0-based) — used for ladder fault
    /// propagation.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn set_reference(&mut self, k: usize, volts: f64) {
        self.refs[k] = volts;
    }

    /// Converts one sample.
    pub fn convert(&self, vin: f64, sample: usize) -> u8 {
        let therm: Vec<bool> = self
            .comps
            .iter()
            .zip(&self.refs)
            .map(|(c, &r)| c.decide(vin, r, sample))
            .collect();
        decode_thermometer(&therm)
    }

    /// Runs the paper's missing-code test: `n` samples of a triangular
    /// sweep spanning slightly beyond the full reference range, then the
    /// set of output codes that never occurred.
    pub fn missing_codes(&self, n: usize) -> Vec<u8> {
        let mut seen = BTreeSet::new();
        let lo = VREF_LO - 0.01;
        let hi = VREF_HI + 0.01;
        for s in 0..n {
            // Triangle over the sample index: up then down.
            let half = n / 2;
            let frac = if s <= half {
                s as f64 / half as f64
            } else {
                (n - s) as f64 / (n - half) as f64
            };
            let vin = lo + (hi - lo) * frac;
            seen.insert(self.convert(vin, s));
        }
        (0u8..=255).filter(|c| !seen.contains(c)).collect()
    }

    /// `true` if the missing-code test (with the paper's 1000 samples)
    /// flags this converter as faulty.
    pub fn fails_missing_code_test(&self) -> bool {
        !self.missing_codes(1000).is_empty()
    }
}

impl Default for FlashAdc {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_adc_has_no_missing_codes() {
        let adc = FlashAdc::ideal();
        assert!(adc.missing_codes(1000).is_empty());
        assert!(!adc.fails_missing_code_test());
    }

    #[test]
    fn conversion_is_monotone_for_ideal_adc() {
        let adc = FlashAdc::ideal();
        let mut last = 0u8;
        for k in 0..200 {
            let vin = VREF_LO + (VREF_HI - VREF_LO) * k as f64 / 199.0;
            let code = adc.convert(vin, 0);
            assert!(code >= last, "non-monotone at {vin}");
            last = code;
        }
        assert_eq!(adc.convert(VREF_LO - 0.1, 0), 0);
        assert_eq!(adc.convert(VREF_HI + 0.1, 0), 255);
    }

    #[test]
    fn stuck_comparator_causes_missing_codes() {
        for behavior in [ComparatorBehavior::StuckHigh, ComparatorBehavior::StuckLow] {
            let mut adc = FlashAdc::ideal();
            adc.set_comparator(100, behavior);
            assert!(
                adc.fails_missing_code_test(),
                "{behavior:?} must cause missing codes"
            );
        }
    }

    #[test]
    fn small_offset_is_not_detected_large_offset_is() {
        // Offsets below one LSB (≈ 7.8 mV) leave every code reachable;
        // offsets of several LSBs swallow codes.
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(100, ComparatorBehavior::Normal { offset: 0.002 });
        assert!(!adc.fails_missing_code_test(), "2 mV offset must pass");
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(100, ComparatorBehavior::Normal { offset: 0.030 });
        assert!(adc.fails_missing_code_test(), "30 mV offset must fail");
    }

    #[test]
    fn erratic_comparator_corrupts_codes() {
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(100, ComparatorBehavior::Erratic { period: 2 });
        assert!(adc.fails_missing_code_test());
    }

    #[test]
    fn shifted_reference_tap_swallows_codes() {
        let mut adc = FlashAdc::ideal();
        // Tap 100 jumps near tap 110's value: codes around 100 vanish.
        adc.set_reference(100, ideal_tap_voltage(110));
        assert!(adc.fails_missing_code_test());
    }
}

/// Code-density linearity of a converter: DNL/INL in LSB estimated from a
/// dense linear ramp (the histogram method every production test floor
/// uses; the missing-code test is its cheap binary cousin).
#[derive(Debug, Clone)]
pub struct LinearityReport {
    /// Differential nonlinearity per code (LSB), codes `1..=254`.
    pub dnl: Vec<f64>,
    /// Integral nonlinearity per code (LSB), cumulative sum of DNL.
    pub inl: Vec<f64>,
    /// Codes that never occurred.
    pub missing: Vec<u8>,
}

impl LinearityReport {
    /// Largest |DNL| (LSB).
    pub fn max_dnl(&self) -> f64 {
        self.dnl.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Largest |INL| (LSB).
    pub fn max_inl(&self) -> f64 {
        self.inl.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

impl FlashAdc {
    /// Runs the code-density (histogram) linearity analysis with
    /// `samples_per_code` ramp samples per nominal code bin.
    pub fn code_density_linearity(&self, samples_per_code: usize) -> LinearityReport {
        let n = samples_per_code.max(1) * 256;
        let lo = VREF_LO;
        let hi = VREF_HI;
        let mut hist = [0usize; 256];
        for s in 0..n {
            let vin = lo + (hi - lo) * (s as f64 + 0.5) / n as f64;
            hist[self.convert(vin, s) as usize] += 1;
        }
        // End bins absorb the clipped range; evaluate codes 1..=254.
        let interior: usize = hist[1..255].iter().sum();
        let ideal = interior as f64 / 254.0;
        let mut dnl = Vec::with_capacity(254);
        let mut inl = Vec::with_capacity(254);
        let mut acc = 0.0;
        for &count in &hist[1..255] {
            let d = count as f64 / ideal - 1.0;
            dnl.push(d);
            acc += d;
            inl.push(acc);
        }
        let missing = (0u8..=255).filter(|&c| hist[c as usize] == 0).collect();
        LinearityReport { dnl, inl, missing }
    }
}

#[cfg(test)]
mod linearity_tests {
    use super::*;
    use crate::ladder::ideal_tap_voltage;

    #[test]
    fn ideal_adc_is_linear() {
        let adc = FlashAdc::ideal();
        let rep = adc.code_density_linearity(32);
        assert!(rep.missing.is_empty());
        assert!(rep.max_dnl() < 0.1, "max dnl {}", rep.max_dnl());
        assert!(rep.max_inl() < 0.2, "max inl {}", rep.max_inl());
    }

    #[test]
    fn offset_comparator_shows_dnl_spike() {
        let mut adc = FlashAdc::ideal();
        // Half-LSB offset: no missing code, but a visible DNL error.
        adc.set_comparator(100, ComparatorBehavior::Normal { offset: 0.004 });
        let rep = adc.code_density_linearity(32);
        assert!(rep.missing.is_empty());
        assert!(rep.max_dnl() > 0.3, "max dnl {}", rep.max_dnl());
    }

    #[test]
    fn shifted_reference_appears_in_inl() {
        let mut adc = FlashAdc::ideal();
        adc.set_reference(100, ideal_tap_voltage(103));
        let rep = adc.code_density_linearity(32);
        assert!(rep.max_inl() >= 0.99, "max inl {}", rep.max_inl());
        assert!(!rep.missing.is_empty());
    }

    #[test]
    fn stuck_comparator_reports_missing_codes_in_histogram() {
        let mut adc = FlashAdc::ideal();
        adc.set_comparator(100, ComparatorBehavior::StuckLow);
        let rep = adc.code_density_linearity(16);
        assert!(!rep.missing.is_empty());
    }
}
