//! Procedural mask layouts of the five macro cells.
//!
//! The defect statistics of the paper depend on layout *structure* — long
//! parallel trunk wires (clocks, biases) dominating the bridging exposure,
//! device areas for pinholes, contact/via counts for opens. These
//! generators produce stylised but electrically consistent layouts:
//!
//! * every shape is tagged with the netlist node name it implements;
//! * geometric extraction ([`dotm_layout::connect::extract`]) of every
//!   macro reproduces its netlist connectivity with zero violations
//!   (asserted in tests);
//! * device terminals carry [`Pin`]s so opens partition correctly.
//!
//! Routing discipline: metal-1 strictly vertical (risers from device
//! contacts), metal-2 strictly horizontal (net tracks and the shared
//! trunks). The trunk order is a parameter — exchanging the bias lines is
//! the paper's second DfT measure.

use dotm_layout::{ChannelType, Layer, Layout, NetId, Pin, Rect, TransistorGeom};
use std::collections::HashMap;

/// Slot width for one placed device (nm).
const SLOT_W: i64 = 7_000;
/// Y of the device row's active bottom (nm).
const DEV_Y: i64 = 2_000;
/// Height of the device active region (nm) — wider than tall, so an
/// extra-poly spot can span a diffusion finger and create a parasitic
/// device, as in VLASIC's new-device extraction.
const DEV_H: i64 = 2_000;
/// Gate poly width (nm).
const GATE_L: i64 = 800;
/// Contact size (nm).
const CUT: i64 = 600;
/// M1 riser width (nm).
const M1_W: i64 = 600;
/// M2 wire width (nm).
const M2_W: i64 = 800;
/// Track pitch (nm).
const PITCH: i64 = 1_400;
/// Y of the first routing track (above the gate contact pads).
const TRACK_Y0: i64 = DEV_Y + DEV_H + 3_400;

/// Layout build options shared by the macro generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutConfig {
    /// Apply the paper's DfT bias-line reorder: separate the two
    /// similar-signal bias trunks (`vbn`, `vbnc`) with the strongly
    /// deviating `vbp`.
    pub dft_bias_order: bool,
}

/// A terminal feed: the external driver device electrically anchoring a
/// trunk (the "main side" when an open splits the trunk).
#[derive(Debug, Clone)]
struct Feed {
    net: String,
    device: String,
    terminal: usize,
}

/// Incremental layout synthesiser for one macro cell.
#[derive(Debug)]
struct CellSynth {
    lo: Layout,
    next_col: i64,
    /// Pending M1 risers: (net, x centre, y of contact centre).
    risers: Vec<(NetId, i64, i64)>,
    feeds: Vec<Feed>,
}

impl CellSynth {
    fn new(name: &str) -> Self {
        let mut lo = Layout::new(name);
        let gnd = lo.net("gnd");
        lo.set_substrate_net(gnd);
        CellSynth {
            lo,
            next_col: 0,
            risers: Vec::new(),
            feeds: Vec::new(),
        }
    }

    fn net(&mut self, name: &str) -> NetId {
        self.lo.net(name)
    }

    fn alloc_slot(&mut self) -> i64 {
        let x = self.next_col;
        self.next_col += SLOT_W;
        x
    }

    /// Places a MOSFET in the next slot: drain/source active pads, a
    /// vertical poly gate with a contact pad, contacts and riser requests
    /// for all three routed terminals, and the channel record.
    fn place_mosfet(&mut self, name: &str, d: &str, g: &str, s: &str, b: &str, ty: ChannelType) {
        let x0 = self.alloc_slot();
        let dn = self.net(d);
        let gn = self.net(g);
        let sn = self.net(s);
        let bn = self.net(b);
        let y0 = DEV_Y;
        let gate_x0 = x0 + 3_100;
        let gate_x1 = gate_x0 + GATE_L;
        // Drain and source diffusions abut the channel.
        self.lo.add_rect(
            dn,
            Layer::Active,
            Rect::new(x0 + 500, y0, gate_x0, y0 + DEV_H),
        );
        self.lo.add_rect(
            sn,
            Layer::Active,
            Rect::new(gate_x1, y0, x0 + 6_500, y0 + DEV_H),
        );
        // Poly gate strip with a contact pad above the device.
        self.lo.add_rect(
            gn,
            Layer::Poly,
            Rect::new(gate_x0, y0 - 800, gate_x1, y0 + DEV_H + 1_400),
        );
        self.lo.add_rect(
            gn,
            Layer::Poly,
            Rect::new(x0 + 2_900, y0 + DEV_H + 600, x0 + 4_100, y0 + DEV_H + 1_400),
        );
        // N-well for PMOS devices (tagged with the bulk net).
        if ty == ChannelType::P {
            self.lo.add_rect(
                bn,
                Layer::Nwell,
                Rect::new(x0, y0 - 1_500, x0 + SLOT_W, y0 + DEV_H + 2_000),
            );
        }
        self.lo.add_transistor(TransistorGeom {
            device: name.to_string(),
            ty,
            channel: Rect::new(gate_x0, y0, gate_x1, y0 + DEV_H),
            gate_net: gn,
            drain_net: dn,
            source_net: sn,
            bulk_net: bn,
        });
        // Contacts + risers: drain, gate pad, source.
        let dc = (x0 + 1_500, y0 + DEV_H / 2);
        let gc = (x0 + 3_500, y0 + DEV_H + 1_000);
        let sc = (x0 + 5_500, y0 + DEV_H / 2);
        for (net, (cx, cy)) in [(dn, dc), (gn, gc), (sn, sc)] {
            self.lo.add_contact(net, cx, cy, CUT);
            self.risers.push((net, cx, cy));
        }
        // Terminal pins sit at the channel edges — that is where the
        // device electrically joins its nets. A defect severing the
        // diffusion finger between channel and contact therefore isolates
        // the terminal (an open, or a new device in series when the
        // severing spot is poly).
        self.lo.add_pin(Pin {
            device: name.to_string(),
            terminal: 0,
            net: dn,
            layer: Layer::Active,
            at: Rect::new(gate_x0 - 400, y0, gate_x0, y0 + DEV_H),
        });
        self.lo.add_pin(Pin {
            device: name.to_string(),
            terminal: 1,
            net: gn,
            layer: Layer::Poly,
            at: Rect::new(gate_x0, y0, gate_x1, y0 + DEV_H),
        });
        self.lo.add_pin(Pin {
            device: name.to_string(),
            terminal: 2,
            net: sn,
            layer: Layer::Active,
            at: Rect::new(gate_x1, y0, gate_x1 + 400, y0 + DEV_H),
        });
    }

    /// Places a two-terminal resistor as two body halves (tagged with the
    /// terminal nets, separated by a small resistive gap) with end
    /// contacts. `layer` is `Poly` (fine/bias resistors) or `Active`
    /// (low-ohmic diffusion).
    fn place_resistor(&mut self, name: &str, a: &str, b: &str, layer: Layer) {
        let x0 = self.alloc_slot();
        let an = self.net(a);
        let bn = self.net(b);
        let y = DEV_Y + 1_000;
        let mid = x0 + 3_500;
        self.lo
            .add_rect(an, layer, Rect::new(x0 + 500, y, mid - 100, y + 800));
        self.lo
            .add_rect(bn, layer, Rect::new(mid + 100, y, x0 + 6_500, y + 800));
        for (term, net, cx) in [(0usize, an, x0 + 900), (1, bn, x0 + 6_100)] {
            self.lo.add_contact(net, cx, y + 400, CUT);
            self.risers.push((net, cx, y + 400));
            self.lo.add_pin(Pin {
                device: name.to_string(),
                terminal: term,
                net,
                layer: Layer::Metal1,
                at: Rect::square(cx, y + 400, CUT),
            });
        }
    }

    /// Places a poly/metal-1 plate capacitor: terminal 0 is the poly
    /// bottom plate, terminal 1 the metal-1 top plate.
    fn place_capacitor(&mut self, name: &str, a: &str, b: &str) {
        let x0 = self.alloc_slot();
        let an = self.net(a);
        let bn = self.net(b);
        let y0 = DEV_Y;
        // Poly bottom plate with a contact tab clear of the top plate.
        self.lo.add_rect(
            an,
            Layer::Poly,
            Rect::new(x0 + 500, y0, x0 + 6_500, y0 + DEV_H + 1_000),
        );
        let ac = (x0 + 900, y0 + DEV_H + 600);
        self.lo.add_contact(an, ac.0, ac.1, CUT);
        self.risers.push((an, ac.0, ac.1));
        self.lo.add_pin(Pin {
            device: name.to_string(),
            terminal: 0,
            net: an,
            layer: Layer::Metal1,
            at: Rect::square(ac.0, ac.1, CUT),
        });
        // Metal-1 top plate, kept clear of the poly contact tab.
        let plate = Rect::new(x0 + 1_800, y0 + 300, x0 + 6_200, y0 + DEV_H - 300);
        self.lo.add_rect(bn, Layer::Metal1, plate);
        // The riser continues from inside the plate.
        self.risers.push((bn, x0 + 5_800, y0 + DEV_H - 600));
        self.lo.add_pin(Pin {
            device: name.to_string(),
            terminal: 1,
            net: bn,
            layer: Layer::Metal1,
            at: plate,
        });
    }

    /// Places a substrate or well tap tying `rail` to the bulk.
    fn place_tap(&mut self, rail: &str, well: bool) {
        let x0 = self.alloc_slot();
        let rn = self.net(rail);
        let y0 = DEV_Y;
        if well {
            self.lo.add_rect(
                rn,
                Layer::Nwell,
                Rect::new(x0, y0 - 1_500, x0 + SLOT_W, y0 + DEV_H + 2_000),
            );
        }
        self.lo.add_rect(
            rn,
            Layer::Active,
            Rect::new(x0 + 2_000, y0, x0 + 5_000, y0 + 1_500),
        );
        self.lo.add_contact(rn, x0 + 3_500, y0 + 750, CUT);
        self.risers.push((rn, x0 + 3_500, y0 + 750));
    }

    /// Registers an external feed device for a trunk net.
    fn feed(&mut self, net: &str, device: &str, terminal: usize) {
        self.feeds.push(Feed {
            net: net.to_string(),
            device: device.to_string(),
            terminal,
        });
    }

    /// Finalises the cell: assigns M2 tracks (internal nets first, then the
    /// trunks in the given order at the top), draws risers and vias, and
    /// attaches feed pins.
    fn finish(mut self, trunk_order: &[&str]) -> Layout {
        let mut riser_nets: Vec<NetId> = self.risers.iter().map(|r| r.0).collect();
        riser_nets.sort_unstable();
        riser_nets.dedup();
        let trunk_ids: Vec<NetId> = trunk_order.iter().map(|n| self.lo.net(n)).collect();
        let mut track_y: HashMap<NetId, i64> = HashMap::new();
        let mut y = TRACK_Y0;
        let mut internal: Vec<NetId> = riser_nets
            .iter()
            .copied()
            .filter(|n| !trunk_ids.contains(n))
            .collect();
        internal.sort_by_key(|n| self.lo.net_name(*n).to_string());
        for net in &internal {
            track_y.insert(*net, y);
            y += PITCH;
        }
        // Trunk zone above the internal tracks; adjacency within the trunk
        // order is the bridging hot spot.
        y += PITCH;
        for net in &trunk_ids {
            track_y.insert(*net, y);
            y += PITCH;
        }

        let cell_w = self.next_col.max(SLOT_W);
        // Internal tracks span their risers; trunks span the full cell.
        let mut span: HashMap<NetId, (i64, i64)> = HashMap::new();
        for (net, x, _) in &self.risers {
            let e = span.entry(*net).or_insert((*x, *x));
            e.0 = e.0.min(*x);
            e.1 = e.1.max(*x);
        }
        for net in internal.iter() {
            let (x0, x1) = span[net];
            let ty = track_y[net];
            self.lo.add_rect(
                *net,
                Layer::Metal2,
                Rect::new(x0 - 700, ty - M2_W / 2, x1 + 700, ty + M2_W / 2),
            );
        }
        for net in trunk_ids.iter() {
            let ty = track_y[net];
            self.lo.add_rect(
                *net,
                Layer::Metal2,
                Rect::new(-2_000, ty - M2_W / 2, cell_w + 2_000, ty + M2_W / 2),
            );
        }
        // Risers and vias.
        for (net, x, cy) in std::mem::take(&mut self.risers) {
            let ty = track_y[&net];
            self.lo.add_rect(
                net,
                Layer::Metal1,
                Rect::new(x - M1_W / 2, cy - CUT / 2, x + M1_W / 2, ty + M2_W / 2),
            );
            self.lo.add_via(net, x, ty, CUT);
        }
        // Feed pins at the left end of their trunk.
        for feed in std::mem::take(&mut self.feeds) {
            let net = self.lo.net(&feed.net);
            let ty = *track_y.get(&net).expect("feed nets must be routed trunks");
            self.lo.add_pin(Pin {
                device: feed.device,
                terminal: feed.terminal,
                net,
                layer: Layer::Metal2,
                at: Rect::new(-2_000, ty - M2_W / 2, -1_200, ty + M2_W / 2),
            });
        }
        self.lo
    }
}

/// The comparator trunk order: the shared lines crossing every comparator
/// in the column. Without DfT, `vbn` and `vbnc` (nearly identical
/// voltages) are adjacent; the DfT reorder separates them with `vbp`.
pub fn comparator_trunk_order(cfg: LayoutConfig) -> Vec<&'static str> {
    if cfg.dft_bias_order {
        vec![
            "vdd", "gnd", "ck1", "ck2", "ck3", "vbn", "vbp", "vbnc", "vaz", "vin", "vref", "fa",
            "fb",
        ]
    } else {
        vec![
            "vdd", "gnd", "ck1", "ck2", "ck3", "vbn", "vbnc", "vbp", "vaz", "vin", "vref", "fa",
            "fb",
        ]
    }
}

/// Generates the comparator macro layout matching
/// [`crate::comparator::comparator_macro`].
pub fn comparator_layout(cfg: crate::comparator::ComparatorConfig, lcfg: LayoutConfig) -> Layout {
    let mut s = CellSynth::new(if cfg.dft_flipflop {
        "comparator_dft"
    } else {
        "comparator"
    });
    // Input sampling network.
    s.place_mosfet("MS1A", "vref", "ck1", "na", "gnd", ChannelType::N);
    s.place_mosfet("MS1B", "vin", "ck1", "nb", "gnd", ChannelType::N);
    s.place_mosfet("MS2A", "vin", "ck2", "na", "gnd", ChannelType::N);
    s.place_mosfet("MS2B", "vref", "ck2", "nb", "gnd", ChannelType::N);
    s.place_capacitor("CA", "na", "ga");
    s.place_capacitor("CB", "nb", "gb");
    s.place_mosfet("MS3A", "ga", "ck1", "vaz", "gnd", ChannelType::N);
    s.place_mosfet("MS3B", "gb", "ck1", "vaz", "gnd", ChannelType::N);
    // Amplifier.
    s.place_mosfet("M1", "oa", "ga", "ntail", "gnd", ChannelType::N);
    s.place_mosfet("M2", "ob", "gb", "ntail", "gnd", ChannelType::N);
    s.place_mosfet("M3", "ntail", "vbn", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("M4", "oa", "oa", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("M5", "ob", "ob", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("M16", "oa", "vbp", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("M17", "ob", "vbp", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("M18", "oa", "vbnc", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("M19", "ob", "vbnc", "gnd", "gnd", ChannelType::N);
    // Latch.
    s.place_mosfet("ML1", "xa", "oa", "nls", "gnd", ChannelType::N);
    s.place_mosfet("ML2", "xb", "ob", "nls", "gnd", ChannelType::N);
    s.place_mosfet("ML3", "la", "lb", "xa", "gnd", ChannelType::N);
    s.place_mosfet("ML4", "lb", "la", "xb", "gnd", ChannelType::N);
    s.place_mosfet("ML5", "la", "lb", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("ML6", "lb", "la", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("ML7", "nls", "ck3", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MI2N", "ck2b", "ck2", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MI2P", "ck2b", "ck2", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MLE1", "la", "ck2b", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MLE2", "lb", "ck2b", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MLE3", "la", "ck2b", "lb", "vdd", ChannelType::P);
    // Flipflop.
    s.place_mosfet("MFP1", "la", "ck1", "fa", "gnd", ChannelType::N);
    s.place_mosfet("MFP2", "lb", "ck1", "fb", "gnd", ChannelType::N);
    s.place_mosfet("MFN1", "fb", "fa", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MFI1", "fb", "fa", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MFN2", "fa", "fb", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MFI2", "fa", "fb", "vdd", "vdd", ChannelType::P);
    if !cfg.dft_flipflop {
        s.place_mosfet("MEQ", "fa", "ck1", "fb", "gnd", ChannelType::N);
    }
    // Taps.
    s.place_tap("gnd", false);
    s.place_tap("vdd", true);
    // External feeds (testbench sources and the clock-gen drivers).
    s.feed("vdd", "VDD", 0);
    s.feed("vin", "VIN", 0);
    // Bias and reference trunks are fed through their source-impedance
    // resistors; the line-side resistor terminal is the anchor.
    s.feed("vref", "RVREF", 1);
    s.feed("vbn", "RVBN", 1);
    s.feed("vbnc", "RVBNC", 1);
    s.feed("vbp", "RVBP", 1);
    s.feed("vaz", "RVAZ", 1);
    s.feed("ck1", "MCB1BN", 0);
    s.feed("ck2", "MCB2BN", 0);
    s.feed("ck3", "MCB3BN", 0);
    s.finish(&comparator_trunk_order(lcfg))
}

/// Generates the bias-generator layout matching [`crate::bias::bias_macro`].
pub fn bias_layout() -> Layout {
    let mut s = CellSynth::new("bias_gen");
    s.place_resistor("RREF", "vdd", "vbn", Layer::Poly);
    s.place_mosfet("MB1", "vbn", "vbn", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MB2", "vbp", "vbn", "gnd", "gnd", ChannelType::N);
    s.place_mosfet("MB4", "vbp", "vbp", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MB5", "vbnc", "vbp", "vdd", "vdd", ChannelType::P);
    s.place_mosfet("MB3", "vbnc", "vbnc", "gnd", "gnd", ChannelType::N);
    s.place_resistor("RD1", "vdd", "vaz", Layer::Poly);
    s.place_resistor("RD2", "vaz", "gnd", Layer::Poly);
    s.place_tap("gnd", false);
    s.place_tap("vdd", true);
    s.feed("vdd", "VDD", 0);
    s.finish(&["vdd", "gnd", "vbn", "vbnc", "vbp", "vaz"])
}

/// Generates the clock-generator layout matching
/// [`crate::clockgen::clockgen_macro`].
pub fn clockgen_layout() -> Layout {
    let mut s = CellSynth::new("clock_gen");
    for n in 1..=3usize {
        let x = format!("x{n}");
        let a = format!("a{n}");
        let b = format!("b{n}");
        let c = format!("c{n}");
        let y = format!("ck{n}");
        let y_prev = format!("ck{}", [3, 1, 2][n - 1]);
        let mid = format!("nmid{n}");
        s.place_mosfet(&format!("MG{n}IN"), &a, &x, "gnd", "gnd", ChannelType::N);
        s.place_mosfet(
            &format!("MG{n}IP"),
            &a,
            &x,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(&format!("MG{n}NA"), &b, &a, "gnd", "gnd", ChannelType::N);
        s.place_mosfet(
            &format!("MG{n}NB"),
            &b,
            &y_prev,
            "gnd",
            "gnd",
            ChannelType::N,
        );
        s.place_mosfet(
            &format!("MG{n}PA"),
            &mid,
            &a,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(
            &format!("MG{n}PB"),
            &b,
            &y_prev,
            &mid,
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(&format!("MG{n}CN"), &c, &b, "gnd", "gnd", ChannelType::N);
        s.place_mosfet(
            &format!("MG{n}CP"),
            &c,
            &b,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(&format!("MG{n}DN"), &y, &c, "gnd", "gnd", ChannelType::N);
        s.place_mosfet(
            &format!("MG{n}DP"),
            &y,
            &c,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
    }
    s.place_tap("gnd", false);
    s.place_tap("vdd_dig", true);
    s.feed("vdd_dig", "VDDDIG", 0);
    s.feed("x1", "VX1", 0);
    s.feed("x2", "VX2", 0);
    s.feed("x3", "VX3", 0);
    s.finish(&["vdd_dig", "gnd", "x1", "x2", "x3", "ck1", "ck2", "ck3"])
}

/// Generates the decoder column-section layout matching
/// [`crate::decoder::decoder_slice_macro`]: three ROM rows on the shared
/// precharged bitlines.
pub fn decoder_slice_layout(codes: [u8; 3]) -> Layout {
    let mut s = CellSynth::new("decoder_slice");
    for bit in 0..8u8 {
        let bl = format!("bl{bit}");
        s.place_mosfet(
            &format!("MDP{bit}"),
            &bl,
            "pc",
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
    }
    for (r, &code) in codes.iter().enumerate() {
        let t_cur = format!("t{r}");
        let t_next = format!("t{}", r + 1);
        let tn_b = format!("tn_b{r}");
        let e_b = format!("e_b{r}");
        let e = format!("e{r}");
        let mid = format!("nmid{r}");
        s.place_mosfet(
            &format!("MD1N{r}"),
            &tn_b,
            &t_next,
            "gnd",
            "gnd",
            ChannelType::N,
        );
        s.place_mosfet(
            &format!("MD1P{r}"),
            &tn_b,
            &t_next,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(
            &format!("MD2A{r}"),
            &mid,
            &t_cur,
            "gnd",
            "gnd",
            ChannelType::N,
        );
        s.place_mosfet(
            &format!("MD2B{r}"),
            &e_b,
            &tn_b,
            &mid,
            "gnd",
            ChannelType::N,
        );
        s.place_mosfet(
            &format!("MD2PA{r}"),
            &e_b,
            &t_cur,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(
            &format!("MD2PB{r}"),
            &e_b,
            &tn_b,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        s.place_mosfet(&format!("MD3N{r}"), &e, &e_b, "gnd", "gnd", ChannelType::N);
        s.place_mosfet(
            &format!("MD3P{r}"),
            &e,
            &e_b,
            "vdd_dig",
            "vdd_dig",
            ChannelType::P,
        );
        for bit in 0..8u8 {
            if code & (1 << bit) != 0 {
                let bl = format!("bl{bit}");
                s.place_mosfet(
                    &format!("MDR{bit}_{r}"),
                    &bl,
                    &e,
                    "gnd",
                    "gnd",
                    ChannelType::N,
                );
            }
        }
    }
    s.place_tap("gnd", false);
    s.place_tap("vdd_dig", true);
    s.feed("vdd_dig", "VDDDIG", 0);
    s.feed("t0", "VT0", 0);
    s.feed("t1", "VT1", 0);
    s.feed("t2", "VT2", 0);
    s.feed("t3", "VT3", 0);
    s.feed("pc", "RPC", 1);
    s.finish(&[
        "vdd_dig", "gnd", "pc", "t0", "t1", "t2", "t3", "bl0", "bl1", "bl2", "bl3", "bl4", "bl5",
        "bl6", "bl7",
    ])
}

/// Generates the dual-ladder layout matching
/// [`crate::ladder::ladder_macro`]: one row per coarse segment, each with
/// a low-ohmic diffusion bar (the coarse resistor) and a parallel poly
/// chain of 16 fine resistors, with metal taps; coarse nodes chain between
/// rows through M2 links in the inter-row gaps.
pub fn ladder_layout() -> Layout {
    use crate::ladder::{COARSE_SEGMENTS, FINE_PER_COARSE};
    let mut lo = Layout::new("ladder");
    let gnd = lo.net("gnd");
    lo.set_substrate_net(gnd);
    let row_h: i64 = 6_200;
    let seg_w: i64 = 3_400; // fine segment pitch
    let width = seg_w * FINE_PER_COARSE as i64 + 2_000;
    let left_x = 1_400i64;
    let right_x = width - 1_400;

    let coarse_name = |k: usize| -> String {
        if k == 0 {
            "vrl".to_string()
        } else if k == COARSE_SEGMENTS {
            "vrh".to_string()
        } else {
            format!("c{k}")
        }
    };

    for k in 0..COARSE_SEGMENTS {
        let y0 = k as i64 * row_h;
        let na = lo.net(&coarse_name(k));
        let nb = lo.net(&coarse_name(k + 1));
        // Coarse diffusion bar: two halves per the resistor convention.
        let mid = width / 2;
        lo.add_rect(na, Layer::Active, Rect::new(1_000, y0, mid - 100, y0 + 900));
        lo.add_rect(
            nb,
            Layer::Active,
            Rect::new(mid + 100, y0, width - 1_000, y0 + 900),
        );
        for (term, net, cx) in [(0usize, na, left_x), (1, nb, right_x)] {
            lo.add_contact(net, cx, y0 + 450, CUT);
            lo.add_pin(Pin {
                device: format!("RC{k}"),
                terminal: term,
                net,
                layer: Layer::Metal1,
                at: Rect::square(cx, y0 + 450, CUT),
            });
        }
        // Fine poly chain at fy; adjacent segments share tap junctions by
        // abutment. The end contacts align with the coarse side risers.
        let fy = y0 + 1_800;
        for j in 0..FINE_PER_COARSE {
            let t = k * FINE_PER_COARSE + j; // left node tap index
            let left = if j == 0 {
                coarse_name(k)
            } else {
                crate::ladder::tap_name(t)
            };
            let right = if j == FINE_PER_COARSE - 1 {
                coarse_name(k + 1)
            } else {
                crate::ladder::tap_name(t + 1)
            };
            let ln = lo.net(&left);
            let rn = lo.net(&right);
            let x0 = 1_000 + j as i64 * seg_w;
            let xm = x0 + seg_w / 2;
            lo.add_rect(ln, Layer::Poly, Rect::new(x0, fy, xm - 100, fy + 700));
            lo.add_rect(
                rn,
                Layer::Poly,
                Rect::new(xm + 100, fy, x0 + seg_w, fy + 700),
            );
            let dev = format!("RF{}_{}", k, j);
            let left_cx = if j == 0 { left_x } else { x0 + 300 };
            let right_cx = if j == FINE_PER_COARSE - 1 {
                right_x
            } else {
                x0 + seg_w - 300
            };
            for (term, net, cx) in [(0usize, ln, left_cx), (1, rn, right_cx)] {
                lo.add_contact(net, cx, fy + 350, CUT);
                lo.add_pin(Pin {
                    device: dev.clone(),
                    terminal: term,
                    net,
                    layer: Layer::Metal1,
                    at: Rect::square(cx, fy + 350, CUT),
                });
                // Interior tap pad (the tap lines leave toward the
                // comparator column).
                if cx != left_x && cx != right_x {
                    lo.add_rect(
                        net,
                        Layer::Metal1,
                        Rect::new(cx - M1_W / 2, fy + 50, cx + M1_W / 2, fy + 1_500),
                    );
                }
            }
        }
        // Side risers joining the coarse bar and the fine chain ends, and
        // reaching the inter-row link levels.
        let gap_below = y0 - 1_200; // link level of coarse node k
        let gap_above = y0 + row_h - 1_200; // link level of node k+1
        let left_riser_y0 = if k == 0 { y0 + 150 } else { gap_below };
        lo.add_rect(
            na,
            Layer::Metal1,
            Rect::new(
                left_x - M1_W / 2,
                left_riser_y0,
                left_x + M1_W / 2,
                fy + 700,
            ),
        );
        let right_riser_y1 = if k == COARSE_SEGMENTS - 1 {
            fy + 700
        } else {
            gap_above
        };
        lo.add_rect(
            nb,
            Layer::Metal1,
            Rect::new(
                right_x - M1_W / 2,
                y0 + 150,
                right_x + M1_W / 2,
                right_riser_y1,
            ),
        );
        // Inter-row M2 link for coarse node k+1 (except after last row).
        if k + 1 < COARSE_SEGMENTS {
            lo.add_rect(
                nb,
                Layer::Metal2,
                Rect::new(
                    left_x - 700,
                    gap_above - M2_W / 2,
                    right_x + 700,
                    gap_above + M2_W / 2,
                ),
            );
            lo.add_via(nb, right_x, gap_above, CUT);
            lo.add_via(nb, left_x, gap_above, CUT);
        }
    }
    // The reference feed terminals anchor on the side risers.
    let vrl = lo.net("vrl");
    let vrh = lo.net("vrh");
    lo.add_pin(Pin {
        device: "VRL".into(),
        terminal: 0,
        net: vrl,
        layer: Layer::Metal1,
        at: Rect::square(left_x, 1_000, CUT),
    });
    let top_fy = (COARSE_SEGMENTS as i64 - 1) * row_h + 1_800;
    lo.add_pin(Pin {
        device: "VRH".into(),
        terminal: 0,
        net: vrh,
        layer: Layer::Metal1,
        at: Rect::square(right_x, top_fy + 500, CUT),
    });
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_layout::{connect, SpatialIndex};

    fn assert_extracts_clean(lo: &Layout) {
        let idx = SpatialIndex::build(lo);
        let ex = connect::extract(lo, &idx);
        let msgs: Vec<String> = ex
            .violations
            .iter()
            .map(|v| match v {
                dotm_layout::ExtractViolation::Bridged { nets } => {
                    format!("bridged {} / {}", lo.net_name(nets.0), lo.net_name(nets.1))
                }
                dotm_layout::ExtractViolation::SplitNet { net, components } => {
                    format!("split {} into {components}", lo.net_name(*net))
                }
            })
            .collect();
        assert!(msgs.is_empty(), "{}: {msgs:?}", lo.name());
    }

    #[test]
    fn comparator_layout_extracts_clean() {
        let lo = comparator_layout(
            crate::comparator::ComparatorConfig::default(),
            LayoutConfig::default(),
        );
        assert_extracts_clean(&lo);
        assert!(lo.transistors().len() >= 30);
    }

    #[test]
    fn comparator_dft_layout_extracts_clean() {
        let lo = comparator_layout(
            crate::comparator::ComparatorConfig { dft_flipflop: true },
            LayoutConfig {
                dft_bias_order: true,
            },
        );
        assert_extracts_clean(&lo);
        assert!(lo.transistors().iter().all(|t| t.device != "MEQ"));
    }

    #[test]
    fn trunk_order_separates_similar_biases_under_dft() {
        let plain = comparator_trunk_order(LayoutConfig::default());
        let dft = comparator_trunk_order(LayoutConfig {
            dft_bias_order: true,
        });
        let pos = |v: &[&str], n: &str| v.iter().position(|x| *x == n).unwrap() as i64;
        assert_eq!(
            (pos(&plain, "vbn") - pos(&plain, "vbnc")).abs(),
            1,
            "plain order must keep vbn/vbnc adjacent"
        );
        assert!(
            (pos(&dft, "vbn") - pos(&dft, "vbnc")).abs() > 1,
            "dft order must separate vbn/vbnc"
        );
    }

    #[test]
    fn bias_layout_extracts_clean() {
        assert_extracts_clean(&bias_layout());
    }

    #[test]
    fn clockgen_layout_extracts_clean() {
        assert_extracts_clean(&clockgen_layout());
    }

    #[test]
    fn decoder_slice_layout_extracts_clean() {
        assert_extracts_clean(&decoder_slice_layout(crate::decoder::SLICE_CODES));
    }

    #[test]
    fn ladder_layout_extracts_clean() {
        assert_extracts_clean(&ladder_layout());
    }

    #[test]
    fn layout_nets_match_macro_netlists() {
        // Every layout net must exist as a node in the corresponding
        // testbench netlist, or fault injection could not resolve it.
        let checks: Vec<(Layout, dotm_netlist::Netlist)> = vec![
            (
                comparator_layout(
                    crate::comparator::ComparatorConfig::default(),
                    LayoutConfig::default(),
                ),
                crate::comparator::comparator_testbench(
                    crate::comparator::ComparatorConfig::default(),
                    &crate::comparator::ComparatorStimulus::dc_offset(2.5, 0.0),
                ),
            ),
            (bias_layout(), crate::bias::bias_testbench()),
            (clockgen_layout(), crate::clockgen::clockgen_testbench()),
            (
                decoder_slice_layout(crate::decoder::SLICE_CODES),
                crate::decoder::decoder_slice_testbench(crate::decoder::SLICE_CODES, 1),
            ),
            (ladder_layout(), crate::ladder::ladder_testbench()),
        ];
        for (lo, nl) in &checks {
            for (_, name) in lo.nets() {
                assert!(
                    nl.find_node(name).is_some(),
                    "{}: layout net `{name}` missing from netlist",
                    lo.name()
                );
            }
        }
    }

    #[test]
    fn comparator_trunks_dominate_bridging_exposure() {
        // The clock/bias trunk region must be a large share of the metal2
        // exposure — that is what makes most comparator faults touch nets
        // shared with other macros, as in the paper (72.2 %).
        let lo = comparator_layout(
            crate::comparator::ComparatorConfig::default(),
            LayoutConfig::default(),
        );
        let m2 = lo.layer_area(Layer::Metal2) as f64;
        let bbox = lo.bbox().unwrap();
        let trunk_area = 13.0 * (M2_W as f64) * (bbox.width() as f64);
        assert!(
            trunk_area / m2 > 0.5,
            "trunk share {:.2} too small",
            trunk_area / m2
        );
    }

    #[test]
    fn pins_cover_every_macro_device_terminal() {
        // Every placed device terminal must carry a pin so opens partition.
        let lo = comparator_layout(
            crate::comparator::ComparatorConfig::default(),
            LayoutConfig::default(),
        );
        for t in lo.transistors() {
            for term in [0usize, 1, 2] {
                assert!(
                    lo.pins()
                        .iter()
                        .any(|p| p.device == t.device && p.terminal == term),
                    "missing pin {}:{term}",
                    t.device
                );
            }
        }
    }
}
