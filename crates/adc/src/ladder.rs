//! The dual-ladder resistor string generating the 256 reference voltages.
//!
//! The case-study ADC uses a dual ladder: a low-ohmic *coarse* ladder
//! carries the main bias current between the reference terminals, and
//! high-ohmic *fine* ladders interpolate 16 taps between consecutive
//! coarse nodes. The paper reports 99.8 % of the faults in this macro as
//! current-detectable — shorts across segments change the reference input
//! current directly.

use crate::process::{VREF_HI, VREF_LO};
use dotm_netlist::{Netlist, NodeId, Waveform};

/// Number of coarse segments.
pub const COARSE_SEGMENTS: usize = 16;

/// Fine taps per coarse segment.
pub const FINE_PER_COARSE: usize = 16;

/// Total number of reference taps (`tap1 ..= tap256`).
pub const TAPS: usize = COARSE_SEGMENTS * FINE_PER_COARSE;

/// Coarse unit resistance (Ω) — low-ohmic diffusion for a video-rate
/// flash converter.
pub const R_COARSE: f64 = 20.0;

/// Fine unit resistance (Ω) — poly.
pub const R_FINE: f64 = 200.0;

/// Name of tap `k` (1-based, `1..=TAPS`).
pub fn tap_name(k: usize) -> String {
    format!("tap{k}")
}

/// Builds the dual-ladder macro. Ports: `vrh`, `vrl` and the fine tap
/// nodes; coarse nodes are named `c1..c15`.
pub fn ladder_macro() -> Netlist {
    let mut nl = Netlist::new("ladder");
    let vrl = nl.node("vrl");
    let vrh = nl.node("vrh");
    // Coarse nodes c0 = vrl .. c16 = vrh.
    let mut coarse = vec![vrl];
    for k in 1..COARSE_SEGMENTS {
        coarse.push(nl.node(&format!("c{k}")));
    }
    coarse.push(vrh);
    for k in 0..COARSE_SEGMENTS {
        nl.add_resistor(&format!("RC{k}"), coarse[k], coarse[k + 1], R_COARSE)
            .unwrap();
    }
    // Fine ladders: 16 resistors between c_k and c_{k+1}; their junctions
    // are taps k*16+1 .. k*16+15, and tap (k+1)*16 is the coarse node.
    for k in 0..COARSE_SEGMENTS {
        let mut prev = coarse[k];
        for j in 1..=FINE_PER_COARSE {
            let t = k * FINE_PER_COARSE + j;
            let next = if j == FINE_PER_COARSE {
                coarse[k + 1]
            } else {
                nl.node(&tap_name(t))
            };
            nl.add_resistor(&format!("RF{}_{}", k, j - 1), prev, next, R_FINE)
                .unwrap();
            prev = next;
        }
    }
    nl
}

/// Resolves the node carrying tap `k` (1-based).
///
/// # Panics
/// Panics if `k` is 0 or greater than [`TAPS`].
pub fn tap_node(nl: &Netlist, k: usize) -> NodeId {
    assert!((1..=TAPS).contains(&k), "tap {k} out of range");
    if k % FINE_PER_COARSE == 0 {
        let c = k / FINE_PER_COARSE;
        if c == COARSE_SEGMENTS {
            nl.find_node("vrh").expect("vrh")
        } else {
            nl.find_node(&format!("c{c}")).expect("coarse node")
        }
    } else {
        nl.find_node(&tap_name(k)).expect("fine tap")
    }
}

/// Builds the ladder testbench: macro plus the reference sources `VRH`
/// and `VRL` (their branch currents are the ladder's Iinput measurement).
pub fn ladder_testbench() -> Netlist {
    let mut nl = ladder_macro();
    let vrh = nl.node("vrh");
    let vrl = nl.node("vrl");
    nl.add_vsource("VRH", vrh, Netlist::GROUND, Waveform::dc(VREF_HI))
        .unwrap();
    nl.add_vsource("VRL", vrl, Netlist::GROUND, Waveform::dc(VREF_LO))
        .unwrap();
    nl
}

/// The ideal voltage of tap `k`.
pub fn ideal_tap_voltage(k: usize) -> f64 {
    VREF_LO + (VREF_HI - VREF_LO) * k as f64 / TAPS as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_sim::Simulator;

    #[test]
    fn structure_counts() {
        let nl = ladder_macro();
        // 16 coarse + 256 fine resistors.
        assert_eq!(nl.device_count(), COARSE_SEGMENTS + TAPS);
    }

    #[test]
    fn taps_are_linear() {
        let nl = ladder_testbench();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        for k in [1, 7, 16, 100, 128, 255, 256] {
            let v = op.voltage(tap_node(&nl, k));
            let ideal = ideal_tap_voltage(k);
            assert!(
                (v - ideal).abs() < 2e-3,
                "tap {k}: {v:.4} vs ideal {ideal:.4}"
            );
        }
    }

    #[test]
    fn ladder_current_is_dominated_by_coarse_chain() {
        let nl = ladder_testbench();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let i = op
            .branch_current(nl.device_id("VRH").unwrap())
            .unwrap()
            .abs();
        // Coarse chain: 2 V / 320 Ω = 6.25 mA; fine ladders add ~10 %.
        assert!(i > 5e-3 && i < 8e-3, "ladder current {i}");
    }

    #[test]
    fn tap_short_shifts_reference_current() {
        // The 99.8 %-current-detectable claim in miniature: a short across
        // a coarse segment visibly changes the VRH current.
        let current = |faulty: bool| {
            let mut nl = ladder_testbench();
            if faulty {
                let c4 = nl.find_node("c4").unwrap();
                let c5 = nl.find_node("c5").unwrap();
                nl.insert_bridge("FSHORT", c4, c5, 0.2, None).unwrap();
            }
            let mut sim = Simulator::new(&nl);
            let op = sim.dc_op().unwrap();
            op.branch_current(nl.device_id("VRH").unwrap())
                .unwrap()
                .abs()
        };
        let nominal = current(false);
        let shorted = current(true);
        assert!(
            (shorted - nominal) / nominal > 0.03,
            "short must raise ladder current by >3%: {nominal} -> {shorted}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tap_zero_is_rejected() {
        let nl = ladder_macro();
        let _ = tap_node(&nl, 0);
    }
}
