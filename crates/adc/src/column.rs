//! Transistor-level flash-converter slices: `n` comparator macros against
//! a real ladder section, sharing clock buffers and bias lines — the
//! structure used to validate the behavioural propagation models against
//! full circuit simulation, and the natural testbench for faults that
//! couple *between* comparator instances.

use crate::comparator::{comparator_macro, decision_time, ComparatorConfig};
use crate::process::{BiasValues, Phase, VDD};
use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};
use dotm_sim::TranResult;

/// A built flash slice: the netlist plus the output node names per stage.
#[derive(Debug, Clone)]
pub struct FlashColumn {
    /// The complete testbench netlist.
    pub netlist: Netlist,
    /// `(fa, fb)` node names per comparator stage, lowest reference first.
    pub outputs: Vec<(String, String)>,
    /// Ladder bottom voltage.
    pub v_lo: f64,
    /// Ladder top voltage.
    pub v_hi: f64,
}

impl FlashColumn {
    /// Builds an `n_stages`-comparator column (an `log2(n+1)`-bit flash)
    /// over the reference range `v_lo..v_hi`, with the input held at
    /// `vin`.
    ///
    /// # Panics
    /// Panics if `n_stages == 0` or the range is empty.
    pub fn build(cfg: ComparatorConfig, n_stages: usize, v_lo: f64, v_hi: f64, vin: f64) -> Self {
        assert!(n_stages > 0 && v_hi > v_lo);
        let mut nl = Netlist::new("flash_column");
        let gnd = Netlist::GROUND;
        let vdd = nl.node("vdd");
        let vdd_dig = nl.node("vdd_dig");
        let vin_n = nl.node("vin");
        nl.add_vsource("VDD", vdd, gnd, Waveform::dc(VDD)).unwrap();
        nl.add_vsource("VDDDIG", vdd_dig, gnd, Waveform::dc(VDD))
            .unwrap();
        nl.add_vsource("VIN", vin_n, gnd, Waveform::dc(vin))
            .unwrap();

        // Ladder section: n+1 equal segments.
        let vrl = nl.node("vrl");
        let vrh = nl.node("vrh");
        nl.add_vsource("VRL", vrl, gnd, Waveform::dc(v_lo)).unwrap();
        nl.add_vsource("VRH", vrh, gnd, Waveform::dc(v_hi)).unwrap();
        let mut prev = vrl;
        let mut taps = Vec::new();
        for k in 1..=n_stages + 1 {
            let next = if k == n_stages + 1 {
                vrh
            } else {
                nl.node(&format!("tap{k}"))
            };
            nl.add_resistor(&format!("RL{k}"), prev, next, 50.0)
                .unwrap();
            if k <= n_stages {
                taps.push(next);
            }
            prev = next;
        }

        // Shared bias lines through the generator's output impedance.
        let bias = BiasValues::default();
        for (name, value, rout) in [
            ("VBN", bias.vbn, 6.8e3),
            ("VBNC", bias.vbnc, 6.8e3),
            ("VBP", bias.vbp, 7.5e3),
            ("VAZ", bias.vaz, 8.0e3),
        ] {
            let line = nl.node(&name.to_lowercase());
            let src = nl.node(&format!("{}_src", name.to_lowercase()));
            nl.add_vsource(name, src, gnd, Waveform::dc(value)).unwrap();
            nl.add_resistor(&format!("R{name}"), src, line, rout)
                .unwrap();
        }

        // One set of clock drivers serves the whole column.
        let nmos = |w: f64, l: f64| MosfetParams::nmos_default().sized(w, l);
        let pmos = |w: f64, l: f64| MosfetParams::pmos_default().sized(w, l);
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let n = i + 1;
            let ck_in = nl.node(&format!("ck{n}_in"));
            let ck_mid = nl.node(&format!("ck{n}_b"));
            let ck = nl.node(&format!("ck{n}"));
            nl.add_vsource(&format!("VCK{n}"), ck_in, gnd, phase.waveform())
                .unwrap();
            nl.add_mosfet(
                &format!("MCB{n}AN"),
                ck_mid,
                ck_in,
                gnd,
                gnd,
                MosType::Nmos,
                nmos(2e-6, 0.8e-6),
            )
            .unwrap();
            nl.add_mosfet(
                &format!("MCB{n}AP"),
                ck_mid,
                ck_in,
                vdd_dig,
                vdd_dig,
                MosType::Pmos,
                pmos(4e-6, 0.8e-6),
            )
            .unwrap();
            nl.add_mosfet(
                &format!("MCB{n}BN"),
                ck,
                ck_mid,
                gnd,
                gnd,
                MosType::Nmos,
                nmos(24e-6, 0.8e-6),
            )
            .unwrap();
            nl.add_mosfet(
                &format!("MCB{n}BP"),
                ck,
                ck_mid,
                vdd_dig,
                vdd_dig,
                MosType::Pmos,
                pmos(48e-6, 0.8e-6),
            )
            .unwrap();
        }

        let template = comparator_macro(cfg);
        let mut outputs = Vec::new();
        for (k, &tap) in taps.iter().enumerate() {
            let prefix = format!("u{k}");
            let ck1 = nl.node("ck1");
            let ck2 = nl.node("ck2");
            let ck3 = nl.node("ck3");
            let (vbn, vbnc, vbp, vaz) = (
                nl.node("vbn"),
                nl.node("vbnc"),
                nl.node("vbp"),
                nl.node("vaz"),
            );
            nl.instantiate(
                &template,
                &prefix,
                &[
                    ("vdd", vdd),
                    ("vin", vin_n),
                    ("vref", tap),
                    ("ck1", ck1),
                    ("ck2", ck2),
                    ("ck3", ck3),
                    ("vbn", vbn),
                    ("vbnc", vbnc),
                    ("vbp", vbp),
                    ("vaz", vaz),
                ],
            )
            .expect("instantiation");
            outputs.push((format!("{prefix}.fa"), format!("{prefix}.fb")));
        }
        FlashColumn {
            netlist: nl,
            outputs,
            v_lo,
            v_hi,
        }
    }

    /// Reads the thermometer decisions from a finished transient.
    pub fn read_thermometer(&self, tr: &TranResult) -> Vec<bool> {
        let k = tr.index_at(decision_time());
        self.outputs
            .iter()
            .map(|(fa, fb)| {
                let a = tr.voltage(k, self.netlist.find_node(fa).expect("fa"));
                let b = tr.voltage(k, self.netlist.find_node(fb).expect("fb"));
                a - b > 0.0
            })
            .collect()
    }

    /// The ideal output code for an input voltage.
    pub fn ideal_code(&self, vin: f64) -> usize {
        let n = self.outputs.len();
        let lsb = (self.v_hi - self.v_lo) / (n + 1) as f64;
        (1..=n)
            .filter(|&k| vin > self.v_lo + k as f64 * lsb)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::decision_sim_time;
    use dotm_sim::Simulator;

    fn convert(vin: f64) -> (usize, usize) {
        let col = FlashColumn::build(ComparatorConfig::default(), 3, 2.0, 3.0, vin);
        let mut sim = Simulator::new(&col.netlist);
        let tr = sim.transient(decision_sim_time(), 0.5e-9).unwrap();
        let therm = col.read_thermometer(&tr);
        let height = therm.iter().take_while(|&&t| t).count();
        (height, col.ideal_code(vin))
    }

    #[test]
    fn two_bit_column_matches_behavioural_codes() {
        // 3 comparators, taps at 2.25 / 2.5 / 2.75 V: probe each bin.
        for vin in [2.1, 2.4, 2.6, 2.9] {
            let (silicon, ideal) = convert(vin);
            assert_eq!(silicon, ideal, "vin = {vin}");
        }
    }

    #[test]
    fn column_structure() {
        let col = FlashColumn::build(ComparatorConfig::default(), 3, 2.0, 3.0, 2.5);
        assert_eq!(col.outputs.len(), 3);
        // 3 comparators × ~40 devices plus ladder, bias and clock drivers.
        assert!(col.netlist.device_count() > 120);
        assert!(col.netlist.device("u0.M1").is_some());
        assert!(col.netlist.device("u2.MEQ").is_some());
        // Shared clock line fans out to every instance.
        let ck1 = col.netlist.find_node("ck1").unwrap();
        assert!(col.netlist.connections(ck1).len() > 10);
    }

    #[test]
    fn cross_comparator_fault_disturbs_neighbours() {
        // A short between two neighbouring comparators' latch nodes
        // (physically: adjacent cells in the column) corrupts at least one
        // of the two stages.
        // Pick an input where stages 0 and 1 disagree (between their
        // taps), so tying their latches together must corrupt one of them.
        let vin = 2.4; // taps 2.25 / 2.5 / 2.75 → ideal thermometer [1,0,0]
        let mut col = FlashColumn::build(ComparatorConfig::default(), 3, 2.0, 3.0, vin);
        let la0 = col.netlist.find_node("u0.la").unwrap();
        let la1 = col.netlist.find_node("u1.la").unwrap();
        col.netlist
            .insert_bridge("FCROSS", la0, la1, 0.2, None)
            .unwrap();
        let mut sim = Simulator::new(&col.netlist);
        let tr = sim.transient(decision_sim_time(), 0.5e-9).unwrap();
        let therm = col.read_thermometer(&tr);
        // Fault-free thermometer would be [true, false, false]; the
        // bridge ties both latches together, so one of the two stages is
        // now wrong.
        let clean = [true, false, false];
        assert_ne!(
            therm.as_slice(),
            clean,
            "cross-comparator short must disturb the thermometer"
        );
    }
}
