//! The thermometer→binary decoder.
//!
//! The full decoder is digital and is evaluated behaviourally (see
//! [`crate::behavior`]): a 1→0 transition detector per tap drives a
//! wired-OR ROM. For the decoder macro's defect analysis this module
//! provides a representative transistor-level *column section*: three
//! adjacent ROM rows sharing the eight bitlines. Three rows (with codes
//! chosen so that every bitline is pulled down by some row, left high by
//! some row, and every adjacent bitline pair differs in some row) are the
//! smallest section in which bitline leaks, bitline-to-bitline bridges
//! and detector faults are all observable — the same
//! "simulate boundary-crossing faults with the affected cells" rule the
//! paper applies to the comparator.

use crate::process::VDD;
use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};

/// Decodes a thermometer vector into the output byte through the
/// transition-detect + wired-OR ROM structure of the case-study ADC.
///
/// `therm[i]` is comparator `i+1`'s decision (`vin > ref_{i+1}`). In the
/// fault-free circuit the vector is a prefix of ones and exactly one
/// transition fires. With bubbles (faulty comparators) several ROM rows
/// fire simultaneously and OR together — precisely the mechanism that
/// turns a stuck comparator into missing codes.
pub fn decode_thermometer(therm: &[bool]) -> u8 {
    let n = therm.len();
    let mut out: u8 = 0;
    for i in 0..n {
        let above = if i + 1 < n { therm[i + 1] } else { false };
        if therm[i] && !above {
            let code = (i + 1).min(255) as u8;
            out |= code;
        }
    }
    out
}

/// The ideal thermometer height for a vector (number of leading ones) —
/// used by tests and the behavioural model.
pub fn thermometer_height(therm: &[bool]) -> usize {
    therm.iter().take_while(|&&b| b).count()
}

fn nmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::nmos_default().sized(w, l)
}

fn pmos(w: f64, l: f64) -> MosfetParams {
    MosfetParams::pmos_default().sized(w, l)
}

/// The ROM codes of the three analysed rows: together they pull every
/// bitline low at least once, leave every bitline high at least once, and
/// drive every adjacent bitline pair to opposite values at least once.
pub const SLICE_CODES: [u8; 3] = [0b1011_0100, 0b0100_1011, 0b0101_0101];

/// Number of thermometer inputs of the slice (`t0..t3`).
pub const SLICE_INPUTS: usize = 4;

/// Builds the decoder column section: three transition detectors over the
/// thermometer inputs `t0..t3`, each driving its ROM row on the shared,
/// precharged bitlines `bl0..bl7`.
pub fn decoder_slice_macro(codes: [u8; 3]) -> Netlist {
    let mut nl = Netlist::new("decoder_slice");
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd_dig");
    let pc = nl.node("pc");
    let t: Vec<_> = (0..SLICE_INPUTS)
        .map(|i| nl.node(&format!("t{i}")))
        .collect();
    // Shared bitlines with precharge PMOS.
    for bit in 0..8u8 {
        let bl = nl.node(&format!("bl{bit}"));
        nl.add_mosfet(
            &format!("MDP{bit}"),
            bl,
            pc,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
    }
    // Three rows: row r detects the transition t_{r} & !t_{r+1}
    // (r = 0..2, using thermometer inputs t0..t3).
    for (r, &code) in codes.iter().enumerate() {
        let t_cur = t[r];
        let t_next = t[r + 1];
        let tn_b = nl.node(&format!("tn_b{r}"));
        let e_b = nl.node(&format!("e_b{r}"));
        let e = nl.node(&format!("e{r}"));
        let mid = nl.node(&format!("nmid{r}"));
        nl.add_mosfet(
            &format!("MD1N{r}"),
            tn_b,
            t_next,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(2e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD1P{r}"),
            tn_b,
            t_next,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD2A{r}"),
            mid,
            t_cur,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD2B{r}"),
            e_b,
            tn_b,
            mid,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD2PA{r}"),
            e_b,
            t_cur,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD2PB{r}"),
            e_b,
            tn_b,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(4e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD3N{r}"),
            e,
            e_b,
            gnd,
            gnd,
            MosType::Nmos,
            nmos(3e-6, 0.8e-6),
        )
        .unwrap();
        nl.add_mosfet(
            &format!("MD3P{r}"),
            e,
            e_b,
            vdd,
            vdd,
            MosType::Pmos,
            pmos(6e-6, 0.8e-6),
        )
        .unwrap();
        for bit in 0..8u8 {
            if code & (1 << bit) != 0 {
                let bl = nl.node(&format!("bl{bit}"));
                nl.add_mosfet(
                    &format!("MDR{bit}_{r}"),
                    bl,
                    e,
                    gnd,
                    gnd,
                    MosType::Nmos,
                    nmos(3e-6, 0.8e-6),
                )
                .unwrap();
            }
        }
    }
    nl
}

/// Builds the slice testbench: digital supply, thermometer inputs set to
/// `height` leading ones, precharge released through a realistic driver
/// impedance, and bitline hold capacitance.
pub fn decoder_slice_testbench(codes: [u8; 3], height: usize) -> Netlist {
    let mut nl = decoder_slice_macro(codes);
    let vdd = nl.node("vdd_dig");
    nl.add_vsource("VDDDIG", vdd, Netlist::GROUND, Waveform::dc(VDD))
        .unwrap();
    for i in 0..SLICE_INPUTS {
        let t = nl.node(&format!("t{i}"));
        let level = if i < height { VDD } else { 0.0 };
        nl.add_vsource(&format!("VT{i}"), t, Netlist::GROUND, Waveform::dc(level))
            .unwrap();
    }
    // Precharge released low→high early; the driver has a few hundred
    // ohms of output impedance, so shorts on the pc line actually move it.
    let pc_src = nl.node("pc_src");
    let pc = nl.node("pc");
    nl.add_vsource(
        "VPC",
        pc_src,
        Netlist::GROUND,
        Waveform::pulse(0.0, VDD, 5e-9, 1e-9, 1e-9, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("RPC", pc_src, pc, 250.0).unwrap();
    for bit in 0..8 {
        let bl = nl.node(&format!("bl{bit}"));
        nl.add_capacitor(&format!("CBL{bit}"), bl, Netlist::GROUND, 50e-15)
            .unwrap();
    }
    nl
}

/// The code the slice should produce for a given thermometer height
/// (0 = no row fires, bitlines stay precharged).
pub fn slice_expected_code(codes: [u8; 3], height: usize) -> u8 {
    if (1..=3).contains(&height) {
        codes[height - 1]
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_sim::Simulator;

    #[test]
    fn clean_thermometer_decodes_height() {
        let mut t = vec![false; 256];
        assert_eq!(decode_thermometer(&t), 0);
        for h in [1usize, 5, 128, 255] {
            t.iter_mut().for_each(|b| *b = false);
            t[..h].iter_mut().for_each(|b| *b = true);
            assert_eq!(decode_thermometer(&t) as usize, h, "height {h}");
        }
        t.iter_mut().for_each(|b| *b = true);
        assert_eq!(decode_thermometer(&t), 255); // clamp at full scale
    }

    #[test]
    fn bubble_corrupts_code_by_or() {
        // Height 100 with a stuck-at-1 comparator at position 200:
        // two rows fire (100 and 200) and OR together.
        let mut t = vec![false; 256];
        t[..100].iter_mut().for_each(|b| *b = true);
        t[199] = true;
        let code = decode_thermometer(&t);
        assert_eq!(code, 100u8 | 200u8);
    }

    #[test]
    fn stuck_at_zero_splits_prefix() {
        let mut t = vec![false; 256];
        t[..100].iter_mut().for_each(|b| *b = true);
        t[49] = false;
        assert_eq!(decode_thermometer(&t), 49u8 | 100u8);
        assert_eq!(thermometer_height(&t), 49);
    }

    #[test]
    fn slice_codes_exercise_all_bitlines_and_pairs() {
        let [a, b, c] = SLICE_CODES;
        assert_eq!(a | b | c, 0xFF, "every bit pulled low somewhere");
        assert_eq!(a & b & c, 0x00, "every bit left high somewhere");
        for i in 0..7u8 {
            let differs = [a, b, c]
                .iter()
                .any(|code| ((code >> i) & 1) != ((code >> (i + 1)) & 1));
            assert!(differs, "adjacent pair {i}/{} never differs", i + 1);
        }
    }

    fn read_bitlines(height: usize) -> Vec<f64> {
        let nl = decoder_slice_testbench(SLICE_CODES, height);
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(30e-9, 0.2e-9).unwrap();
        let k = tr.index_at(29e-9);
        (0..8)
            .map(|bit| tr.voltage(k, nl.find_node(&format!("bl{bit}")).unwrap()))
            .collect()
    }

    #[test]
    fn each_row_discharges_its_code() {
        for height in 1..=3usize {
            let code = slice_expected_code(SLICE_CODES, height);
            let bl = read_bitlines(height);
            for (bit, v) in bl.iter().enumerate() {
                if code & (1 << bit) != 0 {
                    assert!(*v < 0.5, "h={height} bit {bit} must discharge, got {v:.2}");
                } else {
                    assert!(
                        *v > VDD - 0.5,
                        "h={height} bit {bit} must stay high, got {v:.2}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_transition_keeps_bitlines_precharged() {
        for height in [0usize, 4] {
            let bl = read_bitlines(height);
            for (bit, v) in bl.iter().enumerate() {
                assert!(
                    *v > VDD - 0.5,
                    "h={height} bit {bit} discharged spuriously ({v:.2})"
                );
            }
        }
    }
}
