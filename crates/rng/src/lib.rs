//! # dotm-rng — in-tree seeded pseudo-random numbers
//!
//! The workspace must build hermetically with no registry access, so the
//! external `rand` crate is replaced by this zero-dependency module: a
//! xoshiro256++ core seeded through SplitMix64, wrapped in a surface that
//! mirrors the small part of `rand`'s API the workspace uses
//! ([`Rng::gen_range`], [`SeedableRng::seed_from_u64`], `rngs::StdRng`).
//!
//! Two properties matter here more than raw statistical strength:
//!
//! * **Determinism** — every Monte-Carlo run in the methodology is keyed
//!   by an explicit `u64` seed, and the stream for a seed is part of the
//!   repo's reproducibility contract (fault populations, good-space
//!   compilations and figure regenerations are all replayable).
//! * **Splittability** — the parallel executor gives each work item its
//!   own statistically independent stream derived from `(seed, stream)`
//!   via [`StdRng::seed_from_stream`], so results are identical no matter
//!   how many threads the loop runs on.
//!
//! xoshiro256++ passes BigCrush and is the generator family `rand`'s own
//! `SmallRng` uses; SplitMix64 is the recommended seeder for it (Blackman
//! & Vigna, "Scrambled linear pseudorandom number generators").

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into the four xoshiro words and to
/// mix `(seed, stream)` pairs for per-item substreams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator — the workspace's standard RNG.
///
/// The name mirrors `rand::rngs::StdRng` so call sites read identically;
/// the streams are of course different from the `rand` crate's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// `rand`-style module alias so `use dotm_rng::rngs::StdRng;` works.
pub mod rngs {
    pub use super::StdRng;
}

impl StdRng {
    /// Derives an independent substream for work item `stream` of a run
    /// keyed by `seed`.
    ///
    /// The pair is mixed through SplitMix64 before state expansion, so
    /// neighbouring streams (0, 1, 2, …) share no detectable structure.
    /// This is what makes parallel Monte-Carlo loops order-independent:
    /// item `i` draws from `seed_from_stream(seed, i)` whether it runs
    /// first, last, or concurrently.
    pub fn seed_from_stream(seed: u64, stream: u64) -> StdRng {
        // Decorrelate (seed, stream) from (seed', stream') pairs that
        // would collide under a plain xor: the stream id goes through its
        // own SplitMix64 round before mixing with the seed.
        let mut stream_key = stream.wrapping_mul(0xa076_1d64_78bd_642f);
        let mut sm = seed ^ splitmix64(&mut stream_key);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // The all-zero state is the one invalid xoshiro state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

/// Core source of random `u64`s (the `rand::RngCore` analogue).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding surface (the `rand::SeedableRng` analogue).
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::seed_from_stream(seed, 0)
    }
}

/// A type that can be drawn uniformly from a range (the
/// `rand::distributions::uniform` analogue, reduced to what the
/// workspace needs).
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: RangeInclusive<Self>,
    ) -> Self;
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, span)` by 128-bit widening multiply (Lemire reduction
/// without the rejection step; the bias is < 2⁻⁶⁴ · span, irrelevant for
/// Monte-Carlo work).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty f64 sample range");
        range.start + (range.end - range.start) * unit_f64(rng)
    }

    #[inline]
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, range: RangeInclusive<f64>) -> f64 {
        let (lo, hi) = range.into_inner();
        assert!(lo <= hi, "empty f64 sample range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty integer sample range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(bounded_u64(rng, span) as $t)
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                range: RangeInclusive<$t>,
            ) -> $t {
                let (lo, hi) = range.into_inner();
                assert!(lo <= hi, "empty integer sample range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i64, u64, i32, u32, usize);

/// A range expression accepted by [`Rng::gen_range`] — both `lo..hi` and
/// `lo..=hi` work, matching the `rand` crate's call syntax.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, self)
    }
}

/// Convenience surface over any [`RngCore`] (the `rand::Rng` analogue).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open (`lo..hi`) or closed (`lo..=hi`)
    /// range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        unit_f64(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_of_each_other() {
        // Stream k of seed s must not equal stream 0 of seed s+k (a
        // naive xor construction fails exactly this).
        let mut a = StdRng::seed_from_stream(10, 5);
        let mut b = StdRng::seed_from_stream(15, 0);
        let mut c = StdRng::seed_from_stream(10, 5);
        assert_ne!(a.next_u64(), b.next_u64());
        assert_eq!(c.next_u64(), StdRng::seed_from_stream(10, 5).next_u64());
    }

    #[test]
    fn float_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let u = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-1_000_000..-999_000);
            assert!((-1_000_000..-999_000).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_and_variance_are_sane() {
        let mut rng = StdRng::seed_from_u64(1995);
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.gen_f64();
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn equidistribution_over_bytes() {
        // Crude chi-square-ish check: low byte of the output is roughly
        // uniform over its 256 bins.
        let mut rng = StdRng::seed_from_u64(1234);
        let mut bins = [0usize; 256];
        let n = 256 * 1000;
        for _ in 0..n {
            bins[(rng.next_u64() & 0xff) as usize] += 1;
        }
        for (b, &count) in bins.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "bin {b} count {count} far from 1000"
            );
        }
    }
}
