//! Spot-defect taxonomy and process statistics.

use dotm_rng::Rng;
use std::fmt;

/// The physical spot-defect types of the reference fabrication process.
///
/// Mirrors the VLASIC defect universe: extra/missing material on each
/// patterned layer, oxide and junction pinholes, and extra (unintended)
/// contacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Extra metal-1 material (bridging).
    ExtraMetal1,
    /// Extra metal-2 material (bridging).
    ExtraMetal2,
    /// Extra polysilicon (bridging; may form a parasitic device over
    /// active).
    ExtraPoly,
    /// Extra active/diffusion material (bridging).
    ExtraActive,
    /// Missing metal-1 material (opens).
    MissingMetal1,
    /// Missing metal-2 material (opens).
    MissingMetal2,
    /// Missing polysilicon (opens; may sever a gate).
    MissingPoly,
    /// Missing active material (opens).
    MissingActive,
    /// Missing contact cut (inter-layer open).
    MissingContact,
    /// Missing via cut (inter-layer open).
    MissingVia,
    /// Pinhole in the gate oxide under a channel.
    GateOxidePinhole,
    /// Pinhole in the field (thick) oxide under a conductor.
    ThickOxidePinhole,
    /// Pinhole in a source/drain junction.
    JunctionPinhole,
    /// Unintended contact where metal-1 crosses poly or active.
    ExtraContact,
}

impl DefectKind {
    /// All defect kinds.
    pub const ALL: [DefectKind; 14] = [
        DefectKind::ExtraMetal1,
        DefectKind::ExtraMetal2,
        DefectKind::ExtraPoly,
        DefectKind::ExtraActive,
        DefectKind::MissingMetal1,
        DefectKind::MissingMetal2,
        DefectKind::MissingPoly,
        DefectKind::MissingActive,
        DefectKind::MissingContact,
        DefectKind::MissingVia,
        DefectKind::GateOxidePinhole,
        DefectKind::ThickOxidePinhole,
        DefectKind::JunctionPinhole,
        DefectKind::ExtraContact,
    ];
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefectKind::ExtraMetal1 => "extra-metal1",
            DefectKind::ExtraMetal2 => "extra-metal2",
            DefectKind::ExtraPoly => "extra-poly",
            DefectKind::ExtraActive => "extra-active",
            DefectKind::MissingMetal1 => "missing-metal1",
            DefectKind::MissingMetal2 => "missing-metal2",
            DefectKind::MissingPoly => "missing-poly",
            DefectKind::MissingActive => "missing-active",
            DefectKind::MissingContact => "missing-contact",
            DefectKind::MissingVia => "missing-via",
            DefectKind::GateOxidePinhole => "gate-oxide-pinhole",
            DefectKind::ThickOxidePinhole => "thick-oxide-pinhole",
            DefectKind::JunctionPinhole => "junction-pinhole",
            DefectKind::ExtraContact => "extra-contact",
        };
        write!(f, "{s}")
    }
}

/// The `x₀²⁄x³` spot-defect size law used across the yield literature
/// (and by VLASIC): sizes below the resolution limit `x0` do not occur,
/// density falls off with the cube of the size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDistribution {
    /// Minimum (peak) defect size in nm.
    pub x0: i64,
    /// Truncation size in nm.
    pub xmax: i64,
}

impl SizeDistribution {
    /// Samples a defect size via the inverse CDF of `2·x0²/x³` on
    /// `[x0, xmax]`.
    pub fn sample(&self, rng: &mut impl Rng) -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // CDF on the truncated support: F(x) = (1 − x0²/x²)/(1 − x0²/xmax²).
        let x0 = self.x0 as f64;
        let xmax = self.xmax as f64;
        let norm = 1.0 - (x0 * x0) / (xmax * xmax);
        let x = x0 / (1.0 - u * norm).sqrt();
        (x.round() as i64).clamp(self.x0, self.xmax)
    }
}

impl Default for SizeDistribution {
    /// 0.8 µm-era defaults: 0.6 µm resolution limit, 8 µm truncation.
    fn default() -> Self {
        SizeDistribution {
            x0: 600,
            xmax: 8_000,
        }
    }
}

/// Relative defect densities per kind plus the shared size law.
///
/// The defaults encode the paper's observation that "the majority of the
/// spot defects in the fabrication process consist of extra material
/// defects in the metallization steps" — extra metal dominates, missing
/// material is rare, pinholes sit in between.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectStatistics {
    weights: Vec<(DefectKind, f64)>,
    /// Size law shared by the material-defect kinds.
    pub size: SizeDistribution,
}

impl DefectStatistics {
    /// Creates statistics from explicit relative weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or any weight is negative.
    pub fn from_weights(weights: Vec<(DefectKind, f64)>, size: SizeDistribution) -> Self {
        assert!(
            weights.iter().all(|(_, w)| *w >= 0.0),
            "defect weights must be non-negative"
        );
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "at least one defect weight must be positive");
        DefectStatistics { weights, size }
    }

    /// The relative weight of a kind.
    pub fn weight(&self, kind: DefectKind) -> f64 {
        self.weights
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Iterates over `(kind, weight)` pairs.
    pub fn weights(&self) -> impl Iterator<Item = (DefectKind, f64)> + '_ {
        self.weights.iter().copied()
    }

    /// Samples a defect kind according to the weights.
    pub fn sample_kind(&self, rng: &mut impl Rng) -> DefectKind {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0.0..total);
        for (kind, w) in &self.weights {
            if pick < *w {
                return *kind;
            }
            pick -= w;
        }
        self.weights.last().expect("non-empty").0
    }
}

impl Default for DefectStatistics {
    fn default() -> Self {
        DefectStatistics::from_weights(
            vec![
                (DefectKind::ExtraMetal1, 0.34),
                (DefectKind::ExtraMetal2, 0.27),
                (DefectKind::ExtraPoly, 0.14),
                (DefectKind::ExtraActive, 0.04),
                (DefectKind::MissingMetal1, 0.004),
                (DefectKind::MissingMetal2, 0.003),
                (DefectKind::MissingPoly, 0.002),
                (DefectKind::MissingActive, 0.001),
                (DefectKind::MissingContact, 0.002),
                (DefectKind::MissingVia, 0.002),
                (DefectKind::GateOxidePinhole, 0.07),
                (DefectKind::ThickOxidePinhole, 0.022),
                (DefectKind::JunctionPinhole, 0.022),
                (DefectKind::ExtraContact, 0.05),
            ],
            SizeDistribution::default(),
        )
    }
}

/// One sprinkled spot defect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Defect {
    /// Defect type.
    pub kind: DefectKind,
    /// Centre x (nm).
    pub x: i64,
    /// Centre y (nm).
    pub y: i64,
    /// Size (side of the square spot), nm.
    pub size: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_rng::rngs::StdRng;
    use dotm_rng::SeedableRng;

    #[test]
    fn size_distribution_respects_bounds() {
        let d = SizeDistribution::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= d.x0 && s <= d.xmax);
        }
    }

    #[test]
    fn size_distribution_is_small_heavy() {
        let d = SizeDistribution::default();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let small = (0..n).filter(|_| d.sample(&mut rng) < 2 * d.x0).count() as f64 / n as f64;
        // P(x < 2·x0) = (1 − 1/4)/(1 − x0²/xmax²) ≈ 0.754.
        assert!(
            (small - 0.754).abs() < 0.01,
            "P(x < 2x0) = {small}, expected ≈ 0.754"
        );
    }

    #[test]
    fn kind_sampling_tracks_weights() {
        let stats = DefectStatistics::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut extra_m1 = 0usize;
        for _ in 0..n {
            if stats.sample_kind(&mut rng) == DefectKind::ExtraMetal1 {
                extra_m1 += 1;
            }
        }
        let total: f64 = stats.weights().map(|(_, w)| w).sum();
        let expect = stats.weight(DefectKind::ExtraMetal1) / total;
        let got = extra_m1 as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = DefectStatistics::from_weights(
            vec![(DefectKind::ExtraMetal1, -1.0)],
            SizeDistribution::default(),
        );
    }

    #[test]
    fn default_weights_are_metal_dominated() {
        let stats = DefectStatistics::default();
        let extra_metal =
            stats.weight(DefectKind::ExtraMetal1) + stats.weight(DefectKind::ExtraMetal2);
        let missing: f64 = [
            DefectKind::MissingMetal1,
            DefectKind::MissingMetal2,
            DefectKind::MissingPoly,
            DefectKind::MissingActive,
            DefectKind::MissingContact,
            DefectKind::MissingVia,
        ]
        .iter()
        .map(|&k| stats.weight(k))
        .sum();
        assert!(extra_metal > 0.5);
        assert!(missing < 0.02);
    }
}
