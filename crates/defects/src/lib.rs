//! # dotm-defects — a VLASIC-style catastrophic defect simulator
//!
//! Reimplements the role VLASIC (Walker & Director, IEEE TCAD 1986) plays
//! in the paper: spot defects are sprinkled over a cell layout in a
//! Monte-Carlo manner, each defect is classified geometrically, and the
//! resulting circuit-level faults are collapsed into equivalence classes
//! whose multiplicity measures their likelihood.
//!
//! * [`DefectKind`] / [`DefectStatistics`] — the defect universe (extra and
//!   missing material per layer, oxide/junction pinholes, extra contacts)
//!   with relative densities and the classic `x₀²⁄x³` size law
//!   ([`SizeDistribution`]).
//! * [`Sprinkler`] — samples defects over a [`dotm_layout::Layout`] and
//!   extracts faults: bridges, node splits (opens), gate-oxide shorts,
//!   bulk leaks, new and shorted devices ([`FaultEffect`]).
//! * [`collapse`] / [`sprinkle_collapsed`] — fault collapsing into
//!   [`FaultClass`]es, streaming for multi-million-defect runs.
//!
//! ```
//! use dotm_defects::{sprinkle_collapsed, DefectStatistics, Sprinkler};
//! use dotm_layout::{Layer, Layout};
//! let mut lo = Layout::new("pair");
//! let gnd = lo.net("gnd");
//! lo.set_substrate_net(gnd);
//! let a = lo.net("a");
//! let b = lo.net("b");
//! lo.wire_h(a, Layer::Metal1, 0, 50_000, 0, 700);
//! lo.wire_h(b, Layer::Metal1, 0, 50_000, 1_600, 700);
//! let sprinkler = Sprinkler::new(&lo, DefectStatistics::default());
//! let report = sprinkle_collapsed(&sprinkler, 50_000, 1995);
//! // Two long parallel wires: every bridging fault collapses to one class.
//! assert_eq!(report.class_count(), 1);
//! assert!(report.total_faults > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
pub mod critical;
mod fault;
mod kinds;
mod sprinkle;

pub use collapse::{collapse, recount, sprinkle_collapsed, CollapseReport, FaultClass};
pub use fault::{BridgeMedium, Fault, FaultEffect, FaultMechanism, TerminalName};
pub use kinds::{Defect, DefectKind, DefectStatistics, SizeDistribution};
pub use sprinkle::{SprinkleReport, Sprinkler};
