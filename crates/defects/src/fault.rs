//! Circuit-level fault descriptors extracted from defects.

use crate::kinds::Defect;
use std::fmt;

/// The fault taxonomy of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultMechanism {
    /// Bridging short between nets (extra material).
    Short,
    /// Unintended inter-layer contact.
    ExtraContact,
    /// Pinhole through the gate oxide.
    GateOxidePinhole,
    /// Pinhole through a source/drain junction.
    JunctionPinhole,
    /// Pinhole through the field oxide.
    ThickOxidePinhole,
    /// Open (missing material splitting a net).
    Open,
    /// Parasitic transistor created by extra material.
    NewDevice,
    /// Transistor with a destroyed (conducting) channel.
    ShortedDevice,
}

impl FaultMechanism {
    /// All mechanisms in the paper's Table 1 row order.
    pub const ALL: [FaultMechanism; 8] = [
        FaultMechanism::Short,
        FaultMechanism::ExtraContact,
        FaultMechanism::GateOxidePinhole,
        FaultMechanism::JunctionPinhole,
        FaultMechanism::ThickOxidePinhole,
        FaultMechanism::Open,
        FaultMechanism::NewDevice,
        FaultMechanism::ShortedDevice,
    ];
}

impl fmt::Display for FaultMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultMechanism::Short => "short",
            FaultMechanism::ExtraContact => "extra contact",
            FaultMechanism::GateOxidePinhole => "gate oxide pinhole",
            FaultMechanism::JunctionPinhole => "junction pinhole",
            FaultMechanism::ThickOxidePinhole => "thick oxide pinhole",
            FaultMechanism::Open => "open",
            FaultMechanism::NewDevice => "new device",
            FaultMechanism::ShortedDevice => "shorted device",
        };
        write!(f, "{s}")
    }
}

/// The conducting medium of a bridge, which sets its resistance in the
/// paper's fault models (§3.2: 0.2 Ω for metal; higher for poly and
/// diffusion; 2 Ω for extra contacts; 2 kΩ for pinholes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BridgeMedium {
    /// Metal short (either metal layer).
    Metal,
    /// Polysilicon short.
    Poly,
    /// Diffusion short.
    Diffusion,
    /// Extra contact.
    Contact,
    /// Oxide or junction pinhole (2 kΩ).
    Pinhole,
}

/// A device terminal reference by name: `(device, terminal index)` in
/// `dotm_netlist::Device::terminals` order.
pub type TerminalName = (String, usize);

/// The circuit-level effect of a defect.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEffect {
    /// Resistive bridge between two or more nets.
    Bridge {
        /// Bridged net names (≥ 2, sorted).
        nets: Vec<String>,
        /// Medium, which fixes the bridge resistance.
        medium: BridgeMedium,
    },
    /// A net split into ≥ 2 groups of device terminals.
    NodeSplit {
        /// Net that was severed.
        net: String,
        /// Terminal partition: first group is the "main" side.
        groups: Vec<Vec<TerminalName>>,
    },
    /// Gate-oxide pinhole in a device: resistive short from the gate to
    /// the channel/source/drain (worst case chosen at modelling time).
    GateOxide {
        /// Affected MOSFET name.
        device: String,
    },
    /// Destroyed channel: drain–source short.
    DeviceShort {
        /// Affected MOSFET name.
        device: String,
    },
    /// Resistive leak from a net to a bulk rail (junction or thick-oxide
    /// pinhole).
    BulkLeak {
        /// Leaking net.
        net: String,
        /// Bulk rail net (substrate or well).
        bulk: String,
    },
    /// Parasitic transistor interrupting a diffusion net: the net splits
    /// and a new device bridges the two sides.
    NewDevice {
        /// The severed diffusion net.
        net: String,
        /// Terminal partition of the severed net.
        groups: Vec<Vec<TerminalName>>,
        /// Net driving the parasitic gate, or `None` if floating.
        gate: Option<String>,
        /// `true` for an n-channel parasitic (in the substrate).
        n_channel: bool,
    },
}

impl FaultEffect {
    /// Canonical key for fault collapsing: equivalent circuit-level faults
    /// (e.g. shorts between the same node pair) share a key.
    pub fn canonical_key(&self) -> String {
        fn group_key(groups: &[Vec<TerminalName>]) -> String {
            let mut gs: Vec<String> = groups
                .iter()
                .map(|g| {
                    let mut ts: Vec<String> = g.iter().map(|(d, t)| format!("{d}.{t}")).collect();
                    ts.sort();
                    ts.join(",")
                })
                .collect();
            gs.sort();
            gs.join("|")
        }
        match self {
            FaultEffect::Bridge { nets, medium } => {
                format!("bridge:{medium:?}:{}", nets.join("+"))
            }
            FaultEffect::NodeSplit { net, groups } => {
                format!("open:{net}:{}", group_key(groups))
            }
            FaultEffect::GateOxide { device } => format!("gos:{device}"),
            FaultEffect::DeviceShort { device } => format!("dshort:{device}"),
            FaultEffect::BulkLeak { net, bulk } => format!("leak:{net}->{bulk}"),
            FaultEffect::NewDevice {
                net,
                groups,
                gate,
                n_channel,
            } => format!(
                "newdev:{net}:{}:{}:{}",
                group_key(groups),
                gate.as_deref().unwrap_or("~float"),
                if *n_channel { "n" } else { "p" }
            ),
        }
    }
}

/// A defect together with its extracted circuit-level effect.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// The mechanism class (Table 1 row).
    pub mechanism: FaultMechanism,
    /// The circuit-level effect.
    pub effect: FaultEffect,
    /// The defect that caused it.
    pub defect: Defect,
}

impl Fault {
    /// Canonical class key (mechanism + effect key).
    pub fn canonical_key(&self) -> String {
        format!("{:?}#{}", self.mechanism, self.effect.canonical_key())
    }

    /// The net names this fault touches (for the paper's "influences nodes
    /// of only this macro" statistic).
    pub fn touched_nets(&self) -> Vec<&str> {
        match &self.effect {
            FaultEffect::Bridge { nets, .. } => nets.iter().map(String::as_str).collect(),
            FaultEffect::NodeSplit { net, .. } => vec![net.as_str()],
            FaultEffect::GateOxide { .. } | FaultEffect::DeviceShort { .. } => Vec::new(),
            FaultEffect::BulkLeak { net, bulk } => vec![net.as_str(), bulk.as_str()],
            FaultEffect::NewDevice { net, gate, .. } => {
                let mut v = vec![net.as_str()];
                if let Some(g) = gate {
                    v.push(g.as_str());
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::DefectKind;

    fn dummy_defect() -> Defect {
        Defect {
            kind: DefectKind::ExtraMetal1,
            x: 0,
            y: 0,
            size: 1000,
        }
    }

    #[test]
    fn bridge_keys_collapse_same_pairs() {
        let a = FaultEffect::Bridge {
            nets: vec!["clk1".into(), "out".into()],
            medium: BridgeMedium::Metal,
        };
        let b = FaultEffect::Bridge {
            nets: vec!["clk1".into(), "out".into()],
            medium: BridgeMedium::Metal,
        };
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = FaultEffect::Bridge {
            nets: vec!["clk1".into(), "out".into()],
            medium: BridgeMedium::Poly,
        };
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn open_keys_ignore_group_order() {
        let g1 = vec![
            vec![("M1".to_string(), 0usize)],
            vec![("M2".to_string(), 2usize), ("M3".to_string(), 1usize)],
        ];
        let mut g2 = g1.clone();
        g2.reverse();
        g2[0].reverse();
        let a = FaultEffect::NodeSplit {
            net: "n1".into(),
            groups: g1,
        };
        let b = FaultEffect::NodeSplit {
            net: "n1".into(),
            groups: g2,
        };
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn touched_nets_reports_bridges() {
        let f = Fault {
            mechanism: FaultMechanism::Short,
            effect: FaultEffect::Bridge {
                nets: vec!["a".into(), "clk".into()],
                medium: BridgeMedium::Metal,
            },
            defect: dummy_defect(),
        };
        assert_eq!(f.touched_nets(), vec!["a", "clk"]);
    }

    #[test]
    fn canonical_key_includes_mechanism() {
        let f1 = Fault {
            mechanism: FaultMechanism::JunctionPinhole,
            effect: FaultEffect::BulkLeak {
                net: "x".into(),
                bulk: "gnd".into(),
            },
            defect: dummy_defect(),
        };
        let f2 = Fault {
            mechanism: FaultMechanism::ThickOxidePinhole,
            effect: FaultEffect::BulkLeak {
                net: "x".into(),
                bulk: "gnd".into(),
            },
            defect: dummy_defect(),
        };
        assert_ne!(f1.canonical_key(), f2.canonical_key());
    }
}
