//! The Monte-Carlo defect sprinkler: VLASIC's core loop.
//!
//! Defects are sampled (kind, size, position), dropped on the layout, and
//! classified geometrically into circuit-level faults. Most defects land on
//! empty field or inside a single net and cause no fault at all — exactly
//! as in the paper, where 25,000 sprinkled defects yielded a few hundred
//! catastrophic faults.

use crate::fault::{BridgeMedium, Fault, FaultEffect, FaultMechanism, TerminalName};
use crate::kinds::{Defect, DefectKind, DefectStatistics};
use dotm_layout::{connect, Layer, Layout, NetId, Rect, SpatialIndex};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

/// Outcome of a sprinkle run.
#[derive(Debug, Clone)]
pub struct SprinkleReport {
    /// Number of defects sprinkled.
    pub defects: usize,
    /// The faults caused (one per fault-causing defect).
    pub faults: Vec<Fault>,
}

impl SprinkleReport {
    /// Fraction of defects that caused a fault.
    pub fn fault_rate(&self) -> f64 {
        if self.defects == 0 {
            0.0
        } else {
            self.faults.len() as f64 / self.defects as f64
        }
    }
}

/// A defect sprinkler bound to one cell layout.
///
/// ```
/// use dotm_defects::{DefectStatistics, Sprinkler};
/// use dotm_layout::{Layer, Layout};
/// let mut lo = Layout::new("pair");
/// let gnd = lo.net("gnd");
/// lo.set_substrate_net(gnd);
/// let a = lo.net("a");
/// let b = lo.net("b");
/// lo.wire_h(a, Layer::Metal1, 0, 50_000, 0, 700);
/// lo.wire_h(b, Layer::Metal1, 0, 50_000, 1_600, 700);
/// let sprinkler = Sprinkler::new(&lo, DefectStatistics::default());
/// let report = sprinkler.sprinkle(20_000, 42);
/// assert!(!report.faults.is_empty()); // two long parallel wires short often
/// ```
#[derive(Debug)]
pub struct Sprinkler<'a> {
    layout: &'a Layout,
    index: SpatialIndex,
    stats: DefectStatistics,
    area: Rect,
}

impl<'a> Sprinkler<'a> {
    /// Builds a sprinkler (and its spatial index) over a layout.
    ///
    /// # Panics
    /// Panics if the layout is empty.
    pub fn new(layout: &'a Layout, stats: DefectStatistics) -> Self {
        let bbox = layout.bbox().expect("cannot sprinkle an empty layout");
        // Sprinkle over the cell plus half the largest defect size of
        // margin, so edge defects are not under-counted.
        let area = bbox.expanded(stats.size.xmax / 2);
        Sprinkler {
            layout,
            index: SpatialIndex::build(layout),
            stats,
            area,
        }
    }

    /// The layout under test.
    pub fn layout(&self) -> &Layout {
        self.layout
    }

    /// The statistics in force.
    pub fn statistics(&self) -> &DefectStatistics {
        &self.stats
    }

    /// Samples one defect.
    pub fn sample_defect(&self, rng: &mut impl Rng) -> Defect {
        Defect {
            kind: self.stats.sample_kind(rng),
            x: rng.gen_range(self.area.x0..=self.area.x1),
            y: rng.gen_range(self.area.y0..=self.area.y1),
            size: self.stats.size.sample(rng),
        }
    }

    /// Sprinkles `n` defects with a deterministic seed and collects the
    /// resulting faults.
    pub fn sprinkle(&self, n: usize, seed: u64) -> SprinkleReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        for _ in 0..n {
            let defect = self.sample_defect(&mut rng);
            if let Some(fault) = self.classify(&defect) {
                faults.push(fault);
            }
        }
        SprinkleReport { defects: n, faults }
    }

    /// Classifies a single defect into a circuit-level fault, if any.
    pub fn classify(&self, defect: &Defect) -> Option<Fault> {
        let spot = Rect::square(defect.x, defect.y, defect.size);
        match defect.kind {
            DefectKind::ExtraMetal1 => self.extra_material(defect, &spot, Layer::Metal1),
            DefectKind::ExtraMetal2 => self.extra_material(defect, &spot, Layer::Metal2),
            DefectKind::ExtraPoly => self
                .extra_material(defect, &spot, Layer::Poly)
                .or_else(|| self.new_device(defect, &spot)),
            DefectKind::ExtraActive => self.extra_material(defect, &spot, Layer::Active),
            DefectKind::MissingMetal1 => self.missing_material(defect, &spot, Layer::Metal1),
            DefectKind::MissingMetal2 => self.missing_material(defect, &spot, Layer::Metal2),
            DefectKind::MissingPoly => self.missing_material(defect, &spot, Layer::Poly),
            DefectKind::MissingActive => self.missing_material(defect, &spot, Layer::Active),
            DefectKind::MissingContact => self.missing_material(defect, &spot, Layer::Contact),
            DefectKind::MissingVia => self.missing_material(defect, &spot, Layer::Via),
            DefectKind::GateOxidePinhole => self.gate_oxide(defect, &spot),
            DefectKind::ThickOxidePinhole => self.thick_oxide(defect, &spot),
            DefectKind::JunctionPinhole => self.junction(defect, &spot),
            DefectKind::ExtraContact => self.extra_contact(defect, &spot),
        }
    }

    /// Distinct nets with shapes on `layer` touching `spot`.
    fn nets_touching(&self, layer: Layer, spot: &Rect) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .index
            .query(self.layout, layer, spot)
            .into_iter()
            .map(|id| self.layout.shape(id).net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    fn net_names(&self, nets: &[NetId]) -> Vec<String> {
        let mut names: Vec<String> = nets
            .iter()
            .map(|&n| self.layout.net_name(n).to_string())
            .collect();
        names.sort();
        names
    }

    fn extra_material(&self, defect: &Defect, spot: &Rect, layer: Layer) -> Option<Fault> {
        let nets = self.nets_touching(layer, spot);
        if nets.len() < 2 {
            return None;
        }
        let medium = match layer {
            Layer::Metal1 | Layer::Metal2 => BridgeMedium::Metal,
            Layer::Poly => BridgeMedium::Poly,
            Layer::Active => BridgeMedium::Diffusion,
            _ => unreachable!("extra material only on conductor layers"),
        };
        Some(Fault {
            mechanism: FaultMechanism::Short,
            effect: FaultEffect::Bridge {
                nets: self.net_names(&nets),
                medium,
            },
            defect: *defect,
        })
    }

    fn missing_material(&self, defect: &Defect, spot: &Rect, layer: Layer) -> Option<Fault> {
        // Nets with shapes on this layer near the defect; test each for a
        // genuine electrical split (deterministic net order).
        let shapes = if layer.is_cut() {
            // Cuts are removed only when fully covered.
            self.index
                .query(self.layout, layer, spot)
                .into_iter()
                .filter(|&id| spot.contains(&self.layout.shape(id).rect))
                .collect::<Vec<_>>()
        } else {
            self.index.query_overlapping(self.layout, layer, spot)
        };
        let mut nets: Vec<NetId> = shapes
            .into_iter()
            .map(|id| self.layout.shape(id).net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        for net in nets {
            if let Some(partition) = connect::open_partition(self.layout, net, layer, spot) {
                let groups: Vec<Vec<TerminalName>> = partition
                    .groups
                    .iter()
                    .map(|g| g.iter().map(|p| (p.device.clone(), p.terminal)).collect())
                    .collect();
                return Some(Fault {
                    mechanism: FaultMechanism::Open,
                    effect: FaultEffect::NodeSplit {
                        net: self.layout.net_name(net).to_string(),
                        groups,
                    },
                    defect: *defect,
                });
            }
        }
        None
    }

    fn gate_oxide(&self, defect: &Defect, spot: &Rect) -> Option<Fault> {
        let t = self
            .layout
            .transistors()
            .iter()
            .find(|t| t.channel.contains_point(defect.x, defect.y))?;
        if spot.contains(&t.channel) {
            Some(Fault {
                mechanism: FaultMechanism::ShortedDevice,
                effect: FaultEffect::DeviceShort {
                    device: t.device.clone(),
                },
                defect: *defect,
            })
        } else {
            Some(Fault {
                mechanism: FaultMechanism::GateOxidePinhole,
                effect: FaultEffect::GateOxide {
                    device: t.device.clone(),
                },
                defect: *defect,
            })
        }
    }

    fn thick_oxide(&self, defect: &Defect, spot: &Rect) -> Option<Fault> {
        // Field-oxide pinhole: conductor poly over field (not over active)
        // leaks to the bulk underneath.
        let polys = self.nets_touching(Layer::Poly, spot);
        if polys.is_empty() {
            return None;
        }
        if !self
            .index
            .query_overlapping(self.layout, Layer::Active, spot)
            .is_empty()
        {
            return None; // over active: that is gate/junction territory
        }
        if self
            .layout
            .transistors()
            .iter()
            .any(|t| t.channel.overlaps(spot))
        {
            return None; // over a channel: gate-oxide territory
        }
        let bulk = self.bulk_net_at(defect.x, defect.y)?;
        let net = self.layout.net_name(polys[0]).to_string();
        let bulk_name = self.layout.net_name(bulk).to_string();
        if net == bulk_name {
            return None;
        }
        Some(Fault {
            mechanism: FaultMechanism::ThickOxidePinhole,
            effect: FaultEffect::BulkLeak {
                net,
                bulk: bulk_name,
            },
            defect: *defect,
        })
    }

    fn junction(&self, defect: &Defect, spot: &Rect) -> Option<Fault> {
        let actives = self.nets_touching(Layer::Active, spot);
        let net = *actives.first()?;
        let bulk = self.bulk_net_at(defect.x, defect.y)?;
        if net == bulk {
            return None; // substrate/well tap — junction to itself
        }
        Some(Fault {
            mechanism: FaultMechanism::JunctionPinhole,
            effect: FaultEffect::BulkLeak {
                net: self.layout.net_name(net).to_string(),
                bulk: self.layout.net_name(bulk).to_string(),
            },
            defect: *defect,
        })
    }

    fn extra_contact(&self, defect: &Defect, spot: &Rect) -> Option<Fault> {
        let metals = self.nets_touching(Layer::Metal1, spot);
        if metals.is_empty() {
            return None;
        }
        for under in [Layer::Poly, Layer::Active] {
            let unders = self.nets_touching(under, spot);
            for &m in &metals {
                for &u in &unders {
                    if m != u {
                        let nets = self.net_names(&[m, u]);
                        return Some(Fault {
                            mechanism: FaultMechanism::ExtraContact,
                            effect: FaultEffect::Bridge {
                                nets,
                                medium: BridgeMedium::Contact,
                            },
                            defect: *defect,
                        });
                    }
                }
            }
        }
        None
    }

    fn new_device(&self, defect: &Defect, spot: &Rect) -> Option<Fault> {
        // Extra poly spanning a diffusion blocks the S/D implant: the net
        // splits and a parasitic FET bridges the pieces.
        let actives = self
            .index
            .query_overlapping(self.layout, Layer::Active, spot);
        for sid in actives {
            let shape = self.layout.shape(sid);
            if shape.rect.sever(spot).is_some_and(|p| p.len() >= 2) {
                if let Some(partition) =
                    connect::open_partition(self.layout, shape.net, Layer::Active, spot)
                {
                    let groups: Vec<Vec<TerminalName>> = partition
                        .groups
                        .iter()
                        .map(|g| g.iter().map(|p| (p.device.clone(), p.terminal)).collect())
                        .collect();
                    let gate = self
                        .nets_touching(Layer::Poly, spot)
                        .first()
                        .map(|&n| self.layout.net_name(n).to_string());
                    let n_channel = self.well_net_at(defect.x, defect.y).is_none();
                    return Some(Fault {
                        mechanism: FaultMechanism::NewDevice,
                        effect: FaultEffect::NewDevice {
                            net: self.layout.net_name(shape.net).to_string(),
                            groups,
                            gate,
                            n_channel,
                        },
                        defect: *defect,
                    });
                }
            }
        }
        None
    }

    /// The net of the well covering the point, if any.
    fn well_net_at(&self, x: i64, y: i64) -> Option<NetId> {
        let pt = Rect::new(x, y, x, y);
        self.index
            .query(self.layout, Layer::Nwell, &pt)
            .first()
            .map(|&id| self.layout.shape(id).net)
    }

    /// Bulk net at a point: the well net inside a well, else the substrate.
    fn bulk_net_at(&self, x: i64, y: i64) -> Option<NetId> {
        self.well_net_at(x, y)
            .or_else(|| self.layout.substrate_net())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_layout::{ChannelType, Pin, TransistorGeom};

    /// A small cell with two parallel metal1 wires, a transistor, and a
    /// diffusion strip — enough geometry to exercise every defect rule.
    fn test_layout() -> Layout {
        let mut lo = Layout::new("probe");
        let gnd = lo.net("gnd");
        lo.set_substrate_net(gnd);
        let vdd = lo.net("vdd");
        let a = lo.net("a");
        let b = lo.net("b");
        let gate = lo.net("gate");

        // Parallel metal wires 1.6 µm apart.
        lo.wire_h(a, Layer::Metal1, 0, 40_000, 0, 700);
        lo.wire_h(b, Layer::Metal1, 0, 40_000, 1_600, 700);

        // A transistor: active strip for drain (net a) / source (net b)
        // with a poly gate between, channel at x = 10..11 µm, y = 10 µm.
        lo.add_rect(a, Layer::Active, Rect::new(7_000, 9_000, 10_000, 11_000));
        lo.add_rect(b, Layer::Active, Rect::new(11_000, 9_000, 13_000, 11_000));
        lo.wire_v(gate, Layer::Poly, 10_500, 7_000, 13_000, 1_000);
        lo.add_transistor(TransistorGeom {
            device: "M1".into(),
            ty: ChannelType::N,
            channel: Rect::new(10_000, 9_000, 11_000, 11_000),
            gate_net: gate,
            drain_net: a,
            source_net: b,
            bulk_net: gnd,
        });
        lo.add_pin(Pin {
            device: "M1".into(),
            terminal: 0,
            net: a,
            layer: Layer::Active,
            at: Rect::new(7_000, 9_000, 10_000, 11_000),
        });
        lo.add_pin(Pin {
            device: "M1".into(),
            terminal: 2,
            net: b,
            layer: Layer::Active,
            at: Rect::new(11_000, 9_000, 13_000, 11_000),
        });
        // Give nets a and b metal pins at the wire ends so opens partition.
        lo.add_pin(Pin {
            device: "RA".into(),
            terminal: 0,
            net: a,
            layer: Layer::Metal1,
            at: Rect::new(0, -350, 400, 350),
        });
        lo.add_pin(Pin {
            device: "RA".into(),
            terminal: 1,
            net: a,
            layer: Layer::Metal1,
            at: Rect::new(39_600, -350, 40_000, 350),
        });
        // An nwell with a pmos-side diffusion for junction tests.
        lo.add_rect(vdd, Layer::Nwell, Rect::new(20_000, 8_000, 30_000, 14_000));
        lo.add_rect(a, Layer::Active, Rect::new(22_000, 10_000, 25_000, 12_000));
        lo
    }

    fn defect(kind: DefectKind, x: i64, y: i64, size: i64) -> Defect {
        Defect { kind, x, y, size }
    }

    #[test]
    fn extra_metal_bridges_parallel_wires() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        // Size 2.4 µm centred between the wires touches both.
        let f = sp
            .classify(&defect(DefectKind::ExtraMetal1, 20_000, 800, 2_400))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::Short);
        match &f.effect {
            FaultEffect::Bridge { nets, medium } => {
                assert_eq!(nets, &vec!["a".to_string(), "b".to_string()]);
                assert_eq!(*medium, BridgeMedium::Metal);
            }
            other => panic!("expected bridge, got {other:?}"),
        }
    }

    #[test]
    fn small_extra_metal_on_one_wire_is_benign() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        assert!(sp
            .classify(&defect(DefectKind::ExtraMetal1, 20_000, 0, 700))
            .is_none());
    }

    #[test]
    fn missing_metal_opens_wire() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let f = sp
            .classify(&defect(DefectKind::MissingMetal1, 20_000, 0, 1_000))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::Open);
        match &f.effect {
            FaultEffect::NodeSplit { net, groups } => {
                assert_eq!(net, "a");
                assert!(groups.len() >= 2);
                // The two metal pins must land on different sides.
                let side_of = |d: &str, t: usize| {
                    groups
                        .iter()
                        .position(|g| g.iter().any(|(gd, gt)| gd == d && *gt == t))
                        .expect("pin present")
                };
                assert_ne!(side_of("RA", 0), side_of("RA", 1));
            }
            other => panic!("expected node split, got {other:?}"),
        }
    }

    #[test]
    fn small_missing_metal_nibble_is_benign() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        // 0.4 µm defect cannot span the 0.7 µm wire.
        assert!(sp
            .classify(&defect(DefectKind::MissingMetal1, 20_000, 300, 400))
            .is_none());
    }

    #[test]
    fn gate_oxide_pinhole_hits_channel() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let f = sp
            .classify(&defect(DefectKind::GateOxidePinhole, 10_500, 10_000, 600))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::GateOxidePinhole);
        assert_eq!(
            f.effect,
            FaultEffect::GateOxide {
                device: "M1".into()
            }
        );
    }

    #[test]
    fn huge_gate_oxide_defect_shorts_device() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let f = sp
            .classify(&defect(DefectKind::GateOxidePinhole, 10_500, 10_000, 5_000))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::ShortedDevice);
    }

    #[test]
    fn junction_pinhole_leaks_to_substrate_and_well() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        // Drain diffusion over substrate.
        let f = sp
            .classify(&defect(DefectKind::JunctionPinhole, 9_000, 10_000, 600))
            .unwrap();
        assert_eq!(
            f.effect,
            FaultEffect::BulkLeak {
                net: "a".into(),
                bulk: "gnd".into()
            }
        );
        // Diffusion inside the nwell leaks to vdd.
        let f = sp
            .classify(&defect(DefectKind::JunctionPinhole, 23_000, 11_000, 600))
            .unwrap();
        assert_eq!(
            f.effect,
            FaultEffect::BulkLeak {
                net: "a".into(),
                bulk: "vdd".into()
            }
        );
    }

    #[test]
    fn thick_oxide_pinhole_under_field_poly() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        // Poly at y = 7.5 µm runs over field (active starts at 9 µm).
        let f = sp
            .classify(&defect(DefectKind::ThickOxidePinhole, 10_500, 7_500, 600))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::ThickOxidePinhole);
        assert_eq!(
            f.effect,
            FaultEffect::BulkLeak {
                net: "gate".into(),
                bulk: "gnd".into()
            }
        );
        // Over the channel region it is not a thick-oxide site.
        assert!(sp
            .classify(&defect(DefectKind::ThickOxidePinhole, 10_500, 10_000, 600))
            .is_none());
    }

    #[test]
    fn extra_contact_shorts_metal_to_poly() {
        let lo = test_layout();
        let mut lo2 = lo.clone();
        // Run a metal1 wire straight over the poly gate stripe.
        let c = lo2.find_net("a").unwrap();
        lo2.wire_h(c, Layer::Metal1, 9_000, 12_000, 12_500, 700);
        let sp = Sprinkler::new(&lo2, DefectStatistics::default());
        let f = sp
            .classify(&defect(DefectKind::ExtraContact, 10_500, 12_500, 600))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::ExtraContact);
        match &f.effect {
            FaultEffect::Bridge { nets, medium } => {
                assert_eq!(nets, &vec!["a".to_string(), "gate".to_string()]);
                assert_eq!(*medium, BridgeMedium::Contact);
            }
            other => panic!("expected bridge, got {other:?}"),
        }
    }

    #[test]
    fn extra_poly_across_diffusion_creates_new_device() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        // A poly spot spanning the 2 µm-tall drain diffusion at x = 8.5 µm.
        let f = sp
            .classify(&defect(DefectKind::ExtraPoly, 8_500, 10_000, 2_400))
            .unwrap();
        assert_eq!(f.mechanism, FaultMechanism::NewDevice);
        match &f.effect {
            FaultEffect::NewDevice { net, n_channel, .. } => {
                assert_eq!(net, "a");
                assert!(*n_channel);
            }
            other => panic!("expected new device, got {other:?}"),
        }
    }

    #[test]
    fn sprinkle_is_deterministic() {
        let lo = test_layout();
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let r1 = sp.sprinkle(5_000, 7);
        let r2 = sp.sprinkle(5_000, 7);
        assert_eq!(r1.faults.len(), r2.faults.len());
        let r3 = sp.sprinkle(5_000, 8);
        // Different seed, almost surely different fault count.
        assert!(r1.faults.len() != r3.faults.len() || !r1.faults.is_empty());
        assert!(r1.fault_rate() < 0.5, "most defects must be benign");
    }
}
