//! Fault collapsing: equivalent circuit-level faults are merged into
//! classes whose multiplicity measures their likelihood.
//!
//! This is the paper's step between the defect simulator and fault
//! simulation: 226,596 faults from the 10-million-defect comparator run
//! collapsed into 334 classes, so only 334 circuit simulations were needed.

use crate::fault::{Fault, FaultMechanism};
use crate::sprinkle::Sprinkler;
use dotm_rng::rngs::StdRng;
use dotm_rng::SeedableRng;
use std::collections::HashMap;

/// A class of circuit-level-equivalent faults.
#[derive(Debug, Clone)]
pub struct FaultClass {
    /// Canonical key shared by all members.
    pub key: String,
    /// One representative fault (first encountered).
    pub representative: Fault,
    /// Number of collapsed members — the likelihood weight used in every
    /// coverage figure of the paper.
    pub count: usize,
}

impl FaultClass {
    /// Mechanism of the class.
    pub fn mechanism(&self) -> FaultMechanism {
        self.representative.mechanism
    }
}

/// Result of collapsing a fault population.
#[derive(Debug, Clone)]
pub struct CollapseReport {
    /// Defects sprinkled to produce the population.
    pub defects: usize,
    /// Total faults before collapsing.
    pub total_faults: usize,
    /// The classes, sorted by descending count (ties broken by key).
    pub classes: Vec<FaultClass>,
}

impl CollapseReport {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total faults with the given mechanism.
    pub fn faults_of(&self, mechanism: FaultMechanism) -> usize {
        self.classes
            .iter()
            .filter(|c| c.mechanism() == mechanism)
            .map(|c| c.count)
            .sum()
    }

    /// Number of classes with the given mechanism.
    pub fn classes_of(&self, mechanism: FaultMechanism) -> usize {
        self.classes
            .iter()
            .filter(|c| c.mechanism() == mechanism)
            .count()
    }

    /// Percentage of all faults with the given mechanism.
    pub fn fault_pct(&self, mechanism: FaultMechanism) -> f64 {
        if self.total_faults == 0 {
            0.0
        } else {
            100.0 * self.faults_of(mechanism) as f64 / self.total_faults as f64
        }
    }

    /// Percentage of all classes with the given mechanism.
    pub fn class_pct(&self, mechanism: FaultMechanism) -> f64 {
        if self.classes.is_empty() {
            0.0
        } else {
            100.0 * self.classes_of(mechanism) as f64 / self.classes.len() as f64
        }
    }
}

/// Collapses an explicit fault list into classes.
pub fn collapse(defects: usize, faults: Vec<Fault>) -> CollapseReport {
    let total_faults = faults.len();
    let mut map: HashMap<String, FaultClass> = HashMap::new();
    for fault in faults {
        let key = fault.canonical_key();
        map.entry(key.clone())
            .and_modify(|c| c.count += 1)
            .or_insert(FaultClass {
                key,
                representative: fault,
                count: 1,
            });
    }
    let mut classes: Vec<FaultClass> = map.into_values().collect();
    classes.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
    CollapseReport {
        defects,
        total_faults,
        classes,
    }
}

/// Sprinkles `n` defects and collapses on the fly, without materialising
/// the full fault list — this is how the 10-million-defect Table 1 run
/// stays in bounded memory.
pub fn sprinkle_collapsed(sprinkler: &Sprinkler<'_>, n: usize, seed: u64) -> CollapseReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: HashMap<String, FaultClass> = HashMap::new();
    let mut total_faults = 0usize;
    for _ in 0..n {
        let defect = sprinkler.sample_defect(&mut rng);
        if let Some(fault) = sprinkler.classify(&defect) {
            total_faults += 1;
            let key = fault.canonical_key();
            map.entry(key.clone())
                .and_modify(|c| c.count += 1)
                .or_insert(FaultClass {
                    key,
                    representative: fault,
                    count: 1,
                });
        }
    }
    let mut classes: Vec<FaultClass> = map.into_values().collect();
    classes.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
    CollapseReport {
        defects: n,
        total_faults,
        classes,
    }
}

/// Re-counts an existing class set against a fresh, larger sprinkle —
/// the paper's procedure: 334 classes were identified from a 25,000-defect
/// pilot, then a 10-million-defect run "was found to contain 226,596
/// faults" in those classes. Faults whose key is not in `report` are
/// tallied separately as `unmatched`.
pub fn recount(
    sprinkler: &Sprinkler<'_>,
    report: &mut CollapseReport,
    n: usize,
    seed: u64,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<&str, usize> = report
        .classes
        .iter()
        .map(|c| (c.key.as_str(), 0usize))
        .collect();
    let mut unmatched = 0usize;
    for _ in 0..n {
        let defect = sprinkler.sample_defect(&mut rng);
        if let Some(fault) = sprinkler.classify(&defect) {
            let key = fault.canonical_key();
            match counts.get_mut(key.as_str()) {
                Some(c) => *c += 1,
                None => unmatched += 1,
            }
        }
    }
    let counts: HashMap<String, usize> = counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let mut total = 0usize;
    for class in &mut report.classes {
        class.count = counts[class.key.as_str()];
        total += class.count;
    }
    report.defects = n;
    report.total_faults = total;
    report
        .classes
        .sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
    unmatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BridgeMedium, FaultEffect};
    use crate::kinds::{Defect, DefectKind};

    fn bridge(a: &str, b: &str, x: i64) -> Fault {
        Fault {
            mechanism: FaultMechanism::Short,
            effect: FaultEffect::Bridge {
                nets: vec![a.to_string(), b.to_string()],
                medium: BridgeMedium::Metal,
            },
            defect: Defect {
                kind: DefectKind::ExtraMetal1,
                x,
                y: 0,
                size: 1000,
            },
        }
    }

    #[test]
    fn identical_shorts_collapse() {
        let faults = vec![
            bridge("a", "b", 0),
            bridge("a", "b", 500),
            bridge("a", "c", 0),
        ];
        let rep = collapse(100, faults);
        assert_eq!(rep.total_faults, 3);
        assert_eq!(rep.class_count(), 2);
        assert_eq!(rep.classes[0].count, 2); // sorted by count
        assert_eq!(rep.faults_of(FaultMechanism::Short), 3);
        assert_eq!(rep.classes_of(FaultMechanism::Short), 2);
        assert!((rep.fault_pct(FaultMechanism::Short) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_well_behaved() {
        let rep = collapse(0, Vec::new());
        assert_eq!(rep.class_count(), 0);
        assert_eq!(rep.fault_pct(FaultMechanism::Open), 0.0);
        assert_eq!(rep.class_pct(FaultMechanism::Open), 0.0);
    }

    #[test]
    fn ordering_is_deterministic() {
        let faults = vec![bridge("a", "b", 0), bridge("a", "c", 0)];
        let r1 = collapse(10, faults.clone());
        let r2 = collapse(10, faults);
        let k1: Vec<&str> = r1.classes.iter().map(|c| c.key.as_str()).collect();
        let k2: Vec<&str> = r2.classes.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(k1, k2);
    }
}
