//! Analytic critical-area analysis.
//!
//! The Monte-Carlo sprinkler estimates fault likelihoods by sampling; for
//! simple geometries the same quantities have closed forms (Walker's and
//! Maly's critical-area literature). This module computes them — both as
//! an independent cross-check of the sprinkler (asserted in tests) and as
//! the fast path for layout-vs-layout DfT comparisons (critical area is
//! exactly what the paper's bias-line reordering reduces).
//!
//! For a bridging defect of size `x` between two parallel wires with edge
//! separation `s` and common run length `L`, the critical area is
//!
//! ```text
//! A_crit(x) = L · (x − s)        for x > s (and x below overlap limits)
//! ```
//!
//! and the expected fault count for `N` defects sprinkled uniformly over
//! area `A` is `N/A · ∫ A_crit(x)·p(x) dx` with the x₀²⁄x³ size density.

use crate::kinds::SizeDistribution;

/// Expected value of `max(x − s, 0)` under the truncated `2·x0²/x³`
/// density on `[x0, xmax]` — the kernel of every parallel-wire critical
/// area integral.
pub fn expected_excess_over(sep: f64, size: &SizeDistribution) -> f64 {
    let x0 = size.x0 as f64;
    let xmax = size.xmax as f64;
    if sep >= xmax {
        return 0.0;
    }
    let a = sep.max(x0);
    // Normalisation of the truncated density.
    let norm = 1.0 - (x0 * x0) / (xmax * xmax);
    // ∫_a^xmax (x − s) · 2·x0²/x³ dx
    //   = 2·x0² · [ −1/x + s/(2x²) ]_a^xmax
    let anti = |x: f64| -1.0 / x + sep / (2.0 * x * x);
    let integral = 2.0 * x0 * x0 * (anti(xmax) - anti(a));
    // When sep < x0 the lower limit clamps to x0 and the integrand is
    // already (x − s) over the whole support — no extra term needed.
    integral / norm
}

/// Expected number of bridging faults between two parallel wires of
/// common run `length_nm` and edge separation `sep_nm`, when `defects`
/// spot defects of one bridging kind land uniformly on `area_nm2`.
pub fn expected_parallel_wire_bridges(
    length_nm: f64,
    sep_nm: f64,
    size: &SizeDistribution,
    defects: f64,
    area_nm2: f64,
) -> f64 {
    let mean_crit = length_nm * expected_excess_over(sep_nm, size);
    defects * mean_crit / area_nm2
}

/// Relative bridging exposure of an ordered list of parallel trunk wires:
/// the sum over adjacent pairs of `E[max(x − s, 0)]`. Reordering the
/// trunks changes which *nets* are adjacent but not this total; combined
/// with per-pair detectability weights it quantifies a DfT reorder.
pub fn adjacent_pair_exposure(separations_nm: &[f64], size: &SizeDistribution) -> Vec<f64> {
    separations_nm
        .iter()
        .map(|&s| expected_excess_over(s, size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{DefectKind, DefectStatistics};
    use crate::sprinkle::Sprinkler;
    use dotm_layout::{Layer, Layout};

    #[test]
    fn excess_is_zero_beyond_truncation() {
        let size = SizeDistribution::default();
        assert_eq!(expected_excess_over(size.xmax as f64, &size), 0.0);
        assert_eq!(expected_excess_over(1e9, &size), 0.0);
    }

    #[test]
    fn excess_decreases_with_separation() {
        let size = SizeDistribution::default();
        let mut last = f64::INFINITY;
        for s in [0.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 7_000.0] {
            let e = expected_excess_over(s, &size);
            assert!(e < last, "E[excess] must decrease: {e} at s = {s}");
            assert!(e >= 0.0);
            last = e;
        }
    }

    #[test]
    fn closed_form_matches_numeric_integration() {
        let size = SizeDistribution::default();
        for sep in [400.0, 900.0, 2_000.0, 5_000.0] {
            // Numeric: integrate max(x−s,0)·p(x) over the support.
            let x0 = size.x0 as f64;
            let xmax = size.xmax as f64;
            let norm = 1.0 - (x0 * x0) / (xmax * xmax);
            let n = 200_000;
            let mut acc = 0.0;
            for k in 0..n {
                let x = x0 + (xmax - x0) * (k as f64 + 0.5) / n as f64;
                let p = 2.0 * x0 * x0 / (x * x * x) / norm;
                acc += (x - sep).max(0.0) * p * (xmax - x0) / n as f64;
            }
            let closed = expected_excess_over(sep, &size);
            assert!(
                (closed - acc).abs() / acc.max(1e-9) < 1e-3,
                "sep {sep}: closed {closed} vs numeric {acc}"
            );
        }
    }

    #[test]
    fn monte_carlo_sprinkler_matches_critical_area() {
        // Two parallel metal1 wires: the sprinkler's extra-metal1 bridge
        // count must match the analytic expectation within Monte-Carlo
        // noise.
        let length = 200_000i64; // 200 µm
        let width = 700i64;
        let sep = 900i64;
        let mut lo = Layout::new("pair");
        let gnd = lo.net("gnd");
        lo.set_substrate_net(gnd);
        let a = lo.net("a");
        let b = lo.net("b");
        lo.wire_h(a, Layer::Metal1, 0, length, 0, width);
        lo.wire_h(
            b,
            Layer::Metal1,
            0,
            length,
            width / 2 + sep + width / 2,
            width,
        );

        // Extra-metal1 only, so every fault is the bridge of interest.
        let stats = DefectStatistics::from_weights(
            vec![(DefectKind::ExtraMetal1, 1.0)],
            SizeDistribution::default(),
        );
        let sprinkler = Sprinkler::new(&lo, stats.clone());
        let n = 400_000usize;
        let faults = sprinkler.sprinkle(n, 11).faults.len() as f64;

        let bbox = lo.bbox().unwrap().expanded(stats.size.xmax / 2);
        let expected = expected_parallel_wire_bridges(
            length as f64,
            sep as f64,
            &stats.size,
            n as f64,
            bbox.area() as f64,
        );
        let rel = (faults - expected).abs() / expected;
        assert!(
            rel < 0.10,
            "MC {faults} vs analytic {expected:.1} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn wider_spacing_reduces_exposure_vector() {
        let size = SizeDistribution::default();
        let tight = adjacent_pair_exposure(&[600.0, 600.0], &size);
        let loose = adjacent_pair_exposure(&[600.0, 2_000.0], &size);
        assert_eq!(tight.len(), 2);
        assert!(loose[1] < tight[1]);
        assert_eq!(loose[0], tight[0]);
    }
}
