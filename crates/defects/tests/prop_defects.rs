//! Randomised tests on the defect simulator: statistical invariants of
//! the sprinkler and structural invariants of fault collapsing.
//!
//! Formerly proptest; now seeded loops over the in-tree PRNG so the
//! workspace builds hermetically — each case iterates over a block of
//! seeds, which is exactly what the proptest strategies drew.

use dotm_defects::{collapse, sprinkle_collapsed, DefectStatistics, Sprinkler};
use dotm_layout::{Layer, Layout};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

fn two_wire_layout(gap: i64) -> Layout {
    let mut lo = Layout::new("pair");
    let gnd = lo.net("gnd");
    lo.set_substrate_net(gnd);
    let a = lo.net("a");
    let b = lo.net("b");
    lo.wire_h(a, Layer::Metal1, 0, 50_000, 0, 700);
    lo.wire_h(b, Layer::Metal1, 0, 50_000, 700 + gap, 700);
    lo
}

#[test]
fn class_counts_sum_to_total_faults() {
    let mut rng = StdRng::seed_from_u64(0xdef1);
    for _ in 0..16 {
        let seed = rng.gen_range(0u64..500);
        let n = rng.gen_range(1000usize..8000);
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let report = sprinkle_collapsed(&sp, n, seed);
        let sum: usize = report.classes.iter().map(|c| c.count).sum();
        assert_eq!(sum, report.total_faults, "seed {seed} n {n}");
        // Percentages over mechanisms sum to 100 (when any faults exist).
        if report.total_faults > 0 {
            let total: f64 = dotm_defects::FaultMechanism::ALL
                .iter()
                .map(|&m| report.fault_pct(m))
                .sum();
            assert!((total - 100.0).abs() < 1e-9, "seed {seed}: pct sum {total}");
        }
    }
}

#[test]
fn sprinkle_is_seed_deterministic() {
    for seed in 0u64..16 {
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let a = sp.sprinkle(2000, seed);
        let b = sp.sprinkle(2000, seed);
        assert_eq!(a.faults.len(), b.faults.len(), "seed {seed}");
        for (x, y) in a.faults.iter().zip(&b.faults) {
            assert_eq!(x.canonical_key(), y.canonical_key(), "seed {seed}");
        }
    }
}

#[test]
fn wider_gap_means_fewer_bridges() {
    for seed in [0u64, 17, 59, 123, 199] {
        let near = two_wire_layout(700);
        let far = two_wire_layout(4_000);
        let sp_near = Sprinkler::new(&near, DefectStatistics::default());
        let sp_far = Sprinkler::new(&far, DefectStatistics::default());
        let n = 30_000;
        let f_near = sp_near.sprinkle(n, seed).faults.len();
        let f_far = sp_far.sprinkle(n, seed).faults.len();
        // Bridging dominates this layout; the critical area shrinks fast
        // with the gap under the x⁻³ size law.
        assert!(
            f_far * 2 < f_near + 40,
            "seed {seed}: near {f_near} vs far {f_far}"
        );
    }
}

#[test]
fn collapse_is_permutation_invariant() {
    for seed in [3u64, 41, 88, 150, 197] {
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let report = sp.sprinkle(5_000, seed);
        let mut faults = report.faults.clone();
        let c1 = collapse(5_000, faults.clone());
        faults.reverse();
        let c2 = collapse(5_000, faults);
        assert_eq!(c1.class_count(), c2.class_count(), "seed {seed}");
        let k1: Vec<&str> = c1.classes.iter().map(|c| c.key.as_str()).collect();
        let k2: Vec<&str> = c2.classes.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(k1, k2, "seed {seed}");
    }
}
