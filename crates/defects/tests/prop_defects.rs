//! Property-based tests on the defect simulator: statistical invariants
//! of the sprinkler and structural invariants of fault collapsing.

use dotm_defects::{collapse, sprinkle_collapsed, DefectStatistics, Sprinkler};
use dotm_layout::{Layer, Layout};
use proptest::prelude::*;

fn two_wire_layout(gap: i64) -> Layout {
    let mut lo = Layout::new("pair");
    let gnd = lo.net("gnd");
    lo.set_substrate_net(gnd);
    let a = lo.net("a");
    let b = lo.net("b");
    lo.wire_h(a, Layer::Metal1, 0, 50_000, 0, 700);
    lo.wire_h(b, Layer::Metal1, 0, 50_000, 700 + gap, 700);
    lo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn class_counts_sum_to_total_faults(seed in 0u64..500, n in 1000usize..8000) {
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let report = sprinkle_collapsed(&sp, n, seed);
        let sum: usize = report.classes.iter().map(|c| c.count).sum();
        prop_assert_eq!(sum, report.total_faults);
        // Percentages over mechanisms sum to 100 (when any faults exist).
        if report.total_faults > 0 {
            let total: f64 = dotm_defects::FaultMechanism::ALL
                .iter()
                .map(|&m| report.fault_pct(m))
                .sum();
            prop_assert!((total - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sprinkle_is_seed_deterministic(seed in 0u64..500) {
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let a = sp.sprinkle(2000, seed);
        let b = sp.sprinkle(2000, seed);
        prop_assert_eq!(a.faults.len(), b.faults.len());
        for (x, y) in a.faults.iter().zip(&b.faults) {
            prop_assert_eq!(x.canonical_key(), y.canonical_key());
        }
    }

    #[test]
    fn wider_gap_means_fewer_bridges(seed in 0u64..200) {
        let near = two_wire_layout(700);
        let far = two_wire_layout(4_000);
        let sp_near = Sprinkler::new(&near, DefectStatistics::default());
        let sp_far = Sprinkler::new(&far, DefectStatistics::default());
        let n = 30_000;
        let f_near = sp_near.sprinkle(n, seed).faults.len();
        let f_far = sp_far.sprinkle(n, seed).faults.len();
        // Bridging dominates this layout; the critical area shrinks fast
        // with the gap under the x⁻³ size law.
        prop_assert!(
            f_far * 2 < f_near + 40,
            "near {f_near} vs far {f_far}"
        );
    }

    #[test]
    fn collapse_is_permutation_invariant(seed in 0u64..200) {
        let lo = two_wire_layout(900);
        let sp = Sprinkler::new(&lo, DefectStatistics::default());
        let report = sp.sprinkle(5_000, seed);
        let mut faults = report.faults.clone();
        let c1 = collapse(5_000, faults.clone());
        faults.reverse();
        let c2 = collapse(5_000, faults);
        prop_assert_eq!(c1.class_count(), c2.class_count());
        let k1: Vec<&str> = c1.classes.iter().map(|c| c.key.as_str()).collect();
        let k2: Vec<&str> = c2.classes.iter().map(|c| c.key.as_str()).collect();
        prop_assert_eq!(k1, k2);
    }
}
