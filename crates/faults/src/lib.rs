//! # dotm-faults — circuit-level fault models and injection
//!
//! Turns the geometric fault effects extracted by `dotm-defects` into
//! concrete netlist edits, with the parameter set of the paper's §3.2:
//!
//! | fault | model |
//! |---|---|
//! | metal short | 0.2 Ω bridge |
//! | poly short | 20 Ω bridge |
//! | diffusion short | 50 Ω bridge |
//! | extra contact | 2 Ω bridge |
//! | thick-oxide / junction pinhole | 2 kΩ to bulk |
//! | gate-oxide pinhole | 2 kΩ gate→source / gate→drain / gate→channel, worst case kept |
//! | open | node split in two |
//! | new device | minimum-size parasitic MOSFET across the split |
//! | shorted device | low-ohmic drain–source resistor |
//! | non-catastrophic "near miss" | 500 Ω ∥ 1 fF bridge |
//!
//! A fault effect may expand into several *variants* (the three gate-oxide
//! placements); the methodology in `dotm-core` simulates all variants and
//! keeps the worst-case (hardest to detect) signature, exactly as the
//! paper describes.
//!
//! ```
//! use dotm_defects::{BridgeMedium, FaultEffect};
//! use dotm_faults::{Injector, Severity};
//! use dotm_netlist::Netlist;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("cell");
//! let a = nl.node("a");
//! let b = nl.node("b");
//! nl.add_resistor("R1", a, b, 1e4)?;
//! let injector = Injector::default();
//! let effect = FaultEffect::Bridge {
//!     nets: vec!["a".into(), "b".into()],
//!     medium: BridgeMedium::Metal,
//! };
//! assert_eq!(injector.variant_count(&effect), 1);
//! let mut faulty = nl.clone();
//! injector.inject(&mut faulty, &effect, Severity::Catastrophic, 0, "f0")?;
//! assert!(faulty.device("f0.b0").is_some()); // the 0.2 Ω bridge
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dotm_defects::{BridgeMedium, FaultEffect, TerminalName};
use dotm_netlist::{MosType, Netlist, NetlistError, NodeId, TerminalRef};
use std::fmt;

/// Whether a fault is injected with its catastrophic (hard) model or the
/// near-miss non-catastrophic model (500 Ω ∥ 1 fF).
///
/// Per the paper, non-catastrophic variants are evolved only from shorts
/// and extra contacts; the other mechanisms "were already high-ohmic in
/// nature".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Full catastrophic model.
    Catastrophic,
    /// Near-miss resistive/capacitive model.
    NonCatastrophic,
}

/// Resistance/capacitance parameters of the fault models (paper §3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModelParams {
    /// Metal bridge resistance (Ω).
    pub metal_short_ohms: f64,
    /// Polysilicon bridge resistance (Ω).
    pub poly_short_ohms: f64,
    /// Diffusion bridge resistance (Ω).
    pub diff_short_ohms: f64,
    /// Extra-contact resistance (Ω).
    pub extra_contact_ohms: f64,
    /// Pinhole resistance (thick oxide, junction, gate oxide) (Ω).
    pub pinhole_ohms: f64,
    /// Shorted-device drain–source resistance (Ω).
    pub shorted_device_ohms: f64,
    /// Near-miss bridge resistance (Ω).
    pub near_miss_ohms: f64,
    /// Near-miss parallel capacitance (F).
    pub near_miss_farads: f64,
}

impl Default for FaultModelParams {
    fn default() -> Self {
        FaultModelParams {
            metal_short_ohms: 0.2,
            // The paper's poly and diffusion values are illegible in the
            // source scan; these use the sheet-resistance ratios of the
            // reference process (see DESIGN.md).
            poly_short_ohms: 20.0,
            diff_short_ohms: 50.0,
            extra_contact_ohms: 2.0,
            pinhole_ohms: 2_000.0,
            shorted_device_ohms: 100.0,
            near_miss_ohms: 500.0,
            near_miss_farads: 1e-15,
        }
    }
}

/// Errors produced during fault injection.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectError {
    /// The fault references a net with no matching netlist node.
    UnknownNet(String),
    /// The fault references a device not present in the netlist.
    UnknownDevice(String),
    /// The requested variant index is out of range.
    BadVariant {
        /// Requested index.
        index: usize,
        /// Number of variants available.
        available: usize,
    },
    /// The severity does not apply to this effect (non-catastrophic models
    /// exist only for shorts and extra contacts).
    NotApplicable(&'static str),
    /// An underlying netlist edit failed.
    Netlist(NetlistError),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::UnknownNet(net) => write!(f, "no netlist node for net `{net}`"),
            InjectError::UnknownDevice(dev) => write!(f, "no netlist device `{dev}`"),
            InjectError::BadVariant { index, available } => {
                write!(f, "variant {index} out of range (have {available})")
            }
            InjectError::NotApplicable(what) => {
                write!(f, "severity not applicable: {what}")
            }
            InjectError::Netlist(e) => write!(f, "netlist edit failed: {e}"),
        }
    }
}

impl std::error::Error for InjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InjectError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for InjectError {
    fn from(e: NetlistError) -> Self {
        InjectError::Netlist(e)
    }
}

/// Injects fault effects into netlists.
#[derive(Debug, Clone, Default)]
pub struct Injector {
    params: FaultModelParams,
}

impl Injector {
    /// Creates an injector with explicit model parameters.
    pub fn new(params: FaultModelParams) -> Self {
        Injector { params }
    }

    /// The model parameters in force.
    pub fn params(&self) -> &FaultModelParams {
        &self.params
    }

    /// `true` if the paper's non-catastrophic (near-miss) model applies to
    /// this effect: only shorts and extra contacts.
    pub fn supports_non_catastrophic(&self, effect: &FaultEffect) -> bool {
        matches!(
            effect,
            FaultEffect::Bridge {
                medium: BridgeMedium::Metal
                    | BridgeMedium::Poly
                    | BridgeMedium::Diffusion
                    | BridgeMedium::Contact,
                ..
            }
        )
    }

    /// Number of model variants for an effect. Gate-oxide pinholes have
    /// three (gate→source, gate→drain, gate→channel); everything else one.
    pub fn variant_count(&self, effect: &FaultEffect) -> usize {
        match effect {
            FaultEffect::GateOxide { .. } => 3,
            _ => 1,
        }
    }

    /// Human-readable variant names (for reports).
    pub fn variant_name(&self, effect: &FaultEffect, variant: usize) -> &'static str {
        match effect {
            FaultEffect::GateOxide { .. } => match variant {
                0 => "gate-source",
                1 => "gate-drain",
                _ => "gate-channel",
            },
            _ => "model",
        }
    }

    /// Injects variant `variant` of `effect` into `nl`, prefixing all
    /// created devices/nodes with `label`.
    ///
    /// # Errors
    /// See [`InjectError`]. The netlist may be partially edited on error;
    /// inject into a clone when that matters.
    pub fn inject(
        &self,
        nl: &mut Netlist,
        effect: &FaultEffect,
        severity: Severity,
        variant: usize,
        label: &str,
    ) -> Result<(), InjectError> {
        let nv = self.variant_count(effect);
        if variant >= nv {
            return Err(InjectError::BadVariant {
                index: variant,
                available: nv,
            });
        }
        if severity == Severity::NonCatastrophic && !self.supports_non_catastrophic(effect) {
            return Err(InjectError::NotApplicable(
                "non-catastrophic models exist only for shorts and extra contacts",
            ));
        }
        match effect {
            FaultEffect::Bridge { nets, medium } => {
                self.inject_bridge(nl, nets, *medium, severity, label)
            }
            FaultEffect::NodeSplit { net, groups } => self.inject_open(nl, net, groups, label),
            FaultEffect::GateOxide { device } => self.inject_gate_oxide(nl, device, variant, label),
            FaultEffect::DeviceShort { device } => {
                nl.short_device_channel(device, self.params.shorted_device_ohms)
                    .map_err(|e| match e {
                        NetlistError::UnknownDevice(d) => InjectError::UnknownDevice(d),
                        other => InjectError::Netlist(other),
                    })?;
                Ok(())
            }
            FaultEffect::BulkLeak { net, bulk } => {
                let a = self.node(nl, net)?;
                let b = self.node(nl, bulk)?;
                nl.insert_bridge(
                    &format!("{label}.leak"),
                    a,
                    b,
                    self.params.pinhole_ohms,
                    None,
                )?;
                Ok(())
            }
            FaultEffect::NewDevice {
                net,
                groups,
                gate,
                n_channel,
            } => self.inject_new_device(nl, net, groups, gate.as_deref(), *n_channel, label),
        }
    }

    fn node(&self, nl: &mut Netlist, net: &str) -> Result<NodeId, InjectError> {
        nl.find_node(net)
            .ok_or_else(|| InjectError::UnknownNet(net.to_string()))
    }

    fn bridge_ohms(&self, medium: BridgeMedium) -> f64 {
        match medium {
            BridgeMedium::Metal => self.params.metal_short_ohms,
            BridgeMedium::Poly => self.params.poly_short_ohms,
            BridgeMedium::Diffusion => self.params.diff_short_ohms,
            BridgeMedium::Contact => self.params.extra_contact_ohms,
            BridgeMedium::Pinhole => self.params.pinhole_ohms,
        }
    }

    fn inject_bridge(
        &self,
        nl: &mut Netlist,
        nets: &[String],
        medium: BridgeMedium,
        severity: Severity,
        label: &str,
    ) -> Result<(), InjectError> {
        if nets.len() < 2 {
            return Err(InjectError::NotApplicable("bridge needs >= 2 nets"));
        }
        let first = self.node(nl, &nets[0])?;
        for (i, net) in nets.iter().enumerate().skip(1) {
            let other = self.node(nl, net)?;
            match severity {
                Severity::Catastrophic => {
                    nl.insert_bridge(
                        &format!("{label}.b{}", i - 1),
                        first,
                        other,
                        self.bridge_ohms(medium),
                        None,
                    )?;
                }
                Severity::NonCatastrophic => {
                    nl.insert_bridge(
                        &format!("{label}.b{}", i - 1),
                        first,
                        other,
                        self.params.near_miss_ohms,
                        Some(self.params.near_miss_farads),
                    )?;
                }
            }
        }
        Ok(())
    }

    fn resolve_group(
        &self,
        nl: &Netlist,
        group: &[TerminalName],
    ) -> Result<Vec<TerminalRef>, InjectError> {
        group
            .iter()
            .map(|(dev, term)| {
                nl.device_id(dev)
                    .map(|device| TerminalRef {
                        device,
                        terminal: *term,
                    })
                    .ok_or_else(|| InjectError::UnknownDevice(dev.clone()))
            })
            .collect()
    }

    fn inject_open(
        &self,
        nl: &mut Netlist,
        net: &str,
        groups: &[Vec<TerminalName>],
        _label: &str,
    ) -> Result<(), InjectError> {
        if groups.len() < 2 {
            return Err(InjectError::NotApplicable("open needs >= 2 groups"));
        }
        let node = self.node(nl, net)?;
        // The first group keeps the original node; every other group moves
        // to its own fresh node ("splitting the affected node in two
        // parts", generalised to multi-way cuts).
        for group in &groups[1..] {
            let terminals = self.resolve_group(nl, group)?;
            if terminals.is_empty() {
                continue;
            }
            nl.split_node(node, &terminals)?;
        }
        Ok(())
    }

    fn inject_gate_oxide(
        &self,
        nl: &mut Netlist,
        device: &str,
        variant: usize,
        label: &str,
    ) -> Result<(), InjectError> {
        let (d, g, s) = match nl.device(device).map(|dev| &dev.kind) {
            Some(dotm_netlist::DeviceKind::Mosfet { d, g, s, .. }) => (*d, *g, *s),
            Some(_) => {
                return Err(InjectError::NotApplicable(
                    "gate-oxide pinhole applies only to MOSFETs",
                ))
            }
            None => return Err(InjectError::UnknownDevice(device.to_string())),
        };
        let r = self.params.pinhole_ohms;
        match variant {
            0 => {
                nl.insert_bridge(&format!("{label}.gs"), g, s, r, None)?;
            }
            1 => {
                nl.insert_bridge(&format!("{label}.gd"), g, d, r, None)?;
            }
            _ => {
                // Gate-to-channel: the channel midpoint is modelled as the
                // Thevenin midpoint of source and drain — two 2R legs.
                nl.insert_bridge(&format!("{label}.gc_s"), g, s, 2.0 * r, None)?;
                nl.insert_bridge(&format!("{label}.gc_d"), g, d, 2.0 * r, None)?;
            }
        }
        Ok(())
    }

    fn inject_new_device(
        &self,
        nl: &mut Netlist,
        net: &str,
        groups: &[Vec<TerminalName>],
        gate: Option<&str>,
        n_channel: bool,
        label: &str,
    ) -> Result<(), InjectError> {
        if groups.len() < 2 {
            return Err(InjectError::NotApplicable("new device needs a split net"));
        }
        let node = self.node(nl, net)?;
        let gate_node = match gate {
            Some(gn) => self.node(nl, gn)?,
            None => nl.fresh_node(&format!("{label}.floatgate")),
        };
        let (ty, bulk) = if n_channel {
            (MosType::Nmos, Netlist::GROUND)
        } else {
            // Parasitic in a well: bulk is the well rail; the highest
            // supply node if present, else ground.
            let bulk = nl.find_node("vdd").unwrap_or(Netlist::GROUND);
            (MosType::Pmos, bulk)
        };
        for (k, group) in groups.iter().enumerate().skip(1) {
            let terminals = self.resolve_group(nl, group)?;
            if terminals.is_empty() {
                continue;
            }
            let fresh = nl.split_node(node, &terminals)?;
            nl.attach_parasitic_mosfet(
                &format!("{label}.m{}", k - 1),
                node,
                gate_node,
                fresh,
                bulk,
                ty,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_netlist::{MosfetParams, Waveform};
    use dotm_sim::Simulator;

    /// V1 → a —R1— b —R2— gnd plus an NMOS M1 (d=a, g=b, s=gnd).
    fn base() -> Netlist {
        let mut nl = Netlist::new("base");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(5.0))
            .unwrap();
        nl.add_resistor("R1", a, b, 1e4).unwrap();
        nl.add_resistor("R2", b, Netlist::GROUND, 1e4).unwrap();
        nl.add_mosfet(
            "M1",
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            MosfetParams::nmos_default(),
        )
        .unwrap();
        nl
    }

    #[test]
    fn catastrophic_bridge_uses_medium_resistance() {
        let inj = Injector::default();
        for (medium, ohms) in [
            (BridgeMedium::Metal, 0.2),
            (BridgeMedium::Poly, 20.0),
            (BridgeMedium::Diffusion, 50.0),
            (BridgeMedium::Contact, 2.0),
        ] {
            let mut nl = base();
            let effect = FaultEffect::Bridge {
                nets: vec!["a".into(), "b".into()],
                medium,
            };
            inj.inject(&mut nl, &effect, Severity::Catastrophic, 0, "f")
                .unwrap();
            match &nl.device("f.b0").unwrap().kind {
                dotm_netlist::DeviceKind::Resistor { ohms: r, .. } => assert_eq!(*r, ohms),
                other => panic!("expected resistor, got {other:?}"),
            }
        }
    }

    #[test]
    fn near_miss_bridge_is_rc() {
        let inj = Injector::default();
        let mut nl = base();
        let effect = FaultEffect::Bridge {
            nets: vec!["a".into(), "b".into()],
            medium: BridgeMedium::Metal,
        };
        inj.inject(&mut nl, &effect, Severity::NonCatastrophic, 0, "f")
            .unwrap();
        match &nl.device("f.b0").unwrap().kind {
            dotm_netlist::DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 500.0),
            other => panic!("{other:?}"),
        }
        assert!(nl.device("f.b0.c").is_some());
    }

    #[test]
    fn non_catastrophic_rejected_for_opens() {
        let inj = Injector::default();
        let mut nl = base();
        let effect = FaultEffect::NodeSplit {
            net: "b".into(),
            groups: vec![
                vec![("R1".into(), 1)],
                vec![("R2".into(), 0), ("M1".into(), 1)],
            ],
        };
        let err = inj
            .inject(&mut nl, &effect, Severity::NonCatastrophic, 0, "f")
            .unwrap_err();
        assert!(matches!(err, InjectError::NotApplicable(_)));
    }

    #[test]
    fn open_moves_terminals_to_fresh_node() {
        let inj = Injector::default();
        let mut nl = base();
        let effect = FaultEffect::NodeSplit {
            net: "b".into(),
            groups: vec![
                vec![("R1".into(), 1)],
                vec![("R2".into(), 0), ("M1".into(), 1)],
            ],
        };
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 0, "f")
            .unwrap();
        let b = nl.find_node("b").unwrap();
        let r1_b = nl.device("R1").unwrap().terminals()[1];
        let r2_a = nl.device("R2").unwrap().terminals()[0];
        let m1_g = nl.device("M1").unwrap().terminals()[1];
        assert_eq!(r1_b, b);
        assert_ne!(r2_a, b);
        assert_eq!(r2_a, m1_g);
        // Electrical check: with the divider cut and M1's gate floating
        // low via gmin, node a rises to the supply.
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        assert!(op.voltage(nl.find_node("a").unwrap()) > 4.5);
    }

    #[test]
    fn gate_oxide_variants() {
        let inj = Injector::default();
        let effect = FaultEffect::GateOxide {
            device: "M1".into(),
        };
        assert_eq!(inj.variant_count(&effect), 3);
        assert_eq!(inj.variant_name(&effect, 0), "gate-source");
        // gate-source
        let mut nl = base();
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 0, "f")
            .unwrap();
        assert!(nl.device("f.gs").is_some());
        // gate-drain
        let mut nl = base();
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 1, "f")
            .unwrap();
        assert!(nl.device("f.gd").is_some());
        // gate-channel: two 4 kΩ legs
        let mut nl = base();
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 2, "f")
            .unwrap();
        match &nl.device("f.gc_s").unwrap().kind {
            dotm_netlist::DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 4000.0),
            other => panic!("{other:?}"),
        }
        // out-of-range variant
        let mut nl = base();
        assert!(matches!(
            inj.inject(&mut nl, &effect, Severity::Catastrophic, 3, "f"),
            Err(InjectError::BadVariant { .. })
        ));
    }

    #[test]
    fn shorted_device_bridges_channel() {
        let inj = Injector::default();
        let mut nl = base();
        inj.inject(
            &mut nl,
            &FaultEffect::DeviceShort {
                device: "M1".into(),
            },
            Severity::Catastrophic,
            0,
            "f",
        )
        .unwrap();
        assert!(nl.device("M1.dshort").is_some());
        // Electrical check: node a is source-driven, so the short shows up
        // as a large supply current (5 V across ~100 Ω ≈ 50 mA).
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let i = op.branch_current(nl.device_id("V1").unwrap()).unwrap();
        assert!(i.abs() > 0.04, "ivdd = {i}");
    }

    #[test]
    fn bulk_leak_inserts_pinhole_resistor() {
        let inj = Injector::default();
        let mut nl = base();
        inj.inject(
            &mut nl,
            &FaultEffect::BulkLeak {
                net: "a".into(),
                bulk: "nowhere".into(),
            },
            Severity::Catastrophic,
            0,
            "f",
        )
        .unwrap_err(); // unknown bulk net must error
        inj.inject(
            &mut nl,
            &FaultEffect::BulkLeak {
                net: "a".into(),
                bulk: "gnd".into(),
            },
            Severity::Catastrophic,
            0,
            "f",
        )
        .unwrap();
        assert!(nl.device("f.leak").is_some());
    }

    #[test]
    fn new_device_splits_and_bridges() {
        let inj = Injector::default();
        let mut nl = base();
        let effect = FaultEffect::NewDevice {
            net: "b".into(),
            groups: vec![vec![("R1".into(), 1)], vec![("R2".into(), 0)]],
            gate: Some("a".into()),
            n_channel: true,
        };
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 0, "f")
            .unwrap();
        let m = nl.device("f.m0").unwrap();
        match &m.kind {
            dotm_netlist::DeviceKind::Mosfet { ty, .. } => assert_eq!(*ty, MosType::Nmos),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_net_and_device_errors() {
        let inj = Injector::default();
        let mut nl = base();
        let err = inj
            .inject(
                &mut nl,
                &FaultEffect::Bridge {
                    nets: vec!["a".into(), "nope".into()],
                    medium: BridgeMedium::Metal,
                },
                Severity::Catastrophic,
                0,
                "f",
            )
            .unwrap_err();
        assert_eq!(err, InjectError::UnknownNet("nope".into()));
        let err = inj
            .inject(
                &mut nl,
                &FaultEffect::GateOxide {
                    device: "MX".into(),
                },
                Severity::Catastrophic,
                0,
                "f",
            )
            .unwrap_err();
        assert_eq!(err, InjectError::UnknownDevice("MX".into()));
    }

    #[test]
    fn multi_net_bridge_stars_from_first() {
        let inj = Injector::default();
        let mut nl = base();
        let effect = FaultEffect::Bridge {
            nets: vec!["a".into(), "b".into(), "gnd".into()],
            medium: BridgeMedium::Metal,
        };
        inj.inject(&mut nl, &effect, Severity::Catastrophic, 0, "f")
            .unwrap();
        assert!(nl.device("f.b0").is_some());
        assert!(nl.device("f.b1").is_some());
    }
}
