//! Performance benches for the engineering substrate, including the
//! ablations DESIGN.md calls out (spatial index vs linear scan, dense LU,
//! collapsing, simulator throughput, behavioural conversion).
//!
//! Hand-rolled harness (`harness = false`, zero dependencies): each case
//! is warmed up, then timed over enough iterations to fill a fixed
//! budget, and reported as ns/iter with the spread of per-batch means.
//! Run with `cargo bench -p dotm-bench`, or pass a substring filter:
//! `cargo bench -p dotm-bench --bench engine -- sprinkle`.

use dotm_adc::behavior::FlashAdc;
use dotm_adc::comparator::{comparator_testbench, ComparatorConfig, ComparatorStimulus};
use dotm_adc::layouts::{comparator_layout, LayoutConfig};
use dotm_core::MacroHarness;
use dotm_defects::{collapse, DefectStatistics, Sprinkler};
use dotm_layout::{Layer, Rect, ShapeId, SpatialIndex};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};
use dotm_sim::{DenseMatrix, Simulator};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` and prints a criterion-style summary line.
fn bench<R>(filter: &Option<String>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    // Warm-up: run until 50 ms have passed (at least once).
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    loop {
        black_box(f());
        warm_iters += 1;
        if warm_start.elapsed() > Duration::from_millis(50) {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    // Aim for ~10 batches of ~50 ms each.
    let batch_iters = (Duration::from_millis(50).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u32;
    let mut batch_means = Vec::with_capacity(10);
    for _ in 0..10 {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            black_box(f());
        }
        batch_means.push(t0.elapsed().as_nanos() as f64 / batch_iters as f64);
    }
    batch_means.sort_by(|a, b| a.total_cmp(b));
    let median = batch_means[batch_means.len() / 2];
    let lo = batch_means[0];
    let hi = batch_means[batch_means.len() - 1];
    println!(
        "{name:<42} {median:>14.1} ns/iter   [{lo:.1} .. {hi:.1}]  ({batch_iters} iters/batch)"
    );
}

fn bench_dense_lu(filter: &Option<String>) {
    for n in [16usize, 64, 128] {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            let mut rowsum = 0.0;
            for cc in 0..n {
                if r != cc {
                    let v = next();
                    m.set(r, cc, v);
                    rowsum += v.abs();
                }
            }
            m.set(r, r, rowsum + 1.0);
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        bench(filter, &format!("dense_lu/solve_{n}x{n}"), || {
            let mut m = m.clone();
            let mut rhs = rhs.clone();
            assert!(m.solve_in_place(&mut rhs).is_ok());
            rhs
        });
    }
}

fn bench_sprinkle(filter: &Option<String>) {
    let layout = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let mut rng = StdRng::seed_from_u64(7);
    bench(filter, "sprinkle/classify_1k_defects_indexed", || {
        let mut faults = 0usize;
        for _ in 0..1000 {
            let d = sprinkler.sample_defect(&mut rng);
            if sprinkler.classify(&d).is_some() {
                faults += 1;
            }
        }
        faults
    });
    // Ablation: the same bridging query answered by a linear scan over all
    // shapes instead of the grid index.
    let bbox = layout.bbox().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    bench(filter, "sprinkle/bridge_query_linear_scan_1k", || {
        let mut hits = 0usize;
        for _ in 0..1000 {
            let x = rng.gen_range(bbox.x0..=bbox.x1);
            let y = rng.gen_range(bbox.y0..=bbox.y1);
            let spot = Rect::square(x, y, 1200);
            let mut nets: Vec<_> = layout
                .shapes()
                .iter()
                .filter(|s| s.layer == Layer::Metal2 && s.rect.touches(&spot))
                .map(|s| s.net)
                .collect();
            nets.sort_unstable();
            nets.dedup();
            if nets.len() >= 2 {
                hits += 1;
            }
        }
        hits
    });
    let idx = SpatialIndex::build(&layout);
    let mut rng = StdRng::seed_from_u64(7);
    bench(filter, "sprinkle/bridge_query_indexed_1k", || {
        let mut hits = 0usize;
        for _ in 0..1000 {
            let x = rng.gen_range(bbox.x0..=bbox.x1);
            let y = rng.gen_range(bbox.y0..=bbox.y1);
            let spot = Rect::square(x, y, 1200);
            let shapes: Vec<ShapeId> = idx.query(&layout, Layer::Metal2, &spot);
            let mut nets: Vec<_> = shapes.iter().map(|&s| layout.shape(s).net).collect();
            nets.sort_unstable();
            nets.dedup();
            if nets.len() >= 2 {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_collapse(filter: &Option<String>) {
    let layout = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let report = sprinkler.sprinkle(50_000, 3);
    bench(filter, "collapse/collapse_50k_defect_faults", || {
        collapse(50_000, report.faults.clone())
    });
}

fn bench_simulator(filter: &Option<String>) {
    let stim = ComparatorStimulus::dc_offset(2.5, 0.02);
    let nl = comparator_testbench(ComparatorConfig::default(), &stim);
    bench(filter, "simulator/comparator_decision_transient", || {
        let mut sim = Simulator::new(&nl);
        sim.transient(dotm_adc::comparator::decision_sim_time(), 0.25e-9)
            .expect("must converge")
    });
    let ladder = dotm_adc::ladder::ladder_testbench();
    bench(filter, "simulator/ladder_dc_op_273_nodes", || {
        let mut sim = Simulator::new(&ladder);
        sim.dc_op().expect("must converge")
    });
}

fn bench_behavioral_adc(filter: &Option<String>) {
    let adc = FlashAdc::ideal();
    bench(filter, "behavioral_adc/convert_1k_samples", || {
        let mut acc = 0u32;
        for s in 0..1000 {
            let vin = 1.5 + 2.0 * (s as f64) / 999.0;
            acc += adc.convert(vin, s) as u32;
        }
        acc
    });
    bench(filter, "behavioral_adc/missing_code_test_1k", || {
        adc.missing_codes(1000)
    });
}

fn bench_goodspace_measure(filter: &Option<String>) {
    let harness = dotm_core::harnesses::LadderHarness;
    let nl = harness.testbench();
    bench(filter, "macro_measure/ladder_full_measurement", || {
        harness.measure(&nl).expect("must measure")
    });
}

fn main() {
    // `cargo bench -- <substring>` filters cases; flag-style arguments
    // from the cargo invocation are ignored.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    println!("{:<42} {:>14}", "bench", "median");
    bench_dense_lu(&filter);
    bench_sprinkle(&filter);
    bench_collapse(&filter);
    bench_simulator(&filter);
    bench_behavioral_adc(&filter);
    bench_goodspace_measure(&filter);
}
