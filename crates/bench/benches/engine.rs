//! Criterion performance benches for the engineering substrate, including
//! the ablations DESIGN.md calls out (spatial index vs linear scan,
//! dense LU, collapsing, simulator throughput, behavioural conversion).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dotm_adc::behavior::FlashAdc;
use dotm_adc::comparator::{comparator_testbench, ComparatorConfig, ComparatorStimulus};
use dotm_adc::layouts::{comparator_layout, LayoutConfig};
use dotm_core::MacroHarness;
use dotm_defects::{collapse, DefectStatistics, Sprinkler};
use dotm_layout::{Layer, Rect, ShapeId, SpatialIndex};
use dotm_sim::{DenseMatrix, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_dense_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_lu");
    for n in [16usize, 64, 128] {
        group.bench_function(format!("solve_{n}x{n}"), |b| {
            let mut seed = 0x1234_5678_9abc_def0u64;
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed as f64 / u64::MAX as f64) - 0.5
            };
            let mut m = DenseMatrix::zeros(n);
            for r in 0..n {
                let mut rowsum = 0.0;
                for cc in 0..n {
                    if r != cc {
                        let v = next();
                        m.set(r, cc, v);
                        rowsum += v.abs();
                    }
                }
                m.set(r, r, rowsum + 1.0);
            }
            let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            b.iter_batched(
                || (m.clone(), rhs.clone()),
                |(mut m, mut rhs)| {
                    assert!(m.solve_in_place(&mut rhs));
                    rhs
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sprinkle(c: &mut Criterion) {
    let layout = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let mut group = c.benchmark_group("sprinkle");
    group.bench_function("classify_1k_defects_indexed", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut faults = 0usize;
            for _ in 0..1000 {
                let d = sprinkler.sample_defect(&mut rng);
                if sprinkler.classify(&d).is_some() {
                    faults += 1;
                }
            }
            faults
        });
    });
    // Ablation: the same bridging query answered by a linear scan over all
    // shapes instead of the grid index.
    group.bench_function("bridge_query_linear_scan_1k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let bbox = layout.bbox().unwrap();
        b.iter(|| {
            let mut hits = 0usize;
            for _ in 0..1000 {
                let x = rng.gen_range(bbox.x0..=bbox.x1);
                let y = rng.gen_range(bbox.y0..=bbox.y1);
                let spot = Rect::square(x, y, 1200);
                let mut nets: Vec<_> = layout
                    .shapes()
                    .iter()
                    .filter(|s| s.layer == Layer::Metal2 && s.rect.touches(&spot))
                    .map(|s| s.net)
                    .collect();
                nets.sort_unstable();
                nets.dedup();
                if nets.len() >= 2 {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function("bridge_query_indexed_1k", |b| {
        let idx = SpatialIndex::build(&layout);
        let mut rng = StdRng::seed_from_u64(7);
        let bbox = layout.bbox().unwrap();
        b.iter(|| {
            let mut hits = 0usize;
            for _ in 0..1000 {
                let x = rng.gen_range(bbox.x0..=bbox.x1);
                let y = rng.gen_range(bbox.y0..=bbox.y1);
                let spot = Rect::square(x, y, 1200);
                let shapes: Vec<ShapeId> = idx.query(&layout, Layer::Metal2, &spot);
                let mut nets: Vec<_> =
                    shapes.iter().map(|&s| layout.shape(s).net).collect();
                nets.sort_unstable();
                nets.dedup();
                if nets.len() >= 2 {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_collapse(c: &mut Criterion) {
    let layout = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let report = sprinkler.sprinkle(50_000, 3);
    c.bench_function("collapse_50k_defect_faults", |b| {
        b.iter_batched(
            || report.faults.clone(),
            |faults| collapse(50_000, faults),
            BatchSize::SmallInput,
        );
    });
}

fn bench_simulator(c: &mut Criterion) {
    let stim = ComparatorStimulus::dc_offset(2.5, 0.02);
    let nl = comparator_testbench(ComparatorConfig::default(), &stim);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("comparator_decision_transient", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&nl);
            sim.transient(dotm_adc::comparator::decision_sim_time(), 0.25e-9)
                .expect("must converge")
        });
    });
    let ladder = dotm_adc::ladder::ladder_testbench();
    group.bench_function("ladder_dc_op_273_nodes", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&ladder);
            sim.dc_op().expect("must converge")
        });
    });
    group.finish();
}

fn bench_behavioral_adc(c: &mut Criterion) {
    let adc = FlashAdc::ideal();
    let mut group = c.benchmark_group("behavioral_adc");
    group.bench_function("convert_1k_samples", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for s in 0..1000 {
                let vin = 1.5 + 2.0 * (s as f64) / 999.0;
                acc += adc.convert(vin, s) as u32;
            }
            acc
        });
    });
    group.bench_function("missing_code_test_1k", |b| {
        b.iter(|| adc.missing_codes(1000));
    });
    group.finish();
}

fn bench_goodspace_measure(c: &mut Criterion) {
    let harness = dotm_core::harnesses::LadderHarness;
    let nl = harness.testbench();
    let mut group = c.benchmark_group("macro_measure");
    group.sample_size(20);
    group.bench_function("ladder_full_measurement", |b| {
        b.iter(|| harness.measure(&nl).expect("must measure"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_lu,
    bench_sprinkle,
    bench_collapse,
    bench_simulator,
    bench_behavioral_adc,
    bench_goodspace_measure
);
criterion_main!(benches);
