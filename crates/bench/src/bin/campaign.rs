//! The persistent campaign driver: runs all five macro test paths with
//! the on-disk measurement store and a per-macro checkpoint journal, then
//! compiles the global Fig. 4 detectability panels.
//!
//! ```text
//! campaign [--resume]              single-process campaign
//! campaign --shard i/N             one shard worker (classes i*C/N..(i+1)*C/N per macro)
//! campaign --merge [--shards N]    fold N shard segments into the canonical journal/report
//! campaign --workers N             coordinator: spawn N shard workers, re-dispatch, merge
//! campaign --serve ADDR            campaign service: HTTP job API over this store (dotm-serve)
//! ```
//!
//! ## Exit codes
//!
//! The campaign exits with the contract in `dotm_serve::exit` so
//! supervisors (the service, CI scripts) can branch on *codes*, never
//! on stderr text: `0` success, `2` usage, `3` stale/incomplete shard
//! data, `4` I/O, `5` interrupted at a resumable journal point
//! (`DOTM_ABORT_AFTER` or a service cancellation).
//!
//! Knobs (on top of the standard `DOTM_*` pipeline knobs):
//!
//! * `DOTM_STORE_DIR` — store root (default `dotm-store/`). Holds
//!   `meas/` (content-addressed measurement entries, shared across
//!   campaigns whose configuration matches) and `journal/` (one
//!   checkpoint journal per macro, plus per-shard segments).
//! * `--resume` — replay each macro's journaled class prefix instead of
//!   re-evaluating it, then continue. A campaign killed mid-macro and
//!   resumed produces bit-identical reports *and journals* to an
//!   uninterrupted run.
//! * `DOTM_SHARDS` / `DOTM_SHARD` — environment forms of `--shard i/N`
//!   (`DOTM_SHARD=i DOTM_SHARDS=N`) and `--merge --shards N`
//!   (`DOTM_SHARDS=N` alone), for launching workers across hosts
//!   against a shared store tree without touching the command line.
//! * `DOTM_SHARD_RETRIES` — extra dispatch rounds the coordinator runs
//!   for shards whose segments come back missing, short or unsealed
//!   (default 2). Workers always resume their own segment prefix, so a
//!   re-dispatched shard replays what its predecessor completed.
//! * `DOTM_SHARD_ABORT_ONCE` — coordinator test knob: inject
//!   `DOTM_ABORT_AFTER=<n>` into every *first-round* worker, so each
//!   first attempt dies mid-shard and the re-dispatch machinery is
//!   exercised deterministically.
//! * `DOTM_ABORT_AFTER` — abort the campaign (via the in-order class
//!   observer, not a signal) after this many classes, campaign-wide: the
//!   deterministic stand-in for a kill that the resume gate scripts use.
//! * `DOTM_EXPECT_WARM` — `1` asserts the run never touched the solver:
//!   every measurement must come from the store (`computed=0`), at any
//!   `DOTM_THREADS`. Exits non-zero otherwise.
//! * `DOTM_MACROS` — comma-separated macro subset to run (campaign
//!   order is preserved regardless of the list's order; unknown names
//!   are a usage error). Inherited by shard workers, so a subset
//!   campaign shards and merges like the full one.
//! * `DOTM_PROGRESS` — emit one `[progress] macro=<m> class=<d>/<t>`
//!   line to stderr per completed class; the service parses these into
//!   its NDJSON event stream. Stderr only — never a report byte.
//! * `DOTM_TRACE` / `DOTM_TRACE_DIR` — per-phase wall-clock profile on
//!   stderr plus NDJSON and chrome://tracing exports (see the crate
//!   docs). Stdout and every persisted byte stay identical either way.
//!
//! ## Sharded byte-identity
//!
//! A shard worker evaluates only its contiguous class range per macro
//! and checkpoints it into `journal/<macro>.shard-<i>-of-<N>.jnl`. The
//! merge step verifies every segment header and record checksum, folds
//! the ranges in class order and *replays* them through the ordinary
//! pipeline path — so its stdout, `journal/<macro>.jnl` bytes, report
//! fingerprints and solver-accounting totals are identical to a
//! single-process run at any (workers × threads) combination. Mode
//! bookkeeping (worker spawning, per-shard fingerprints, re-dispatch)
//! goes to stderr to keep that contract diffable with `cmp`.
//!
//! The campaign forces `measure_cache = off` and relies on the store's
//! own in-memory overlay instead: the cache's occupancy counters are part
//! of every report fingerprint, and journal-replayed classes perform no
//! lookups — the cache and the journal cannot both be on without
//! breaking the resumed-run ≡ uninterrupted-run bit-identity contract.

use dotm_bench::{
    obs_finish, obs_fold_solver, obs_init, print_global_accounting, rule, standard_config,
};
use dotm_core::harnesses::{
    BiasHarness, ClockgenHarness, ComparatorHarness, DecoderHarness, LadderHarness,
};
use dotm_core::{
    run_macro_path_with_faults_hooked, ClassObserver, ClassOutcome, FanoutObserver, GlobalReport,
    MacroHarness, MacroReport, PathError, PipelineConfig, PipelineHooks, ShardSpec,
};
use dotm_defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use dotm_faults::Severity;
use dotm_serve::exit;
use dotm_store::{
    create_segment, load_journal, load_segment, merge_segments, pipeline_context, segment_path,
    DiskStore, JournalHeader, JournalWriter,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How this invocation participates in the campaign.
enum Mode {
    /// Ordinary single-process campaign (optionally resuming).
    Single { resume: bool },
    /// One shard worker: evaluate `shard.range(classes)` per macro into
    /// a segment file, always resuming the segment's own prefix.
    Worker { shard: ShardSpec },
    /// Fold `shards` sealed segments per macro into the canonical
    /// journal and the standard campaign output.
    Merge { shards: usize },
    /// Spawn `workers` shard subprocesses, re-dispatch incomplete
    /// shards, then merge.
    Coordinator { workers: usize },
    /// Long-lived campaign service: HTTP job API over this store
    /// (`dotm-serve`), running submitted jobs through this same binary.
    Serve { addr: String },
}

fn parse_mode() -> Mode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("campaign: {flag} needs a value");
                std::process::exit(2);
            })
        })
    };
    if let Some(addr) = flag_value("--serve") {
        return Mode::Serve { addr: addr.clone() };
    }
    if let Some(n) = flag_value("--workers") {
        let workers: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("campaign: --workers {n}: expected a positive integer");
            std::process::exit(2);
        });
        if workers == 0 {
            eprintln!("campaign: --workers 0: expected at least one worker");
            std::process::exit(2);
        }
        return Mode::Coordinator { workers };
    }
    if args.iter().any(|a| a == "--merge") {
        let shards = flag_value("--shards")
            .map(|n| {
                n.parse().unwrap_or_else(|_| {
                    eprintln!("campaign: --shards {n}: expected a positive integer");
                    std::process::exit(2);
                })
            })
            .or_else(dotm_core::env::shards)
            .unwrap_or_else(|| {
                eprintln!("campaign: --merge needs --shards N (or DOTM_SHARDS)");
                std::process::exit(2);
            });
        return Mode::Merge { shards };
    }
    if let Some(spec) = flag_value("--shard") {
        let shard = ShardSpec::parse(spec).unwrap_or_else(|e| {
            eprintln!("campaign: --shard {spec}: {e}");
            std::process::exit(2);
        });
        return Mode::Worker { shard };
    }
    match (dotm_core::env::shard(), dotm_core::env::shards()) {
        (Some(index), Some(count)) => {
            let shard = ShardSpec::new(index, count).unwrap_or_else(|e| {
                eprintln!("campaign: DOTM_SHARD/DOTM_SHARDS: {e}");
                std::process::exit(2);
            });
            Mode::Worker { shard }
        }
        (Some(_), None) => {
            eprintln!("campaign: DOTM_SHARD without DOTM_SHARDS");
            std::process::exit(2);
        }
        _ => Mode::Single {
            resume: args.iter().any(|a| a == "--resume"),
        },
    }
}

/// Journals every completed class and injects the deterministic abort.
struct CampaignObserver {
    writer: Mutex<Option<JournalWriter>>,
    /// Classes completed campaign-wide (shared across macros).
    completed: AtomicU64,
    abort_after: Option<u64>,
}

impl ClassObserver for CampaignObserver {
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer
            .as_mut()
            .expect("journal open while classes run")
            .record_class(index, outcomes)
            .expect("journal write must succeed (checkpoint contract)");
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        self.abort_after.map_or(true, |n| done < n)
    }
}

/// Emits one `[progress] macro=<m> class=<done>/<total>` line to stderr
/// per completed class (under `DOTM_PROGRESS`). The campaign service
/// parses these into its NDJSON event stream. Pure side channel: stderr
/// only, never a vote against continuing, never a report byte.
struct ProgressObserver {
    macro_name: String,
    total: usize,
    done: AtomicU64,
}

impl ClassObserver for ProgressObserver {
    fn on_class(&self, _index: usize, _outcomes: &[ClassOutcome]) -> bool {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "[progress] macro={} class={done}/{}",
            self.macro_name, self.total
        );
        true
    }
}

/// One macro's precomputed identity: everything the coordinator, merge
/// and run paths need without re-running the pipeline.
struct MacroPrep {
    collapsed: CollapseReport,
    area: f64,
    header: JournalHeader,
}

fn prepare(harness: &dyn MacroHarness, cfg: &PipelineConfig) -> MacroPrep {
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    let classes = match cfg.max_classes {
        Some(n) => collapsed.class_count().min(n),
        None => collapsed.class_count(),
    };
    MacroPrep {
        collapsed,
        area,
        header: JournalHeader {
            context: pipeline_context(harness, cfg),
            macro_name: harness.name().to_string(),
            classes,
        },
    }
}

fn journal_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("journal")
}

struct MacroRun {
    report: MacroReport,
    counters: dotm_store::StoreCounters,
    seconds: f64,
    /// A structurally valid journal/segment was ignored because its
    /// header disagrees with the current context (a knob changed).
    context_mismatch: bool,
}

/// Runs one macro's journaled, store-backed path. `Ok(None)` means the
/// observer aborted the campaign (the journal keeps the prefix).
fn run_macro(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
    prep: &MacroPrep,
    store_dir: &Path,
    observer: &CampaignObserver,
    mode: &Mode,
) -> std::io::Result<Option<MacroRun>> {
    let store = DiskStore::open(store_dir, prep.header.context)?;
    let jdir = journal_dir(store_dir);
    let journal_path = jdir.join(format!("{}.jnl", harness.name()));

    let mut context_mismatch = false;
    let (completed, writer, shard) = match mode {
        Mode::Single { resume } => {
            let completed = if *resume {
                let state = load_journal(&journal_path, &prep.header);
                context_mismatch = state.context_mismatch;
                if state.prefix_len() > 0 {
                    eprintln!(
                        "[campaign] {}: resuming {} of {} classes from the journal",
                        harness.name(),
                        state.prefix_len(),
                        prep.header.classes,
                    );
                }
                state.completed
            } else {
                Vec::new()
            };
            // The journal is rewritten from scratch either way: replayed
            // classes re-emit byte-identical records, so a resumed
            // journal ends up indistinguishable from an uninterrupted
            // one.
            let writer = JournalWriter::create(&journal_path, &prep.header)?;
            (completed, writer, None)
        }
        Mode::Worker { shard } => {
            // A worker always resumes its own segment: a re-dispatched
            // shard replays its dead predecessor's prefix, and replay is
            // canonical so an intact segment is rewritten byte-for-byte.
            let seg = segment_path(&jdir, harness.name(), *shard);
            let state = load_segment(&seg, &prep.header, *shard);
            context_mismatch = state.context_mismatch;
            if state.prefix_len() > 0 {
                eprintln!(
                    "[campaign] {}: shard {shard} resuming {} of {} classes",
                    harness.name(),
                    state.prefix_len(),
                    shard.range(prep.header.classes).len(),
                );
            }
            let writer = create_segment(&seg, &prep.header, *shard)?;
            (state.completed, writer, Some(*shard))
        }
        Mode::Merge { shards } => {
            let merged = merge_segments(&jdir, &prep.header, *shards);
            context_mismatch = !merged.context_mismatches.is_empty();
            if !merged.is_complete() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: shards {:?} incomplete — re-run those workers before merging",
                        harness.name(),
                        merged.incomplete
                    ),
                ));
            }
            for (i, fp) in merged.shard_fingerprints.iter().enumerate() {
                let fp = fp.expect("complete merge has every shard fingerprint");
                eprintln!(
                    "[campaign] {}: shard {i}/{shards} fingerprint={fp:016x}",
                    harness.name()
                );
            }
            // The merge replays every class through the ordinary path
            // into the canonical whole-macro journal: bytes, fingerprint
            // and accounting land exactly where a single-process run
            // puts them.
            let writer = JournalWriter::create(&journal_path, &prep.header)?;
            (merged.completed, writer, None)
        }
        Mode::Coordinator { .. } => unreachable!("coordinator delegates to Merge"),
        Mode::Serve { .. } => unreachable!("serve mode never runs macros in-process"),
    };

    if context_mismatch {
        println!(
            "  {:<16} journal: context mismatch (ignored)",
            harness.name()
        );
    }

    *observer.writer.lock().unwrap_or_else(|e| e.into_inner()) = Some(writer);

    // Under DOTM_PROGRESS the journal observer gains a stderr sibling
    // through the fanout; both see every class, and only the journal
    // observer ever votes to abort.
    let progress = dotm_core::env::progress().then(|| ProgressObserver {
        macro_name: harness.name().to_string(),
        total: match &shard {
            Some(s) => s.range(prep.header.classes).len(),
            None => prep.header.classes,
        },
        done: AtomicU64::new(0),
    });
    let fanout;
    let class_observer: &dyn ClassObserver = match &progress {
        Some(p) => {
            fanout = FanoutObserver::new(vec![observer, p]);
            &fanout
        }
        None => observer,
    };

    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(class_observer),
        completed,
        shard,
    };
    let t0 = Instant::now();
    match run_macro_path_with_faults_hooked(harness, cfg, &prep.collapsed, prep.area, &hooks) {
        Ok(report) => {
            let writer = observer
                .writer
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("journal still open");
            writer.finish(report.fingerprint())?;
            Ok(Some(MacroRun {
                report,
                counters: store.counters(),
                seconds: t0.elapsed().as_secs_f64(),
                context_mismatch,
            }))
        }
        Err(PathError::Aborted { completed }) => {
            eprintln!(
                "[campaign] {}: aborted after {completed} classes (journal keeps the prefix)",
                harness.name()
            );
            Ok(None)
        }
        Err(e) => panic!("macro path must run: {e}"),
    }
}

fn harnesses() -> Vec<Box<dyn MacroHarness>> {
    vec![
        Box::new(ComparatorHarness::production()),
        Box::new(LadderHarness),
        Box::new(BiasHarness::default()),
        Box::new(ClockgenHarness::default()),
        Box::new(DecoderHarness::default()),
    ]
}

/// Spawns shard workers for `needed`, waits for all, and forwards their
/// stdout/stderr to the coordinator's stderr (worker chatter must never
/// reach the byte-identity-checked stdout).
fn dispatch_round(
    workers: usize,
    needed: &[usize],
    abort_after: Option<u64>,
) -> std::io::Result<()> {
    let exe = std::env::current_exe()?;
    let mut children = Vec::new();
    for &index in needed {
        let mut cmd = Command::new(&exe);
        cmd.arg("--shard")
            .arg(format!("{index}/{workers}"))
            // The worker derives everything else from the inherited
            // environment; the coordinator-only and injection knobs must
            // not leak through.
            .env_remove("DOTM_ABORT_AFTER")
            .env_remove("DOTM_EXPECT_WARM")
            .env_remove("DOTM_SHARD")
            .env_remove("DOTM_SHARDS")
            .env_remove("DOTM_SHARD_ABORT_ONCE")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(n) = abort_after {
            cmd.env("DOTM_ABORT_AFTER", n.to_string());
        }
        children.push((index, cmd.spawn()?));
    }
    for (index, child) in children {
        let out = child.wait_with_output()?;
        for line in String::from_utf8_lossy(&out.stdout)
            .lines()
            .chain(String::from_utf8_lossy(&out.stderr).lines())
        {
            eprintln!("[worker {index}/{workers}] {line}");
        }
        if !out.status.success() {
            // Classified from the code alone (exit-code contract) — the
            // coordinator never string-matches worker stderr.
            let class = exit::classify(out.status.code()).map_or("unknown", |c| c.name());
            eprintln!(
                "[campaign] worker {index}/{workers} exited with {} ({class})",
                out.status
            );
        }
    }
    Ok(())
}

/// Shards whose segment for any macro is missing, short or unsealed.
fn incomplete_shards(preps: &[MacroPrep], store_dir: &Path, workers: usize) -> Vec<usize> {
    let jdir = journal_dir(store_dir);
    let mut needed: Vec<usize> = Vec::new();
    for prep in preps {
        for index in merge_segments(&jdir, &prep.header, workers).incomplete {
            if !needed.contains(&index) {
                needed.push(index);
            }
        }
    }
    needed.sort_unstable();
    needed
}

/// Coordinator loop: dispatch every shard, then re-dispatch whatever
/// came back incomplete (bounded rounds), reaping dead workers' temp
/// files between rounds. Returns whether every shard sealed.
fn coordinate(preps: &[MacroPrep], store_dir: &Path, workers: usize) -> std::io::Result<bool> {
    let retries = dotm_core::env::shard_retries();
    let abort_once = dotm_core::env::shard_abort_once();
    for round in 0..=retries {
        let needed = incomplete_shards(preps, store_dir, workers);
        if needed.is_empty() {
            break;
        }
        // No worker is live between rounds, so staging files left by
        // crashed writers are safe to reap.
        let reaped = dotm_store::reap_temp_files(store_dir)?;
        if reaped > 0 {
            eprintln!("[campaign] reaped {reaped} stale temp files");
        }
        eprintln!(
            "[campaign] round {round}: dispatching {} of {workers} shards: {needed:?}",
            needed.len()
        );
        dispatch_round(workers, &needed, abort_once.filter(|_| round == 0))?;
    }
    Ok(incomplete_shards(preps, store_dir, workers).is_empty())
}

fn main() {
    let trace = obs_init();
    let mode = parse_mode();
    let store_dir = dotm_core::env::store_dir().unwrap_or_else(|| PathBuf::from("dotm-store"));
    let abort_after = dotm_core::env::abort_after();
    let expect_warm = dotm_core::env::expect_warm();

    // Service mode: the binary becomes the job server and runs
    // submitted campaigns by re-spawning itself.
    if let Mode::Serve { addr } = &mode {
        let exe = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("campaign: --serve: cannot locate own binary: {e}");
            std::process::exit(exit::IO);
        });
        let runner = dotm_serve::SubprocessRunner::new(exe, store_dir.clone());
        if let Err(e) = dotm_serve::serve(addr, store_dir, Box::new(runner)) {
            eprintln!("campaign: --serve {addr}: {e}");
            std::process::exit(exit::io_exit_code(&e));
        }
        return;
    }

    let mut cfg = standard_config();
    cfg.measure_cache = false; // see the module docs: the store subsumes it

    let harnesses = match dotm_core::env::macros() {
        Some(selection) => {
            let all = harnesses();
            for name in &selection {
                if !all.iter().any(|h| h.name() == name.as_str()) {
                    eprintln!(
                        "campaign: DOTM_MACROS: unknown macro {name:?} (know: {})",
                        all.iter().map(|h| h.name()).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(exit::USAGE);
                }
            }
            // Campaign order, not request order: the subset must report
            // in the same sequence the full campaign would.
            all.into_iter()
                .filter(|h| selection.iter().any(|n| n.as_str() == h.name()))
                .collect()
        }
        None => harnesses(),
    };

    // Coordinator: drive the workers, then fall through to the merge.
    let mode = match mode {
        Mode::Coordinator { workers } => {
            eprintln!("[campaign] coordinating {workers} shard workers");
            let preps: Vec<MacroPrep> = harnesses
                .iter()
                .map(|h| prepare(h.as_ref(), &cfg))
                .collect();
            let complete = coordinate(&preps, &store_dir, workers).unwrap_or_else(|e| {
                eprintln!("campaign: coordinator: {e}");
                std::process::exit(exit::io_exit_code(&e));
            });
            if !complete {
                eprintln!(
                    "[campaign] shards still incomplete after all retries — \
                     inspect the segments under {}",
                    journal_dir(&store_dir).display()
                );
                std::process::exit(exit::STALE_SHARD);
            }
            Mode::Merge { shards: workers }
        }
        other => other,
    };

    match &mode {
        Mode::Single { resume } => println!(
            "persistent campaign: {} defects/macro, store at {}{}",
            cfg.defects,
            store_dir.display(),
            if *resume { ", resuming" } else { "" }
        ),
        Mode::Worker { shard } => {
            println!(
                "persistent campaign: {} defects/macro, store at {}, shard {shard}",
                cfg.defects,
                store_dir.display(),
            );
        }
        // The merged stdout must be byte-identical to the single-process
        // campaign; the mode announcement goes to stderr.
        Mode::Merge { shards } => {
            eprintln!("[campaign] merging {shards} shard segments");
            println!(
                "persistent campaign: {} defects/macro, store at {}",
                cfg.defects,
                store_dir.display(),
            );
        }
        Mode::Coordinator { .. } => unreachable!("rewritten to Merge above"),
        Mode::Serve { .. } => unreachable!("serve mode returned above"),
    }

    let observer = CampaignObserver {
        writer: Mutex::new(None),
        completed: AtomicU64::new(0),
        abort_after,
    };

    let campaign_span = dotm_obs::span("campaign", "campaign");
    let mut runs: Vec<MacroRun> = Vec::new();
    let mut aborted = false;
    for harness in &harnesses {
        let prep = prepare(harness.as_ref(), &cfg);
        let outcome = run_macro(harness.as_ref(), &cfg, &prep, &store_dir, &observer, &mode)
            .unwrap_or_else(|e| {
                // Incomplete shard segments surface as InvalidData and
                // exit 3; everything else is plain I/O and exits 4.
                eprintln!("campaign: {}: {e}", harness.name());
                std::process::exit(exit::io_exit_code(&e));
            });
        match outcome {
            Some(run) => {
                // Wall-clock goes to stderr: the stdout report is a pure
                // function of (configuration, store state), which is what
                // lets the service's HTTP report gate demand full byte
                // identity with a plain CLI run.
                eprintln!("[campaign] {}: {:.1}s", run.report.name, run.seconds);
                println!(
                    "  {:<16} {:>4} faults / {:>3} classes  \
                     store: loads={} hits={} misses={} computed={} fingerprint={:016x}",
                    run.report.name,
                    run.report.total_faults,
                    run.report.class_count,
                    run.counters.loads,
                    run.counters.hits(),
                    run.counters.misses,
                    run.counters.computed,
                    run.report.fingerprint(),
                );
                runs.push(run);
            }
            None => {
                aborted = true;
                break;
            }
        }
    }

    drop(campaign_span);

    if aborted {
        println!(
            "campaign aborted on request after {} classes — rerun with --resume",
            observer.completed.load(Ordering::Relaxed)
        );
        obs_finish("campaign");
        // Interrupted-at-a-resumable-point is its own exit code so
        // supervisors (the service, the verify gates) can requeue
        // without parsing output.
        std::process::exit(exit::INTERRUPTED);
    }

    let mut totals = dotm_store::StoreCounters::default();
    let mut context_mismatches = 0u64;
    for run in &runs {
        totals.loads += run.counters.loads;
        totals.mem_hits += run.counters.mem_hits;
        totals.disk_hits += run.counters.disk_hits;
        totals.misses += run.counters.misses;
        totals.computed += run.counters.computed;
        totals.write_errors += run.counters.write_errors;
        context_mismatches += u64::from(run.context_mismatch);
    }
    println!(
        "campaign store accounting: loads={} mem_hits={} disk_hits={} misses={} \
         computed={} write_errors={} context_mismatches={} hit_rate={:.1}%",
        totals.loads,
        totals.mem_hits,
        totals.disk_hits,
        totals.misses,
        totals.computed,
        totals.write_errors,
        context_mismatches,
        totals.hit_pct(),
    );

    if let Mode::Worker { shard } = &mode {
        // A worker's partial data cannot feed the global figures; it
        // reports its shard fingerprints (sealed into the segments) and
        // stops here.
        println!(
            "shard {shard} complete: {} macro segments sealed",
            runs.len()
        );
        obs_finish("campaign");
        return;
    }

    // Occupancy is a sorted deterministic walk: the same campaign
    // configuration yields the same line whether the tree was written by
    // one process or by N workers, on any filesystem.
    let occ = dotm_store::occupancy(&store_dir).expect("store directory must be readable");
    println!(
        "campaign store occupancy: entries={} bytes={} name_digest={:016x}",
        occ.entries, occ.bytes, occ.name_digest,
    );

    let global = GlobalReport::new(runs.into_iter().map(|r| r.report).collect());
    println!();
    println!("Fig 4 (from the persistent campaign): global detectability");
    for (label, severity) in [
        ("a — catastrophic", Severity::Catastrophic),
        ("b — non-catastrophic", Severity::NonCatastrophic),
    ] {
        let d = global.detectability(severity);
        println!("({label})");
        println!("  voltage detectable:   {:>5.1}%", d.voltage_pct);
        println!("  current detectable:   {:>5.1}%", d.current_pct);
        println!("  total fault coverage: {:>5.1}%", d.coverage_pct);
    }
    rule(72);
    print_global_accounting(&global);

    if trace {
        for (name, value) in [
            ("store.loads", totals.loads),
            ("store.mem_hits", totals.mem_hits),
            ("store.disk_hits", totals.disk_hits),
            ("store.misses", totals.misses),
            ("store.computed", totals.computed),
            ("store.write_errors", totals.write_errors),
        ] {
            if value > 0 {
                dotm_obs::counter(name, value);
            }
        }
        obs_fold_solver(&global.solver_totals());
    }
    obs_finish("campaign");

    if expect_warm && (totals.computed > 0 || totals.misses > 0) {
        eprintln!(
            "DOTM_EXPECT_WARM: the store was supposed to answer everything, \
             but computed={} misses={}",
            totals.computed, totals.misses
        );
        std::process::exit(1);
    }
}
