//! The persistent campaign driver: runs all five macro test paths with
//! the on-disk measurement store and a per-macro checkpoint journal, then
//! compiles the global Fig. 4 detectability panels.
//!
//! ```text
//! campaign [--resume]
//! ```
//!
//! Knobs (on top of the standard `DOTM_*` pipeline knobs):
//!
//! * `DOTM_STORE_DIR` — store root (default `dotm-store/`). Holds
//!   `meas/` (content-addressed measurement entries, shared across
//!   campaigns whose configuration matches) and `journal/` (one
//!   checkpoint journal per macro).
//! * `--resume` — replay each macro's journaled class prefix instead of
//!   re-evaluating it, then continue. A campaign killed mid-macro and
//!   resumed produces bit-identical reports *and journals* to an
//!   uninterrupted run.
//! * `DOTM_ABORT_AFTER` — abort the campaign (via the in-order class
//!   observer, not a signal) after this many classes, campaign-wide: the
//!   deterministic stand-in for a kill that the resume gate scripts use.
//! * `DOTM_EXPECT_WARM` — `1` asserts the run never touched the solver:
//!   every measurement must come from the store (`computed=0`), at any
//!   `DOTM_THREADS`. Exits non-zero otherwise.
//! * `DOTM_TRACE` / `DOTM_TRACE_DIR` — per-phase wall-clock profile on
//!   stderr plus NDJSON and chrome://tracing exports (see the crate
//!   docs). Stdout and every persisted byte stay identical either way.
//!
//! The campaign forces `measure_cache = off` and relies on the store's
//! own in-memory overlay instead: the cache's occupancy counters are part
//! of every report fingerprint, and journal-replayed classes perform no
//! lookups — the cache and the journal cannot both be on without
//! breaking the resumed-run ≡ uninterrupted-run bit-identity contract.

use dotm_bench::{
    obs_finish, obs_fold_solver, obs_init, print_global_accounting, rule, standard_config,
};
use dotm_core::harnesses::{
    BiasHarness, ClockgenHarness, ComparatorHarness, DecoderHarness, LadderHarness,
};
use dotm_core::{
    run_macro_path_with_faults_hooked, ClassObserver, ClassOutcome, GlobalReport, MacroHarness,
    MacroReport, PathError, PipelineConfig, PipelineHooks,
};
use dotm_defects::{sprinkle_collapsed, Sprinkler};
use dotm_faults::Severity;
use dotm_store::{load_journal, pipeline_context, DiskStore, JournalHeader, JournalWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Journals every completed class and injects the deterministic abort.
struct CampaignObserver {
    writer: Mutex<Option<JournalWriter>>,
    /// Classes completed campaign-wide (shared across macros).
    completed: AtomicU64,
    abort_after: Option<u64>,
}

impl ClassObserver for CampaignObserver {
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        writer
            .as_mut()
            .expect("journal open while classes run")
            .record_class(index, outcomes)
            .expect("journal write must succeed (checkpoint contract)");
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        self.abort_after.map_or(true, |n| done < n)
    }
}

struct MacroRun {
    report: MacroReport,
    counters: dotm_store::StoreCounters,
    seconds: f64,
}

/// Runs one macro's journaled, store-backed path. `Ok(None)` means the
/// observer aborted the campaign (the journal keeps the prefix).
fn run_macro(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
    store_dir: &Path,
    resume: bool,
    observer: &CampaignObserver,
) -> std::io::Result<Option<MacroRun>> {
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    let classes = match cfg.max_classes {
        Some(n) => collapsed.class_count().min(n),
        None => collapsed.class_count(),
    };

    let context = pipeline_context(harness, cfg);
    let store = DiskStore::open(store_dir, context)?;
    let header = JournalHeader {
        context,
        macro_name: harness.name().to_string(),
        classes,
    };
    let journal_path = store_dir
        .join("journal")
        .join(format!("{}.jnl", harness.name()));

    let completed = if resume {
        let state = load_journal(&journal_path, &header);
        if state.prefix_len() > 0 {
            eprintln!(
                "[campaign] {}: resuming {} of {classes} classes from the journal",
                harness.name(),
                state.prefix_len(),
            );
        }
        state.completed
    } else {
        Vec::new()
    };

    // The journal is rewritten from scratch either way: replayed classes
    // re-emit byte-identical records, so a resumed journal ends up
    // indistinguishable from an uninterrupted one.
    *observer.writer.lock().unwrap_or_else(|e| e.into_inner()) =
        Some(JournalWriter::create(&journal_path, &header)?);

    let hooks = PipelineHooks {
        store: Some(&store),
        observer: Some(observer),
        completed,
    };
    let t0 = Instant::now();
    match run_macro_path_with_faults_hooked(harness, cfg, &collapsed, area, &hooks) {
        Ok(report) => {
            let writer = observer
                .writer
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("journal still open");
            writer.finish(report.fingerprint())?;
            Ok(Some(MacroRun {
                report,
                counters: store.counters(),
                seconds: t0.elapsed().as_secs_f64(),
            }))
        }
        Err(PathError::Aborted { completed }) => {
            eprintln!(
                "[campaign] {}: aborted after {completed} classes (journal keeps the prefix)",
                harness.name()
            );
            Ok(None)
        }
        Err(e) => panic!("macro path must run: {e}"),
    }
}

fn main() {
    let trace = obs_init();
    let resume = std::env::args().any(|a| a == "--resume");
    let store_dir = dotm_core::env::store_dir().unwrap_or_else(|| PathBuf::from("dotm-store"));
    let abort_after = match dotm_core::env::u64_knob("DOTM_ABORT_AFTER", 0) {
        0 => None,
        n => Some(n),
    };
    let expect_warm = dotm_core::env::bool_knob("DOTM_EXPECT_WARM", false);

    let mut cfg = standard_config();
    cfg.measure_cache = false; // see the module docs: the store subsumes it

    let harnesses: Vec<Box<dyn MacroHarness>> = vec![
        Box::new(ComparatorHarness::production()),
        Box::new(LadderHarness),
        Box::new(BiasHarness::default()),
        Box::new(ClockgenHarness::default()),
        Box::new(DecoderHarness::default()),
    ];

    println!(
        "persistent campaign: {} defects/macro, store at {}{}",
        cfg.defects,
        store_dir.display(),
        if resume { ", resuming" } else { "" }
    );
    let observer = CampaignObserver {
        writer: Mutex::new(None),
        completed: AtomicU64::new(0),
        abort_after,
    };

    let campaign_span = dotm_obs::span("campaign", "campaign");
    let mut runs: Vec<MacroRun> = Vec::new();
    let mut aborted = false;
    for harness in &harnesses {
        match run_macro(harness.as_ref(), &cfg, &store_dir, resume, &observer)
            .expect("store directory must be writable")
        {
            Some(run) => {
                println!(
                    "  {:<16} {:>4} faults / {:>3} classes  {:>6.1}s  \
                     store: loads={} hits={} misses={} computed={} fingerprint={:016x}",
                    run.report.name,
                    run.report.total_faults,
                    run.report.class_count,
                    run.seconds,
                    run.counters.loads,
                    run.counters.hits(),
                    run.counters.misses,
                    run.counters.computed,
                    run.report.fingerprint(),
                );
                runs.push(run);
            }
            None => {
                aborted = true;
                break;
            }
        }
    }

    drop(campaign_span);

    if aborted {
        println!(
            "campaign aborted on request after {} classes — rerun with --resume",
            observer.completed.load(Ordering::Relaxed)
        );
        obs_finish("campaign");
        return;
    }

    let mut totals = dotm_store::StoreCounters::default();
    for run in &runs {
        totals.loads += run.counters.loads;
        totals.mem_hits += run.counters.mem_hits;
        totals.disk_hits += run.counters.disk_hits;
        totals.misses += run.counters.misses;
        totals.computed += run.counters.computed;
        totals.write_errors += run.counters.write_errors;
    }
    println!(
        "campaign store accounting: loads={} mem_hits={} disk_hits={} misses={} \
         computed={} write_errors={} hit_rate={:.1}%",
        totals.loads,
        totals.mem_hits,
        totals.disk_hits,
        totals.misses,
        totals.computed,
        totals.write_errors,
        totals.hit_pct(),
    );

    let global = GlobalReport::new(runs.into_iter().map(|r| r.report).collect());
    println!();
    println!("Fig 4 (from the persistent campaign): global detectability");
    for (label, severity) in [
        ("a — catastrophic", Severity::Catastrophic),
        ("b — non-catastrophic", Severity::NonCatastrophic),
    ] {
        let d = global.detectability(severity);
        println!("({label})");
        println!("  voltage detectable:   {:>5.1}%", d.voltage_pct);
        println!("  current detectable:   {:>5.1}%", d.current_pct);
        println!("  total fault coverage: {:>5.1}%", d.coverage_pct);
    }
    rule(72);
    print_global_accounting(&global);

    if trace {
        for (name, value) in [
            ("store.loads", totals.loads),
            ("store.mem_hits", totals.mem_hits),
            ("store.disk_hits", totals.disk_hits),
            ("store.misses", totals.misses),
            ("store.computed", totals.computed),
            ("store.write_errors", totals.write_errors),
        ] {
            if value > 0 {
                dotm_obs::counter(name, value);
            }
        }
        obs_fold_solver(&global.solver_totals());
    }
    obs_finish("campaign");

    if expect_warm && (totals.computed > 0 || totals.misses > 0) {
        eprintln!(
            "DOTM_EXPECT_WARM: the store was supposed to answer everything, \
             but computed={} misses={}",
            totals.computed, totals.misses
        );
        std::process::exit(1);
    }
}
