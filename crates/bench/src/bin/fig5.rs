//! Regenerates **Fig. 5**: global detectability after the paper's two
//! DfT measures — the redesigned flipflop (no sampling-phase static
//! current, collapsing the IVdd spread) and the reordered bias trunks
//! (the similar-signal `vbn`/`vbnc` pair separated by `vbp`).
//!
//! Paper anchors: fault coverage rises from 93.3 % to 99.1 %; the
//! voltage-only share shrinks to 5.8 % (cat) / 5.6 % (non-cat), making a
//! current-only wafer-sort test feasible.

use dotm_bench::{global_report, print_global_accounting, rule};
use dotm_core::GlobalDetectability;
use dotm_faults::Severity;

fn print_panel(label: &str, d: &GlobalDetectability) {
    println!("({label})");
    println!("  voltage detectable:   {:>5.1}%", d.voltage_pct);
    println!("  current detectable:   {:>5.1}%", d.current_pct);
    println!("  voltage only:         {:>5.1}%", d.voltage_only_pct);
    println!("  current only:         {:>5.1}%", d.current_only_pct);
    println!("  both:                 {:>5.1}%", d.both_pct);
    println!("  total fault coverage: {:>5.1}%", d.coverage_pct);
}

fn main() {
    println!("Fig 5: Global detectability after DfT measures");
    println!("  DfT 1: flipflop redesign (no static sampling-phase current)");
    println!("  DfT 2: bias-line reorder (vbn / vbnc separated by vbp)");
    println!();
    let global = global_report(true);
    let cat = global.detectability(Severity::Catastrophic);
    let ncat = global.detectability(Severity::NonCatastrophic);
    print_panel("a — catastrophic, after DfT", &cat);
    println!();
    print_panel("b — non-catastrophic, after DfT", &ncat);
    println!();
    rule(72);
    println!("paper: coverage rises to 99.1%; voltage-only shrinks to 5.8% / 5.6%,");
    println!("       so a current-only wafer-sort test becomes feasible");
    rule(72);
    print_global_accounting(&global);
}
