//! Parallel-executor validation: runs the comparator macro path at
//! `threads = 1` and `threads = N` on the same seed, asserts the two
//! reports are **bit-for-bit identical** (FNV fingerprint over every
//! field), and prints the wall-clock speedup.
//!
//! Knobs: `DOTM_THREADS` (parallel thread count, default 8),
//! `DOTM_DEFECTS` (sprinkle size, default 8000), `DOTM_MAX_CLASSES`
//! (class truncation, default 48 — enough work to amortise thread
//! startup while staying CI-sized; unset `DOTM_MAX_CLASSES=0` for the
//! full population).
//!
//! Exits non-zero if the fingerprints diverge, so CI can gate on the
//! determinism contract.

use dotm_bench::{env_u64, env_usize};
use dotm_core::harnesses::ComparatorHarness;
use dotm_core::{
    run_macro_path_with_faults, ExecConfig, GoodSpaceConfig, MacroHarness, MacroReport,
    PipelineConfig,
};
use dotm_defects::{sprinkle_collapsed, Sprinkler};
use std::time::Instant;

fn config(threads: usize) -> PipelineConfig {
    let max_classes = match env_usize("DOTM_MAX_CLASSES", 48) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 8_000),
        seed: env_u64("DOTM_SEED", 1995),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 3),
            mismatch_samples: env_usize("DOTM_GS_MM", 2),
            seed: env_u64("DOTM_SEED", 1995) ^ 0xD07,
            exec: ExecConfig::with_threads(threads),
            ..GoodSpaceConfig::default()
        },
        max_classes,
        non_catastrophic: true,
        exec: ExecConfig::with_threads(threads),
        ..PipelineConfig::default()
    }
}

fn run(threads: usize) -> (MacroReport, f64) {
    let harness = ComparatorHarness::production();
    let cfg = config(threads);
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    let t0 = Instant::now();
    let report =
        run_macro_path_with_faults(&harness, &cfg, &collapsed, area).expect("path must run");
    (report, t0.elapsed().as_secs_f64())
}

fn main() {
    let par_threads = env_usize("DOTM_THREADS", 8).max(2);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("comparator macro path, serial vs {par_threads} threads ({cores} cores available)");

    let (serial_report, serial_s) = run(1);
    println!(
        "  threads=1:  {:.2}s  ({} outcomes, fingerprint {:#018x})",
        serial_s,
        serial_report.outcomes.len(),
        serial_report.fingerprint()
    );
    let (par_report, par_s) = run(par_threads);
    println!(
        "  threads={par_threads}:  {:.2}s  ({} outcomes, fingerprint {:#018x})",
        par_s,
        par_report.outcomes.len(),
        par_report.fingerprint()
    );

    let identical = serial_report.fingerprint() == par_report.fingerprint();
    println!(
        "  identical reports: {}   speedup: {:.2}x",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM BUG"
        },
        serial_s / par_s.max(1e-9)
    );
    if cores < par_threads {
        println!(
            "  (note: only {cores} hardware threads available — speedup is \
             bounded by the machine, the determinism check is not)"
        );
    }
    if !identical {
        std::process::exit(1);
    }
}
