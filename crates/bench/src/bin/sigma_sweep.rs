//! Ablation: fault coverage of the comparator macro versus the width of
//! the good-signature space (the process-variation σ driving the 3σ
//! detection thresholds). Wider process spread ⇒ wider good space ⇒
//! fewer current detections — the quantitative version of the paper's
//! flipflop-spread argument.

use dotm_bench::{rule, standard_config};
use dotm_core::harnesses::ComparatorHarness;
use dotm_core::{detectability, run_macro_path, ProcessModel};
use dotm_faults::Severity;

fn main() {
    let harness = ComparatorHarness::production();
    println!("Good-space width ablation (comparator macro, catastrophic faults)");
    println!();
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "sigma scale", "current %", "coverage %", "IDDQ-only %"
    );
    rule(52);
    for scale in [0.5, 1.0, 1.5] {
        let mut cfg = standard_config();
        let base = ProcessModel::default();
        cfg.process = ProcessModel {
            sigma_vt_common: base.sigma_vt_common * scale,
            sigma_kp_common: base.sigma_kp_common * scale,
            sigma_r_common: base.sigma_r_common * scale,
            sigma_vdd: base.sigma_vdd * scale,
            sigma_vt_mismatch: base.sigma_vt_mismatch * scale,
            sigma_kp_mismatch: base.sigma_kp_mismatch * scale,
            sigma_r_mismatch: base.sigma_r_mismatch * scale,
            // The operating-temperature window is part of the good-space
            // width too (paper: "process, supply voltage and temperature").
            temp_span_c: base.temp_span_c * scale,
        };
        // The non-catastrophic pass doubles the runtime without adding
        // information for this ablation.
        cfg.non_catastrophic = false;
        eprintln!("[sigma_sweep] scale {scale} ...");
        match run_macro_path(&harness, &cfg) {
            Ok(report) => {
                let d = detectability(&report, Severity::Catastrophic);
                println!(
                    "{:>12.1} {:>11.1}% {:>11.1}% {:>11.1}%",
                    scale, d.current_pct, d.coverage_pct, d.iddq_only_pct
                );
            }
            Err(e) => {
                // At extreme corners the fault-free circuit itself can
                // leave the simulator's convergence envelope.
                println!(
                    "{scale:>12.1} {:>12} {:>12} {:>12}  ({e})",
                    "n/a", "n/a", "n/a"
                );
            }
        }
    }
    rule(52);
    println!();
    println!("the coverage is remarkably threshold-robust: detected faults deviate by");
    println!("far more than 3 sigma and the escapes by far less, so halving or");
    println!("growing the good space moves only the marginal classes — the paper's");
    println!("flipflop DfT matters because that one spread sat right on the boundary");
}
