//! Regenerates **Table 1**: catastrophic faults and fault classes for the
//! comparator macro, by fault mechanism.
//!
//! Procedure (exactly the paper's §3.2): sprinkle a 25,000-defect pilot on
//! the comparator layout and collapse into classes; then repeat the
//! sprinkling with 10,000,000 defects to give the class magnitudes
//! statistical significance.
//!
//! Paper anchors: 334 fault classes; 226,596 faults in the full run;
//! shorts > 95 % of faults; opens 0.03 % of faults but 5.1 % of classes.

use dotm_bench::{env_u64, env_usize, rule};
use dotm_core::harnesses::ComparatorHarness;
use dotm_core::MacroHarness;
use dotm_defects::{recount, sprinkle_collapsed, DefectStatistics, FaultMechanism, Sprinkler};

fn main() {
    let pilot = env_usize("DOTM_DEFECTS", 25_000);
    let full = env_usize("DOTM_TABLE1_FULL", 10_000_000);
    let seed = env_u64("DOTM_SEED", 1995);

    let harness = ComparatorHarness::production();
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());

    eprintln!("[table1] pilot sprinkle: {pilot} defects ...");
    let t0 = std::time::Instant::now();
    let mut report = sprinkle_collapsed(&sprinkler, pilot, seed);
    let pilot_faults = report.total_faults;
    let pilot_classes = report.class_count();
    eprintln!(
        "[table1] pilot: {pilot_faults} catastrophic faults -> {pilot_classes} classes ({:.1}s)",
        t0.elapsed().as_secs_f64()
    );

    eprintln!("[table1] full sprinkle: {full} defects (recount of the pilot classes) ...");
    let t1 = std::time::Instant::now();
    let unmatched = recount(&sprinkler, &mut report, full, seed ^ 0xF0F0);
    eprintln!(
        "[table1] full: {} faults in the {pilot_classes} classes, {unmatched} outside ({:.1}s)",
        report.total_faults,
        t1.elapsed().as_secs_f64()
    );

    println!();
    println!("Table 1: Catastrophic faults and fault classes for comparator");
    println!("  (pilot: {pilot} defects -> {pilot_faults} faults, {pilot_classes} classes;");
    println!(
        "   full:  {full} defects -> {} faults in those classes)",
        report.total_faults
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "fault type", "faults", "% faults", "classes", "% classes"
    );
    rule(64);
    for mech in FaultMechanism::ALL {
        println!(
            "{:<22} {:>9} {:>8.2}% {:>9} {:>8.1}%",
            mech.to_string(),
            report.faults_of(mech),
            report.fault_pct(mech),
            report.classes_of(mech),
            report.class_pct(mech)
        );
    }
    rule(64);
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "total",
        report.total_faults,
        "",
        report.class_count()
    );
    println!();
    let shorts =
        report.fault_pct(FaultMechanism::Short) + report.fault_pct(FaultMechanism::ExtraContact);
    println!("shorts (incl. extra contacts): {shorts:.1}% of faults (paper: > 95%)");
    println!(
        "opens: {:.3}% of faults, {:.1}% of classes (paper: 0.03% / 5.1%)",
        report.fault_pct(FaultMechanism::Open),
        report.class_pct(FaultMechanism::Open)
    );

    // The macro-internal share (paper: 27.8 % influence only this macro).
    let shared: std::collections::HashSet<&str> = harness.shared_nets().into_iter().collect();
    let nl = harness.testbench();
    let mut internal = 0usize;
    for class in &report.classes {
        let touches_shared = class
            .representative
            .touched_nets()
            .iter()
            .any(|n| shared.contains(n));
        // Device-internal faults (gate oxide etc.) report no nets: check
        // their terminals against the netlist.
        let touches_shared = touches_shared
            || match &class.representative.effect {
                dotm_defects::FaultEffect::GateOxide { device }
                | dotm_defects::FaultEffect::DeviceShort { device } => nl
                    .device(device)
                    .map(|d| {
                        d.terminals()
                            .iter()
                            .any(|t| shared.contains(nl.node_name(*t)))
                    })
                    .unwrap_or(false),
                _ => false,
            };
        if !touches_shared {
            internal += class.count;
        }
    }
    println!(
        "faults influencing only this macro: {:.1}% (paper: 27.8%)",
        100.0 * internal as f64 / report.total_faults.max(1) as f64
    );
}
