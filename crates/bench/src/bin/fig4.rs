//! Regenerates **Fig. 4**: global detectability of (a) catastrophic and
//! (b) non-catastrophic faults for the whole converter, compiled from the
//! five macro paths under the uniform-defect-density scaling.
//!
//! Paper anchors: total coverage 93.3 % (cat) / 93.1 % (non-cat);
//! current-detectable 71.8 %; 32.5 % current-only; current measurements
//! "a better test method" than voltage; clock generator 93.8 % and ladder
//! 99.8 % current-detectable.

use dotm_bench::{
    global_report, obs_finish, obs_fold_solver, obs_init, print_global_accounting, rule,
};
use dotm_core::GlobalDetectability;
use dotm_faults::Severity;

fn print_panel(label: &str, d: &GlobalDetectability) {
    println!("({label})");
    println!("  voltage detectable:   {:>5.1}%", d.voltage_pct);
    println!("  current detectable:   {:>5.1}%", d.current_pct);
    println!("  voltage only:         {:>5.1}%", d.voltage_only_pct);
    println!("  current only:         {:>5.1}%", d.current_only_pct);
    println!("  both:                 {:>5.1}%", d.both_pct);
    println!("  IDDQ only:            {:>5.1}%", d.iddq_only_pct);
    println!("  total fault coverage: {:>5.1}%", d.coverage_pct);
}

fn main() {
    obs_init();
    let global = {
        let _span = dotm_obs::span("fig4", "campaign");
        global_report(false)
    };
    println!();
    println!("Fig 4: Global detectability of (a) catastrophic and (b) non-catastrophic faults");
    println!();
    let cat = global.detectability(Severity::Catastrophic);
    let ncat = global.detectability(Severity::NonCatastrophic);
    print_panel("a — catastrophic", &cat);
    println!();
    print_panel("b — non-catastrophic", &ncat);
    println!();
    rule(72);
    println!("paper: coverage 93.3% / 93.1%; current 71.8%; current-only 32.5%;");
    println!("       IDDQ-only ~11%; combination of both tests required for the maximum");
    rule(72);
    println!();
    println!("per-macro current detectability (catastrophic):");
    for report in global.macros() {
        let current = report.pct_where(Severity::Catastrophic, |o| o.detection.currents.any());
        println!(
            "  {:<16} {:>5.1}%  ({} faults, {} classes, weight {:.2e})",
            report.name,
            current,
            report.total_faults,
            report.class_count,
            report.global_weight()
        );
    }
    println!("  (paper: clock generator 93.8%, reference ladder 99.8%)");
    print_global_accounting(&global);
    obs_fold_solver(&global.solver_totals());
    obs_finish("fig4");
}
