//! Regenerates **Fig. 3**: detectability of catastrophic comparator
//! faults across the four detection mechanisms (missing codes, IVdd,
//! IDDQ, Iinput), as the overlap regions of the figure's shaded bar.
//!
//! Paper anchors: missing-code 66.2 %; 26.6 % current-only; 10.0 %
//! IDDQ-only; 14.5 % detected by both missing codes and IVdd.

use dotm_bench::{comparator_report, rule};
use dotm_core::{detectability, internal_fault_pct};
use dotm_faults::Severity;
use std::collections::BTreeMap;

fn main() {
    let report = comparator_report(false);
    let severity = Severity::Catastrophic;

    // Full 16-region breakdown (mc, ivdd, iddq, iinput).
    let mut regions: BTreeMap<(bool, bool, bool, bool), f64> = BTreeMap::new();
    let total = report.weight_of(severity);
    for o in report.outcomes_of(severity) {
        let key = (
            o.detection.missing_code,
            o.currents.ivdd,
            o.currents.iddq,
            o.currents.iinput,
        );
        *regions.entry(key).or_insert(0.0) += 100.0 * o.count as f64 / total;
    }

    println!();
    println!("Fig 3: Detectability of catastrophic faults for comparator");
    println!();
    println!(
        "{:<14} {:>6} {:>6} {:>8} {:>8}",
        "% of faults", "codes", "IVdd", "IDDQ", "Iinput"
    );
    rule(48);
    for ((mc, ivdd, iddq, iin), pct) in regions.iter().rev() {
        if *pct < 0.005 {
            continue;
        }
        let mark = |b: bool| if b { "  x" } else { "  ." };
        println!(
            "{:>12.1}% {:>6} {:>6} {:>8} {:>8}",
            pct,
            mark(*mc),
            mark(*ivdd),
            mark(*iddq),
            mark(*iin)
        );
    }
    rule(48);

    let d = detectability(&report, severity);
    println!();
    println!(
        "missing-code detectable: {:>5.1}%   (paper: 66.2%)",
        d.missing_code_pct
    );
    println!(
        "current-only detectable: {:>5.1}%   (paper: 26.6%)",
        d.current_only_pct
    );
    println!(
        "IDDQ-only detectable:    {:>5.1}%   (paper: 10.0%)",
        d.iddq_only_pct
    );
    println!(
        "missing-code AND IVdd:   {:>5.1}%   (paper: 14.5%)",
        d.missing_code_and_ivdd_pct
    );
    println!("total coverage:          {:>5.1}%", d.coverage_pct);
    println!(
        "faults internal to macro: {:>4.1}%   (paper: 27.8%)",
        internal_fault_pct(&report, severity)
    );
}
