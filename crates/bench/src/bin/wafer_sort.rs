//! The paper's §4 proposal quantified: after the DfT measures the
//! voltage-only share shrinks enough that a *current-only* wafer-sort
//! test becomes feasible. This binary evaluates the current-only test set
//! (IVdd + IDDQ + Iinput, no missing-code ramp) on the production and DfT
//! comparators, and converts the coverages into shipped-defective rates
//! via the Williams–Brown model.

use dotm_bench::{comparator_report, rule};
use dotm_core::YieldModel;
use dotm_faults::Severity;

fn main() {
    println!("Wafer-sort study: current-only test set, production vs DfT comparator");
    println!();
    let yield_model = YieldModel::default();
    println!(
        "yield model: {:.2} faults/die clustered α={:.1}  ->  {:.1}% yield",
        yield_model.faults_per_die,
        yield_model.clustering_alpha,
        100.0 * yield_model.yield_fraction()
    );
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "variant", "current-only", "full test", "escapes/cur", "escapes/full"
    );
    rule(70);
    for (label, dft) in [("production", false), ("with DfT", true)] {
        let report = comparator_report(dft);
        let current_cov = report.pct_where(Severity::Catastrophic, |o| o.currents.any());
        let full_cov = report.coverage(Severity::Catastrophic);
        println!(
            "{:<12} {:>13.1}% {:>13.1}% {:>8.0} ppm {:>8.0} ppm",
            label,
            current_cov,
            full_cov,
            yield_model.escapes_ppm(current_cov / 100.0),
            yield_model.escapes_ppm(full_cov / 100.0)
        );
    }
    rule(70);
    println!();
    println!("paper: after DfT only 5.8% of the faults are voltage-only, 'making it");
    println!("feasible to use only current tests in the wafer-sort tests'");
}
