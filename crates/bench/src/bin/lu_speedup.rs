//! Factor-reuse / rank-update validation: runs the fixed-seed ladder
//! anchor (the same population `tests/determinism.rs` pins to 645 faults
//! in 417 classes) once with both factorisation knobs off and once with
//! the bitwise factor cache plus Sherman–Morrison–Woodbury rank updates
//! on, then
//!
//! * asserts the **detection verdict of every class is identical** — the
//!   rank-update path changes round-off, so verdict preservation is a
//!   measured property, gated here before the knob is enabled anywhere,
//! * measures the LU-phase wall-clock both ways through the `dotm-obs`
//!   accumulators (enabled internally; the exported trace still honours
//!   `DOTM_TRACE`), and
//! * prints the factor-reuse occupancy (hits per linear solve), so the
//!   claimed speedup is an auditable counter, not a wall-clock race.
//!
//! Knobs: `DOTM_DEFECTS` (sprinkle size, default 20000), `DOTM_SEED`
//! (default 2026), `DOTM_GS_COMMON`/`DOTM_GS_MM` (good-space sizes,
//! default 3×2), `DOTM_MAX_CLASSES` (0 = full population, the default),
//! `DOTM_LU_MIN_SPEEDUP` (gate on the LU-phase ratio, default 2),
//! `DOTM_LU_MIN_HIT_PCT` (gate on the reuse hit rate, default 80),
//! `DOTM_BENCH_JSON` (write the machine-readable summary to this path).
//!
//! Exits non-zero if a verdict flips, the LU-phase reduction falls below
//! the speedup gate, or the reuse hit rate falls below the hit-rate gate.

use dotm_bench::{env_u64, env_usize, obs_finish, obs_fold_solver};
use dotm_core::harnesses::LadderHarness;
use dotm_core::{
    run_macro_path_with_faults, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig,
};
use dotm_defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use std::time::Instant;

fn config(fast: bool) -> PipelineConfig {
    let max_classes = match env_usize("DOTM_MAX_CLASSES", 0) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 20_000),
        seed: env_u64("DOTM_SEED", 2026),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 3),
            mismatch_samples: env_usize("DOTM_GS_MM", 2),
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        max_classes,
        non_catastrophic: true,
        // Warm starts stay on in both passes (rank updates ride the
        // warm-start seed plumbing); the measurement cache stays off in
        // both so every class performs its solves and the phase profile
        // measures factorisation work, not cache replay.
        warm_start: true,
        measure_cache: false,
        factor_reuse: fast,
        rank_update: fast,
        ..PipelineConfig::default()
    }
}

struct Pass {
    report: MacroReport,
    seconds: f64,
    lu_ns: u64,
    rank_update_ns: u64,
}

fn phase_ns(name: &str) -> u64 {
    dotm_obs::phase_totals()
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, ns)| *ns)
        .unwrap_or(0)
}

fn run(fast: bool, collapsed: &CollapseReport, area: f64) -> Pass {
    let cfg = config(fast);
    let span = dotm_obs::span(if fast { "fast pass" } else { "baseline pass" }, "campaign");
    let lu0 = phase_ns("lu");
    let ru0 = phase_ns("rank_update");
    let t0 = Instant::now();
    let report = run_macro_path_with_faults(&LadderHarness, &cfg, collapsed, area)
        .expect("ladder path must run");
    let seconds = t0.elapsed().as_secs_f64();
    drop(span);
    Pass {
        report,
        seconds,
        lu_ns: phase_ns("lu") - lu0,
        rank_update_ns: phase_ns("rank_update") - ru0,
    }
}

fn write_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[dotm] bench summary: {path}"),
        Err(e) => {
            eprintln!("[dotm] bench summary write failed ({path}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // The phase accumulators are the measurement instrument here, so the
    // recorder is always on; `DOTM_TRACE` additionally exports the trace
    // files via `obs_finish` as usual.
    let trace = dotm_core::env::trace();
    dotm_obs::set_enabled(true);
    let cfg = config(false);
    let layout = LadderHarness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    println!(
        "ladder anchor, full refactorisation vs factor reuse + rank updates \
         ({} defects, seed {})",
        cfg.defects, cfg.seed
    );

    let base = run(false, &collapsed, area);
    let bs = base.report.solver_totals();
    println!(
        "  baseline: {:.2}s  {} NR solves, {} iterations, LU phase {:.3}s ({} classes)",
        base.seconds,
        bs.nr_solves,
        bs.nr_iterations,
        base.lu_ns as f64 / 1e9,
        base.report.outcomes.len()
    );
    let fast = run(true, &collapsed, area);
    let fs = fast.report.solver_totals();
    let factor_ns = fast.lu_ns + fast.rank_update_ns;
    println!(
        "  fast:     {:.2}s  {} NR solves, {} iterations, LU phase {:.3}s \
         + rank-update {:.3}s ({} classes)",
        fast.seconds,
        fs.nr_solves,
        fs.nr_iterations,
        fast.lu_ns as f64 / 1e9,
        fast.rank_update_ns as f64 / 1e9,
        fast.report.outcomes.len()
    );
    let hit_pct = 100.0 * fs.factor_reuse_hits as f64 / fs.nr_iterations.max(1) as f64;
    println!(
        "  factor reuse: {} hits / {} linear solves ({hit_pct:.1}%), {} refactor fallbacks",
        fs.factor_reuse_hits, fs.nr_iterations, fs.factor_refactor_fallbacks
    );

    // The verdicts — not the solver effort — must be identical per class.
    let mut flipped = 0usize;
    assert_eq!(
        base.report.outcomes.len(),
        fast.report.outcomes.len(),
        "class lists diverged"
    );
    for (a, b) in base.report.outcomes.iter().zip(&fast.report.outcomes) {
        assert_eq!(a.key, b.key, "class order diverged");
        if a.detection != b.detection || a.voltage != b.voltage || a.currents != b.currents {
            eprintln!("  VERDICT FLIP in class {}", a.key);
            flipped += 1;
        }
    }
    let speedup = base.lu_ns as f64 / factor_ns.max(1) as f64;
    println!("  verdict flips: {flipped}   LU-phase speedup: {speedup:.2}x");

    if let Ok(path) = std::env::var("DOTM_BENCH_JSON") {
        write_json(
            &path,
            &[
                ("bench", "\"lu_speedup\"".into()),
                ("defects", cfg.defects.to_string()),
                ("seed", cfg.seed.to_string()),
                ("classes", base.report.outcomes.len().to_string()),
                ("base_nr_solves", bs.nr_solves.to_string()),
                ("base_nr_iterations", bs.nr_iterations.to_string()),
                ("fast_nr_solves", fs.nr_solves.to_string()),
                ("fast_nr_iterations", fs.nr_iterations.to_string()),
                ("factor_reuse_hits", fs.factor_reuse_hits.to_string()),
                (
                    "factor_refactor_fallbacks",
                    fs.factor_refactor_fallbacks.to_string(),
                ),
                ("verdict_flips", flipped.to_string()),
                ("hit_pct", format!("{hit_pct:.2}")),
                ("base_lu_ns", base.lu_ns.to_string()),
                ("fast_lu_ns", fast.lu_ns.to_string()),
                ("fast_rank_update_ns", fast.rank_update_ns.to_string()),
                ("lu_speedup", format!("{speedup:.3}")),
                ("base_wall_ms", format!("{:.1}", base.seconds * 1e3)),
                ("fast_wall_ms", format!("{:.1}", fast.seconds * 1e3)),
            ],
        );
    }

    dotm_obs::set_enabled(trace);
    let mut both = bs;
    both += fs;
    obs_fold_solver(&both);
    obs_finish("lu_speedup");

    let min_speedup = env_u64("DOTM_LU_MIN_SPEEDUP", 2) as f64;
    let min_hit_pct = env_u64("DOTM_LU_MIN_HIT_PCT", 80) as f64;
    if flipped > 0 {
        eprintln!("[dotm] FAIL: {flipped} verdict flips");
        std::process::exit(1);
    }
    if speedup < min_speedup {
        eprintln!("[dotm] FAIL: LU-phase speedup {speedup:.2}x < {min_speedup}x");
        std::process::exit(1);
    }
    if hit_pct < min_hit_pct {
        eprintln!("[dotm] FAIL: factor-reuse hit rate {hit_pct:.1}% < {min_hit_pct}%");
        std::process::exit(1);
    }
}
