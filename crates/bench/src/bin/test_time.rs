//! Regenerates the paper's test-time comparison (§3.2 and §4): the
//! defect-oriented test — 1000 full-speed samples for the missing-code
//! check plus six settled current measurements — against a representative
//! specification-oriented test suite.

use dotm_bench::rule;
use dotm_core::TestTimeModel;

fn main() {
    let m = TestTimeModel::default();
    println!("Test-time comparison (defect-oriented vs specification-oriented)");
    println!();
    println!(
        "missing-code test:  {:>10.3} ms  ({} samples at {:.0} ns)",
        m.missing_code_time() * 1e3,
        m.missing_code_samples,
        m.sample_period * 1e9
    );
    println!(
        "current test:       {:>10.3} ms  ({} measurements, {:.0} µs settle + {:.0} µs window)",
        m.current_time() * 1e3,
        m.current_measurements,
        m.current_settle * 1e6,
        m.current_window * 1e6
    );
    rule(64);
    println!("defect-oriented total:        {:>8.3} ms", m.total() * 1e3);
    println!(
        "specification-oriented suite: {:>8.1} ms  (code density + FFTs + trims)",
        m.specification_test_time() * 1e3
    );
    println!(
        "speed-up: {:.0}x  (paper: 'compares favourably with specification-oriented tests')",
        m.specification_test_time() / m.total()
    );
}
