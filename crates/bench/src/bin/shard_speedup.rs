//! Sharded-campaign validation: runs the `campaign` binary once
//! single-process and once as a coordinator with N shard workers
//! (`--workers N`), both against fresh store trees, then asserts the
//! tentpole byte-identity contract:
//!
//! * every per-macro report **fingerprint** is identical,
//! * every canonical `journal/<macro>.jnl` is **byte-identical**
//!   (`cmp`-level, after the merge replay),
//! * the Fig. 4 panels and the **solver-accounting totals** are
//!   identical, and
//! * the deterministic **store occupancy** line (sorted walk: entry
//!   count, bytes, name digest) is identical — the two trees hold the
//!   same content-addressed entries.
//!
//! Wall-clock of both runs is measured and the ratio reported. On a
//! single-core CI runner process-level sharding cannot beat one process
//! doing the same solves, so the speedup gate defaults to *off*
//! (`DOTM_SHARD_MIN_SPEEDUP=0.0` — honest numbers, hard identity); the
//! identity checks always gate.
//!
//! Knobs: `DOTM_SHARD_WORKERS` (worker count, default 2),
//! `DOTM_SHARD_MIN_SPEEDUP` (wall-clock ratio gate, default 0.0),
//! `DOTM_BENCH_JSON` (write the machine-readable summary here), plus
//! the standard campaign knobs, which pass through to both runs. When
//! unset, the smoke sizes (`DOTM_DEFECTS=2000`, `DOTM_MAX_CLASSES=8`,
//! 2×2 good space) are pinned explicitly so the committed baseline
//! matches a plain invocation.
//!
//! Exits non-zero on any identity violation, a failed child process, or
//! a speedup below the (default-off) gate.

use dotm_bench::env_usize;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Smoke-size defaults pinned into both children when the caller left
/// them unset, so the bench (and its committed baseline) is
/// reproducible regardless of the invoking shell.
const PINNED: &[(&str, &str)] = &[
    ("DOTM_DEFECTS", "2000"),
    ("DOTM_MAX_CLASSES", "8"),
    ("DOTM_GS_COMMON", "2"),
    ("DOTM_GS_MM", "2"),
];

fn campaign_exe() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin directory");
    let exe = dir.join(format!("campaign{}", std::env::consts::EXE_SUFFIX));
    if !exe.is_file() {
        eprintln!(
            "[dotm] campaign binary not found at {} — build it first \
             (cargo build --release -p dotm-bench --bin campaign)",
            exe.display()
        );
        std::process::exit(2);
    }
    exe
}

/// Runs one campaign invocation against `store_dir`, returning its
/// stdout and wall-clock seconds. Stderr passes through.
fn run_campaign(exe: &Path, store_dir: &Path, extra_args: &[String]) -> (String, f64) {
    let mut cmd = Command::new(exe);
    cmd.args(extra_args)
        .env("DOTM_STORE_DIR", store_dir)
        .env_remove("DOTM_ABORT_AFTER")
        .env_remove("DOTM_EXPECT_WARM")
        .env_remove("DOTM_SHARD")
        .env_remove("DOTM_SHARDS");
    for (k, v) in PINNED {
        if std::env::var_os(k).is_none() {
            cmd.env(k, v);
        }
    }
    let t0 = Instant::now();
    let out = cmd.output().unwrap_or_else(|e| {
        eprintln!("[dotm] failed to spawn {}: {e}", exe.display());
        std::process::exit(2);
    });
    let seconds = t0.elapsed().as_secs_f64();
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    if !out.status.success() {
        eprintln!(
            "[dotm] campaign {:?} exited with {}",
            extra_args, out.status
        );
        std::process::exit(1);
    }
    (String::from_utf8_lossy(&out.stdout).into_owned(), seconds)
}

/// `(macro name, fingerprint)` pairs from the per-macro campaign lines.
fn fingerprints(stdout: &str) -> Vec<(String, String)> {
    stdout
        .lines()
        .filter_map(|l| {
            let fp = l.split("fingerprint=").nth(1)?.trim().to_string();
            let name = l.split_whitespace().next()?.to_string();
            Some((name, fp))
        })
        .collect()
}

/// Everything from the Fig. 4 header onward: panels plus the
/// solver-accounting block — deterministic output, no effort counters.
fn accounting_tail(stdout: &str) -> String {
    match stdout.find("Fig 4") {
        Some(at) => stdout[at..].to_string(),
        None => String::new(),
    }
}

fn occupancy_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.starts_with("campaign store occupancy:"))
        .unwrap_or("")
        .to_string()
}

fn write_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[dotm] bench summary: {path}"),
        Err(e) => {
            eprintln!("[dotm] bench summary write failed ({path}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let workers = env_usize("DOTM_SHARD_WORKERS", 2);
    let exe = campaign_exe();
    let root = std::env::temp_dir().join(format!("dotm-shard-speedup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir_single = root.join("single");
    let dir_sharded = root.join("sharded");

    println!("sharded campaign vs single process ({workers} workers)");
    let (out_single, secs_single) = run_campaign(&exe, &dir_single, &[]);
    println!("  single:  {secs_single:>6.2}s");
    let (out_sharded, secs_sharded) = run_campaign(
        &exe,
        &dir_sharded,
        &["--workers".into(), workers.to_string()],
    );
    println!("  sharded: {secs_sharded:>6.2}s  ({workers} worker processes + merge)");

    // Identity check 1: per-macro report fingerprints.
    let fp_single = fingerprints(&out_single);
    let fp_sharded = fingerprints(&out_sharded);
    let fingerprints_identical = !fp_single.is_empty() && fp_single == fp_sharded;
    for ((name, a), (_, b)) in fp_single.iter().zip(&fp_sharded) {
        if a != b {
            eprintln!("  FINGERPRINT MISMATCH {name}: single {a} vs sharded {b}");
        }
    }

    // Identity check 2: canonical journal bytes, macro by macro.
    let mut journals_identical = !fp_single.is_empty();
    let mut journal_bytes = 0u64;
    for (name, _) in &fp_single {
        let a = std::fs::read(dir_single.join("journal").join(format!("{name}.jnl")));
        let b = std::fs::read(dir_sharded.join("journal").join(format!("{name}.jnl")));
        match (a, b) {
            (Ok(a), Ok(b)) if a == b => journal_bytes += a.len() as u64,
            _ => {
                eprintln!("  JOURNAL MISMATCH {name}: merged bytes differ from single-process");
                journals_identical = false;
            }
        }
    }

    // Identity check 3: Fig 4 panels + solver-accounting totals.
    let accounting_identical = !accounting_tail(&out_single).is_empty()
        && accounting_tail(&out_single) == accounting_tail(&out_sharded);
    if !accounting_identical {
        eprintln!("  ACCOUNTING MISMATCH: Fig 4 / solver totals differ");
    }

    // Identity check 4: deterministic store occupancy (sorted walk).
    let occ_single = occupancy_line(&out_single);
    let occupancy_identical = !occ_single.is_empty() && occ_single == occupancy_line(&out_sharded);
    if !occupancy_identical {
        eprintln!("  OCCUPANCY MISMATCH: the two store trees differ");
    }
    let store_entries: u64 = occ_single
        .split("entries=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let speedup = secs_single / secs_sharded.max(1e-9);
    println!(
        "  fingerprints identical: {fingerprints_identical}   journals identical: \
         {journals_identical}   accounting identical: {accounting_identical}"
    );
    println!(
        "  occupancy identical: {occupancy_identical} ({store_entries} entries)   \
         wall-clock speedup: {speedup:.2}x"
    );

    if let Ok(path) = std::env::var("DOTM_BENCH_JSON") {
        write_json(
            &path,
            &[
                ("bench", "\"shard_speedup\"".into()),
                ("workers", workers.to_string()),
                ("macros", fp_single.len().to_string()),
                ("journal_bytes", journal_bytes.to_string()),
                ("store_entries", store_entries.to_string()),
                ("fingerprints_identical", fingerprints_identical.to_string()),
                ("journals_identical", journals_identical.to_string()),
                ("accounting_identical", accounting_identical.to_string()),
                ("occupancy_identical", occupancy_identical.to_string()),
                ("single_wall_ms", format!("{:.1}", secs_single * 1e3)),
                ("sharded_wall_ms", format!("{:.1}", secs_sharded * 1e3)),
                ("shard_speedup", format!("{speedup:.3}")),
            ],
        );
    }

    let _ = std::fs::remove_dir_all(&root);

    if !(fingerprints_identical
        && journals_identical
        && accounting_identical
        && occupancy_identical)
    {
        eprintln!("[dotm] FAIL: sharded campaign is not byte-identical to single-process");
        std::process::exit(1);
    }
    let min_speedup = dotm_core::env::shard_min_speedup();
    if speedup < min_speedup {
        eprintln!("[dotm] FAIL: wall-clock speedup {speedup:.2}x < {min_speedup}x");
        std::process::exit(1);
    }
}
