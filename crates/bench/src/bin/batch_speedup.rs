//! Batched-assembly validation: runs the fixed-seed ladder anchor (the
//! same population `tests/determinism.rs` pins to 645 faults in 417
//! classes) once with scalar per-variant assembly and once with the
//! split-plan batched path (static stamps hoisted into shared per-class
//! baselines, variants replaying only the dynamic delta), then
//!
//! * asserts the two reports are **bit-for-bit identical** — batching
//!   preserves the per-cell addition sequence exactly, so unlike the
//!   rank-update bench this is an equality gate, not a verdict-band gate,
//! * counts detection-verdict flips per class anyway (always 0 when the
//!   fingerprints match; kept as an explicit counter so the baseline
//!   comparison pins it), and
//! * measures the assembly-phase wall-clock both ways through the
//!   `dotm-obs` accumulators (the batch path's baseline builds and
//!   replays run *inside* `assembly` spans, so the comparison is
//!   like-for-like).
//!
//! Knobs: `DOTM_DEFECTS` (sprinkle size, default 20000), `DOTM_SEED`
//! (default 2026), `DOTM_GS_COMMON`/`DOTM_GS_MM` (good-space sizes,
//! default 3×2), `DOTM_MAX_CLASSES` (0 = full population, the default),
//! `DOTM_BATCH_MIN_SPEEDUP` (gate on the assembly-phase ratio, default
//! 1.3), `DOTM_BENCH_JSON` (write the machine-readable summary here).
//!
//! Exits non-zero if the reports differ in any bit, a verdict flips, or
//! the assembly-phase reduction falls below the speedup gate.

use dotm_bench::{env_u64, env_usize, obs_finish, obs_fold_solver};
use dotm_core::harnesses::LadderHarness;
use dotm_core::{
    run_macro_path_with_faults, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig,
};
use dotm_defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use std::time::Instant;

fn config(batch: bool) -> PipelineConfig {
    let max_classes = match env_usize("DOTM_MAX_CLASSES", 0) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 20_000),
        seed: env_u64("DOTM_SEED", 2026),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 3),
            mismatch_samples: env_usize("DOTM_GS_MM", 2),
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        max_classes,
        non_catastrophic: true,
        // The measurement cache stays off in both passes so every class
        // actually assembles its systems and the phase profile measures
        // stamping work, not cache replay. Everything else keeps its
        // defaults in both passes — the two runs differ only in the
        // assembly strategy.
        warm_start: true,
        measure_cache: false,
        batch_assembly: batch,
        ..PipelineConfig::default()
    }
}

struct Pass {
    report: MacroReport,
    seconds: f64,
    assembly_ns: u64,
    batch_ns: u64,
}

fn phase_ns(name: &str) -> u64 {
    dotm_obs::phase_totals()
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, ns)| *ns)
        .unwrap_or(0)
}

fn run(batch: bool, collapsed: &CollapseReport, area: f64) -> Pass {
    let cfg = config(batch);
    let span = dotm_obs::span(if batch { "batch pass" } else { "scalar pass" }, "campaign");
    let as0 = phase_ns("assembly");
    let ba0 = phase_ns("batch_assembly");
    let t0 = Instant::now();
    let report = run_macro_path_with_faults(&LadderHarness, &cfg, collapsed, area)
        .expect("ladder path must run");
    let seconds = t0.elapsed().as_secs_f64();
    drop(span);
    Pass {
        report,
        seconds,
        assembly_ns: phase_ns("assembly") - as0,
        batch_ns: phase_ns("batch_assembly") - ba0,
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("{name}: expected a number, got {v:?}")),
        Err(_) => default,
    }
}

fn write_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[dotm] bench summary: {path}"),
        Err(e) => {
            eprintln!("[dotm] bench summary write failed ({path}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // The phase accumulators are the measurement instrument here, so the
    // recorder is always on; `DOTM_TRACE` additionally exports the trace
    // files via `obs_finish` as usual.
    let trace = dotm_core::env::trace();
    dotm_obs::set_enabled(true);
    let cfg = config(false);
    let layout = LadderHarness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    println!(
        "ladder anchor, scalar vs batched per-class assembly \
         ({} defects, seed {})",
        cfg.defects, cfg.seed
    );

    let base = run(false, &collapsed, area);
    let bs = base.report.solver_totals();
    println!(
        "  scalar: {:.2}s  {} NR solves, {} iterations, assembly phase {:.3}s ({} classes)",
        base.seconds,
        bs.nr_solves,
        bs.nr_iterations,
        base.assembly_ns as f64 / 1e9,
        base.report.outcomes.len()
    );
    let fast = run(true, &collapsed, area);
    let fs = fast.report.solver_totals();
    println!(
        "  batch:  {:.2}s  {} NR solves, {} iterations, assembly phase {:.3}s \
         (incl. baseline builds {:.3}s, {} classes)",
        fast.seconds,
        fs.nr_solves,
        fs.nr_iterations,
        fast.assembly_ns as f64 / 1e9,
        fast.batch_ns as f64 / 1e9,
        fast.report.outcomes.len()
    );

    // The contract is stronger than verdict preservation: the batched
    // path must reproduce the scalar report bit for bit.
    let identical = base.report.fingerprint() == fast.report.fingerprint();
    let mut flipped = 0usize;
    assert_eq!(
        base.report.outcomes.len(),
        fast.report.outcomes.len(),
        "class lists diverged"
    );
    for (a, b) in base.report.outcomes.iter().zip(&fast.report.outcomes) {
        assert_eq!(a.key, b.key, "class order diverged");
        if a.detection != b.detection || a.voltage != b.voltage || a.currents != b.currents {
            eprintln!("  VERDICT FLIP in class {}", a.key);
            flipped += 1;
        }
    }
    let speedup = base.assembly_ns as f64 / fast.assembly_ns.max(1) as f64;
    println!(
        "  bitwise identical: {identical}   verdict flips: {flipped}   \
         assembly-phase speedup: {speedup:.2}x"
    );

    if let Ok(path) = std::env::var("DOTM_BENCH_JSON") {
        write_json(
            &path,
            &[
                ("bench", "\"batch_speedup\"".into()),
                ("defects", cfg.defects.to_string()),
                ("seed", cfg.seed.to_string()),
                ("classes", base.report.outcomes.len().to_string()),
                ("base_nr_solves", bs.nr_solves.to_string()),
                ("base_nr_iterations", bs.nr_iterations.to_string()),
                ("fast_nr_solves", fs.nr_solves.to_string()),
                ("fast_nr_iterations", fs.nr_iterations.to_string()),
                ("factor_reuse_hits", fs.factor_reuse_hits.to_string()),
                (
                    "factor_refactor_fallbacks",
                    fs.factor_refactor_fallbacks.to_string(),
                ),
                ("verdict_flips", flipped.to_string()),
                ("bitwise_identical", identical.to_string()),
                (
                    "hit_pct",
                    format!(
                        "{:.2}",
                        100.0 * fs.factor_reuse_hits as f64 / fs.nr_iterations.max(1) as f64
                    ),
                ),
                ("base_assembly_ns", base.assembly_ns.to_string()),
                ("fast_assembly_ns", fast.assembly_ns.to_string()),
                ("fast_batch_assembly_ns", fast.batch_ns.to_string()),
                ("batch_speedup", format!("{speedup:.3}")),
                ("base_wall_ms", format!("{:.1}", base.seconds * 1e3)),
                ("fast_wall_ms", format!("{:.1}", fast.seconds * 1e3)),
            ],
        );
    }

    dotm_obs::set_enabled(trace);
    let mut both = bs;
    both += fs;
    obs_fold_solver(&both);
    obs_finish("batch_speedup");

    let min_speedup = env_f64("DOTM_BATCH_MIN_SPEEDUP", 1.3);
    if !identical {
        eprintln!("[dotm] FAIL: batched report is not bit-identical to the scalar report");
        std::process::exit(1);
    }
    if flipped > 0 {
        eprintln!("[dotm] FAIL: {flipped} verdict flips");
        std::process::exit(1);
    }
    if speedup < min_speedup {
        eprintln!("[dotm] FAIL: assembly-phase speedup {speedup:.2}x < {min_speedup}x");
        std::process::exit(1);
    }
}
