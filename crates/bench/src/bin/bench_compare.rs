//! Perf-trajectory comparator: diffs a bench summary JSON (as written by
//! `lu_speedup` via `DOTM_BENCH_JSON`) against a committed baseline.
//!
//! Only the *deterministic counter* metrics are compared — solve and
//! iteration counts, reuse occupancy, verdict flips. Wall-clock and
//! nanosecond fields vary with the runner and are reported but never
//! diffed; the trajectory of those lives in the uploaded CI artifacts.
//!
//! ```text
//! bench_compare <baseline.json> <current.json>
//! ```
//!
//! A counter drift prints a loud field-by-field diff. The exit is *soft*
//! by default (status 0, so noisy runners never block a merge on a number
//! that a legitimate solver change is allowed to move — the diff in the
//! log is the review artifact); set `DOTM_BENCH_STRICT=1` to turn drifts
//! into a non-zero exit.

use std::collections::BTreeMap;
use std::process::exit;

/// Counter fields that must match the baseline exactly. Everything else
/// in the summary (timings, ratios derived from timings) is informational.
const COUNTER_FIELDS: &[&str] = &[
    "bench",
    "defects",
    "seed",
    "classes",
    "base_nr_solves",
    "base_nr_iterations",
    "fast_nr_solves",
    "fast_nr_iterations",
    "factor_reuse_hits",
    "factor_refactor_fallbacks",
    "verdict_flips",
    "hit_pct",
    // shard_speedup counters: byte-identity verdicts and deterministic
    // store/journal occupancy of the sharded-vs-single comparison.
    "workers",
    "macros",
    "journal_bytes",
    "store_entries",
    "fingerprints_identical",
    "journals_identical",
    "accounting_identical",
    "occupancy_identical",
    // serve_roundtrip counters: the campaign-service contract verdicts
    // and the deterministic event/report sizes of the anchor job.
    "progress_events",
    "report_bytes",
    "report_identical",
    "cached_dedup",
    "warm_solver_free",
    "shutdown_clean",
    // variant_speedup counter: how many variant lanes the lockstep
    // pre-pass primed on the fixed-seed anchor — deterministic; a drift
    // means the adoption guards (or the class population) changed.
    "prime_hits",
];

/// Parses the flat one-level JSON object the bench bins emit: string,
/// number and bare-word values only, no nesting, no escapes. Anything
/// fancier is a parse error — the writer in this repo never produces it.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, String>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut map = BTreeMap::new();
    for raw in body.split(',') {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed entry: {line}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key: {key}"))?;
        let value = value.trim().trim_matches('"');
        map.insert(key.to_string(), value.to_string());
    }
    if map.is_empty() {
        return Err("empty object".into());
    }
    Ok(map)
}

fn load(path: &str) -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[dotm] cannot read {path}: {e}");
        exit(2);
    });
    parse_flat_json(&text).unwrap_or_else(|e| {
        eprintln!("[dotm] cannot parse {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = match args.as_slice() {
        [a, b] => [a.clone(), b.clone()],
        _ => {
            eprintln!("usage: bench_compare <baseline.json> <current.json>");
            exit(2);
        }
    };
    let baseline = load(&baseline_path);
    let current = load(&current_path);

    let mut drifts = 0usize;
    println!("bench counter comparison ({current_path} vs {baseline_path})");
    for &field in COUNTER_FIELDS {
        let base = baseline.get(field).map(String::as_str);
        let cur = current.get(field).map(String::as_str);
        match (base, cur) {
            (Some(b), Some(c)) if b == c => {
                println!("  {field:<28} {c:>14}   ok");
            }
            (Some(b), Some(c)) => {
                println!("  {field:<28} {c:>14}   DRIFT (baseline {b})");
                drifts += 1;
            }
            // A field absent on *both* sides simply doesn't apply to
            // this bench's summary shape — one comparator serves all the
            // bench bins, each of which emits its own counter subset.
            (None, None) => {}
            (b, c) => {
                println!(
                    "  {field:<28} {:>14}   MISSING (baseline {})",
                    c.unwrap_or("-"),
                    b.unwrap_or("-")
                );
                drifts += 1;
            }
        }
    }
    // Timing fields: always shown, never gated. The union of every bench
    // bin's timing fields — absent ones are simply skipped, so one
    // comparator serves all the summaries.
    for field in [
        "base_lu_ns",
        "fast_lu_ns",
        "fast_rank_update_ns",
        "lu_speedup",
        "bitwise_identical",
        "base_assembly_ns",
        "fast_assembly_ns",
        "fast_batch_assembly_ns",
        "batch_speedup",
        "fast_lockstep_ns",
        "variant_speedup",
        "single_wall_ms",
        "sharded_wall_ms",
        "shard_speedup",
        "cli_wall_ms",
        "serve_wall_ms",
    ] {
        if let Some(c) = current.get(field) {
            let b = baseline.get(field).map(String::as_str).unwrap_or("-");
            println!("  {field:<28} {c:>14}   (timing; baseline {b})");
        }
    }

    if drifts == 0 {
        println!("bench counters match the committed baseline");
        return;
    }
    println!(
        "{drifts} counter metric(s) drifted from {baseline_path} — if the \
         change is intentional, regenerate the baseline in the same commit"
    );
    if dotm_core::env::bool_knob("DOTM_BENCH_STRICT", false) {
        exit(1);
    }
}
