//! Warm-start / measurement-cache validation: runs the fixed-seed ladder
//! anchor (the same population `tests/determinism.rs` pins to 645 faults
//! in 417 classes) once cold and once with warm-start continuation plus
//! the memoized measurement cache, then
//!
//! * asserts the **detection verdict of every class is identical** — the
//!   optimisations may only change solver effort, never a result, and
//! * prints the honest Newton–Raphson totals both ways, so the saving is
//!   measurable on a single core (it is an iteration count, not a
//!   wall-clock race).
//!
//! Knobs: `DOTM_DEFECTS` (sprinkle size, default 20000), `DOTM_SEED`
//! (default 2026), `DOTM_GS_COMMON`/`DOTM_GS_MM` (good-space sizes,
//! default 3×2), `DOTM_MAX_CLASSES` (0 = full population, the default).
//!
//! Exits non-zero if a verdict flips or the warm path does not reduce
//! the NR iteration count, so CI can gate on both claims.

use dotm_bench::{env_u64, env_usize, obs_finish, obs_fold_solver, obs_init};
use dotm_core::harnesses::LadderHarness;
use dotm_core::{
    run_macro_path_with_faults, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig,
};
use dotm_defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use std::time::Instant;

fn config(warm: bool) -> PipelineConfig {
    let max_classes = match env_usize("DOTM_MAX_CLASSES", 0) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 20_000),
        seed: env_u64("DOTM_SEED", 2026),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 3),
            mismatch_samples: env_usize("DOTM_GS_MM", 2),
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        max_classes,
        non_catastrophic: true,
        warm_start: warm,
        measure_cache: warm,
        ..PipelineConfig::default()
    }
}

fn run(warm: bool, collapsed: &CollapseReport, area: f64) -> (MacroReport, f64) {
    let cfg = config(warm);
    let span = dotm_obs::span(if warm { "warm pass" } else { "cold pass" }, "campaign");
    let t0 = Instant::now();
    let report = run_macro_path_with_faults(&LadderHarness, &cfg, collapsed, area)
        .expect("ladder path must run");
    let seconds = t0.elapsed().as_secs_f64();
    drop(span);
    (report, seconds)
}

fn main() {
    obs_init();
    let cfg = config(false);
    let layout = LadderHarness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    println!(
        "ladder anchor, cold homotopy vs warm-start + measurement cache \
         ({} defects, seed {})",
        cfg.defects, cfg.seed
    );

    let (cold, cold_s) = run(false, &collapsed, area);
    let cs = cold.solver_totals();
    println!(
        "  cold:  {:.2}s  {} NR solves, {} iterations ({} classes)",
        cold_s,
        cs.nr_solves,
        cs.nr_iterations,
        cold.outcomes.len()
    );
    let (warm, warm_s) = run(true, &collapsed, area);
    let ws = warm.solver_totals();
    println!(
        "  warm:  {:.2}s  {} NR solves, {} iterations ({} classes)",
        warm_s,
        ws.nr_solves,
        ws.nr_iterations,
        warm.outcomes.len()
    );
    println!(
        "  warm starts: {} hits, {} misses; cache: {} lookups, {} entries, {} hits",
        ws.warm_hits,
        ws.warm_misses,
        warm.cache_lookups,
        warm.cache_entries,
        warm.cache_hits()
    );

    // The verdicts — not the solver effort — must be identical per class.
    let mut flipped = 0usize;
    assert_eq!(
        cold.outcomes.len(),
        warm.outcomes.len(),
        "class lists diverged"
    );
    for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(a.key, b.key, "class order diverged");
        if a.detection != b.detection || a.voltage != b.voltage || a.currents != b.currents {
            eprintln!("  VERDICT FLIP in class {}", a.key);
            flipped += 1;
        }
    }
    let saved = cs.nr_iterations.saturating_sub(ws.nr_iterations);
    println!(
        "  verdict flips: {flipped}   NR iterations saved: {saved} ({:.1}%)",
        100.0 * saved as f64 / cs.nr_iterations.max(1) as f64
    );
    let mut both = cs;
    both += ws;
    obs_fold_solver(&both);
    obs_finish("warm_speedup");
    if flipped > 0 || ws.nr_iterations >= cs.nr_iterations {
        std::process::exit(1);
    }
}
