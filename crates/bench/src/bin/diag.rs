//! Diagnostic: lists every fault class of the comparator path with its
//! signature and detections, then the undetected classes — the input to
//! the paper's DfT analysis ("the methodology used makes it easy to
//! investigate the reasons for the undetectability of faults").

use dotm_bench::{comparator_report, print_macro_accounting, run_with_progress};
use dotm_core::harnesses::{BiasHarness, ClockgenHarness, DecoderHarness, LadderHarness};
use dotm_faults::Severity;

fn main() {
    let dft = dotm_core::env::bool_knob("DOTM_DFT", false);
    let which = std::env::var("DOTM_MACRO").unwrap_or_else(|_| "comparator".into());
    let report = match which.as_str() {
        "ladder" => run_with_progress(&LadderHarness),
        "bias" => run_with_progress(&BiasHarness::default()),
        "clockgen" => run_with_progress(&ClockgenHarness::default()),
        "decoder" => run_with_progress(&DecoderHarness::default()),
        _ => comparator_report(dft),
    };
    for severity in [Severity::Catastrophic, Severity::NonCatastrophic] {
        println!();
        println!("=== {severity:?} ===");
        let total = report.weight_of(severity);
        let mut undetected = 0.0;
        for o in report.outcomes_of(severity) {
            let mark = if o.detection.detected() { " " } else { "!" };
            println!(
                "{mark} {:>5}x {:<20} v={:<13} mc={} i=({},{},{}) sh={} {}",
                o.count,
                o.mechanism.to_string(),
                format!("{:?}", o.voltage),
                o.detection.missing_code as u8,
                o.currents.ivdd as u8,
                o.currents.iddq as u8,
                o.currents.iinput as u8,
                o.shared as u8,
                &o.key[..o.key.len().min(70)]
            );
            if !o.detection.detected() {
                undetected += o.count as f64;
            }
        }
        println!(
            "undetected: {:.1}% of {total} weighted faults",
            100.0 * undetected / total.max(1.0)
        );
    }
    print_macro_accounting(&report);
}
