//! Regenerates **Table 2**: voltage fault signatures of the comparator
//! macro (% of catastrophic and non-catastrophic faults per signature).
//!
//! Paper anchors: "many of the faults cause a stuck-at behavior of the
//! comparator... due to the balanced nature of the design and the small
//! biasing currents"; for non-catastrophic faults the clock-value
//! signature becomes more important.

use dotm_bench::{comparator_report, print_macro_accounting, rule};
use dotm_core::voltage_table;

fn main() {
    let report = comparator_report(false);
    let rows = voltage_table(&report);
    println!();
    println!("Table 2: Voltage fault signatures comparator");
    println!();
    println!(
        "{:<18} {:>12} {:>16}",
        "fault signature", "% cat faults", "% non-cat faults"
    );
    rule(50);
    for row in &rows {
        println!(
            "{:<18} {:>11.1}% {:>15.1}%",
            row.signature.to_string(),
            row.catastrophic_pct,
            row.non_catastrophic_pct
        );
    }
    rule(50);
    let stuck = &rows[0];
    println!();
    println!(
        "stuck-at dominates the voltage signatures: {:.1}% cat / {:.1}% non-cat",
        stuck.catastrophic_pct, stuck.non_catastrophic_pct
    );
    let cv = &rows[3];
    println!(
        "clock-value share: {:.1}% cat vs {:.1}% non-cat (paper: grows for non-catastrophic)",
        cv.catastrophic_pct, cv.non_catastrophic_pct
    );
    print_macro_accounting(&report);
}
