//! Validates an NDJSON trace file produced by a `DOTM_TRACE=1` run.
//!
//! ```text
//! tracecheck <trace.ndjson>...
//! ```
//!
//! For each file, parses every line with [`dotm_obs::validate_ndjson`]
//! and checks the structural invariants (unique span ids, parents that
//! exist on the same thread and contain their children's intervals).
//! Prints a one-line summary per file; exits non-zero on the first
//! malformed file, so `scripts/verify.sh` can gate on trace validity
//! without a JSON tool in the container.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: tracecheck <trace.ndjson>...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let input = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tracecheck: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match dotm_obs::validate_ndjson(&input) {
            Ok(summary) => println!(
                "{path}: ok — {} spans ({} roots), {} phases, {} counters",
                summary.spans, summary.roots, summary.phases, summary.counters
            ),
            Err(e) => {
                eprintln!("tracecheck: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
