//! Lockstep-variant validation: runs the fixed-seed ladder anchor (the
//! same population `tests/determinism.rs` pins to 645 faults in 417
//! classes) once with the sequential per-variant walk and once with the
//! lockstep SoA path (every variant lane's first DC Newton system
//! captured in a stats-free pre-pass and factored by one blocked
//! `[cell][lane]` LU kernel with per-lane pivoting), then
//!
//! * asserts the two reports are **bit-for-bit identical** — an adopted
//!   prime replays the exact bytes the sequential walk would have
//!   assembled and factored, so like the batch-assembly bench this is an
//!   equality gate, not a verdict-band gate,
//! * counts detection-verdict flips per class anyway (always 0 when the
//!   fingerprints match; kept as an explicit counter so the baseline
//!   comparison pins it),
//! * asserts the pre-pass actually fired (`lockstep.prime_hits` > 0) —
//!   a refused guard silently degrading to the sequential walk would
//!   otherwise pass every identity check while benchmarking nothing, and
//! * measures the class-evaluation solver work both ways through the
//!   `dotm-obs` accumulators: the gate is the cut in the `assembly` +
//!   `lu` phases (the same convention `batch_speedup` uses for its
//!   assembly-phase gate), and the `variant_lockstep` phase the primed
//!   work moved into is measured and reported right beside it — both in
//!   the printed summary and in the JSON — so the pre-pass cost is
//!   never hidden.
//!
//! Knobs: `DOTM_DEFECTS` (sprinkle size, default 20000), `DOTM_SEED`
//! (default 2026), `DOTM_GS_COMMON`/`DOTM_GS_MM` (good-space sizes,
//! default 3×2), `DOTM_MAX_CLASSES` (0 = full population, the default),
//! `DOTM_VARIANT_MIN_SPEEDUP` (gate on the phase-work ratio, default 0 —
//! identity-only; `scripts/verify.sh` and CI set 1.3),
//! `DOTM_BENCH_JSON` (write the machine-readable summary here).
//!
//! Exits non-zero if the reports differ in any bit, a verdict flips, the
//! pre-pass never fired, or the phase-work reduction falls below the
//! speedup gate.

use dotm_bench::{env_u64, env_usize, obs_finish, obs_fold_solver};
use dotm_core::harnesses::LadderHarness;
use dotm_core::{
    run_macro_path_with_faults, GoodSpaceConfig, MacroHarness, MacroReport, PipelineConfig,
};
use dotm_defects::{sprinkle_collapsed, CollapseReport, Sprinkler};
use std::time::Instant;

fn config(lockstep: bool) -> PipelineConfig {
    let max_classes = match env_usize("DOTM_MAX_CLASSES", 0) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 20_000),
        seed: env_u64("DOTM_SEED", 2026),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 3),
            mismatch_samples: env_usize("DOTM_GS_MM", 2),
            seed: 5,
            ..GoodSpaceConfig::default()
        },
        max_classes,
        // Near-miss severities give bridge classes two lanes, so the
        // blocked kernel has real multi-lane groups to factor.
        non_catastrophic: true,
        // The measurement cache stays off in both passes so every lane
        // actually assembles and factors its systems and the phase
        // profile measures solver work, not cache replay. Everything
        // else keeps its defaults in both passes — the two runs differ
        // only in the lockstep knob.
        warm_start: true,
        measure_cache: false,
        variant_lockstep: lockstep,
        ..PipelineConfig::default()
    }
}

struct Pass {
    report: MacroReport,
    seconds: f64,
    assembly_ns: u64,
    lu_ns: u64,
    lockstep_ns: u64,
    prime_hits: u64,
}

fn phase_ns(name: &str) -> u64 {
    dotm_obs::phase_totals()
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, ns)| *ns)
        .unwrap_or(0)
}

fn counter_total(name: &str) -> u64 {
    dotm_obs::counters_snapshot()
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn run(lockstep: bool, collapsed: &CollapseReport, area: f64) -> Pass {
    let cfg = config(lockstep);
    let span = dotm_obs::span(
        if lockstep {
            "lockstep pass"
        } else {
            "sequential pass"
        },
        "campaign",
    );
    let as0 = phase_ns("assembly");
    let lu0 = phase_ns("lu");
    let ls0 = phase_ns("variant_lockstep");
    let ph0 = counter_total("lockstep.prime_hits");
    let t0 = Instant::now();
    let report = run_macro_path_with_faults(&LadderHarness, &cfg, collapsed, area)
        .expect("ladder path must run");
    let seconds = t0.elapsed().as_secs_f64();
    drop(span);
    Pass {
        report,
        seconds,
        assembly_ns: phase_ns("assembly") - as0,
        lu_ns: phase_ns("lu") - lu0,
        lockstep_ns: phase_ns("variant_lockstep") - ls0,
        prime_hits: counter_total("lockstep.prime_hits") - ph0,
    }
}

fn write_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[dotm] bench summary: {path}"),
        Err(e) => {
            eprintln!("[dotm] bench summary write failed ({path}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // The phase accumulators are the measurement instrument here, so the
    // recorder is always on; `DOTM_TRACE` additionally exports the trace
    // files via `obs_finish` as usual.
    let trace = dotm_core::env::trace();
    dotm_obs::set_enabled(true);
    let cfg = config(false);
    let layout = LadderHarness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    println!(
        "ladder anchor, sequential vs lockstep variant evaluation \
         ({} defects, seed {})",
        cfg.defects, cfg.seed
    );

    let base = run(false, &collapsed, area);
    let bs = base.report.solver_totals();
    let base_work = base.assembly_ns + base.lu_ns;
    println!(
        "  sequential: {:.2}s  {} NR solves, {} iterations, assembly+lu {:.3}s ({} classes)",
        base.seconds,
        bs.nr_solves,
        bs.nr_iterations,
        base_work as f64 / 1e9,
        base.report.outcomes.len()
    );
    assert_eq!(
        base.prime_hits, 0,
        "the sequential pass must never adopt a prime"
    );
    let fast = run(true, &collapsed, area);
    let fs = fast.report.solver_totals();
    let fast_work = fast.assembly_ns + fast.lu_ns;
    println!(
        "  lockstep:   {:.2}s  {} NR solves, {} iterations, assembly+lu {:.3}s \
         (+ pre-pass {:.3}s, {} prime hits, {} classes)",
        fast.seconds,
        fs.nr_solves,
        fs.nr_iterations,
        fast_work as f64 / 1e9,
        fast.lockstep_ns as f64 / 1e9,
        fast.prime_hits,
        fast.report.outcomes.len()
    );

    // The contract is stronger than verdict preservation: the lockstep
    // path must reproduce the sequential report bit for bit.
    let identical = base.report.fingerprint() == fast.report.fingerprint();
    let mut flipped = 0usize;
    assert_eq!(
        base.report.outcomes.len(),
        fast.report.outcomes.len(),
        "class lists diverged"
    );
    for (a, b) in base.report.outcomes.iter().zip(&fast.report.outcomes) {
        assert_eq!(a.key, b.key, "class order diverged");
        if a.detection != b.detection || a.voltage != b.voltage || a.currents != b.currents {
            eprintln!("  VERDICT FLIP in class {}", a.key);
            flipped += 1;
        }
    }
    let speedup = base_work as f64 / fast_work.max(1) as f64;
    println!(
        "  bitwise identical: {identical}   verdict flips: {flipped}   \
         class-eval phase speedup: {speedup:.2}x"
    );

    if let Ok(path) = std::env::var("DOTM_BENCH_JSON") {
        write_json(
            &path,
            &[
                ("bench", "\"variant_speedup\"".into()),
                ("defects", cfg.defects.to_string()),
                ("seed", cfg.seed.to_string()),
                ("classes", base.report.outcomes.len().to_string()),
                ("base_nr_solves", bs.nr_solves.to_string()),
                ("base_nr_iterations", bs.nr_iterations.to_string()),
                ("fast_nr_solves", fs.nr_solves.to_string()),
                ("fast_nr_iterations", fs.nr_iterations.to_string()),
                ("prime_hits", fast.prime_hits.to_string()),
                ("verdict_flips", flipped.to_string()),
                ("bitwise_identical", identical.to_string()),
                ("base_assembly_ns", base.assembly_ns.to_string()),
                ("base_lu_ns", base.lu_ns.to_string()),
                ("fast_assembly_ns", fast.assembly_ns.to_string()),
                ("fast_lu_ns", fast.lu_ns.to_string()),
                ("fast_lockstep_ns", fast.lockstep_ns.to_string()),
                ("variant_speedup", format!("{speedup:.3}")),
                ("base_wall_ms", format!("{:.1}", base.seconds * 1e3)),
                ("fast_wall_ms", format!("{:.1}", fast.seconds * 1e3)),
            ],
        );
    }

    dotm_obs::set_enabled(trace);
    let mut both = bs;
    both += fs;
    obs_fold_solver(&both);
    obs_finish("variant_speedup");

    let min_speedup = dotm_core::env::variant_min_speedup();
    if !identical {
        eprintln!("[dotm] FAIL: lockstep report is not bit-identical to the sequential report");
        std::process::exit(1);
    }
    if flipped > 0 {
        eprintln!("[dotm] FAIL: {flipped} verdict flips");
        std::process::exit(1);
    }
    if fast.prime_hits == 0 {
        eprintln!("[dotm] FAIL: the lockstep pre-pass never primed a lane");
        std::process::exit(1);
    }
    if speedup < min_speedup {
        eprintln!("[dotm] FAIL: class-eval phase speedup {speedup:.2}x < {min_speedup}x");
        std::process::exit(1);
    }
}
