//! Test-set compaction study (paper §3.2: "the overlap between different
//! detection mechanisms gives room for the optimization of the test
//! method"): how few of the comparator's current measurements preserve
//! the full current-test coverage?

use dotm_bench::{comparator_report, rule};
use dotm_core::harnesses::ComparatorHarness;
use dotm_core::{compact_current_tests, MacroHarness};
use dotm_faults::Severity;

fn main() {
    let harness = ComparatorHarness::production();
    let report = comparator_report(false);
    let c = compact_current_tests(&harness, &report, Severity::Catastrophic);
    println!();
    println!("Current-test compaction (comparator, catastrophic faults)");
    println!(
        "{} current measurements available; {:.0} weighted faults current-detectable",
        c.available, c.detectable_weight
    );
    println!();
    println!("{:>4} {:<34} {:>10}", "step", "measurement", "coverage");
    rule(52);
    for (i, step) in c.steps.iter().enumerate() {
        println!(
            "{:>4} {:<34} {:>9.1}%",
            i + 1,
            step.label,
            100.0 * step.cumulative_coverage
        );
    }
    rule(52);
    println!();
    if let Some(n90) = c.count_for_coverage(0.90) {
        println!("90% of the current coverage needs only {n90} measurements;");
    }
    println!(
        "full current coverage needs {} of the {} available — the paper's 6-measurement",
        c.selected_count(),
        c.available
    );
    println!("current test (3 phases x 2 input levels) is itself a compacted set");
    let _ = harness.plan();
}
