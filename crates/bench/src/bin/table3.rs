//! Regenerates **Table 3**: current fault signatures of the comparator
//! macro. Rows overlap (a fault may deviate several currents), so the
//! percentages sum to more than 100 % — exactly as the paper notes.
//!
//! Paper anchor: 24.2 % (cat) / 25.6 % (non-cat) of the faults are
//! detectable by measuring the quiescent current of the clock generator
//! (IDDQ) — "striking" for an analog macro.

use dotm_bench::{comparator_report, print_macro_accounting, rule};
use dotm_core::current_table;

fn main() {
    let report = comparator_report(false);
    let rows = current_table(&report);
    println!();
    println!("Table 3: Current fault signatures comparator");
    println!();
    println!(
        "{:<16} {:>12} {:>16}",
        "fault signature", "% cat faults", "% non-cat faults"
    );
    rule(48);
    for row in &rows {
        let name = match row.kind {
            Some(kind) => kind.to_string(),
            None => "No deviations".to_string(),
        };
        println!(
            "{:<16} {:>11.1}% {:>15.1}%",
            name, row.catastrophic_pct, row.non_catastrophic_pct
        );
    }
    rule(48);
    println!();
    println!("note: the first three rows overlap (a fault can deviate several currents)");
    let iddq = &rows[1];
    println!(
        "IDDQ-detectable share: {:.1}% cat / {:.1}% non-cat (paper: 24.2% / 25.6%)",
        iddq.catastrophic_pct, iddq.non_catastrophic_pct
    );
    print_macro_accounting(&report);
}
