//! Campaign-service round-trip gate: boots `campaign --serve` on a
//! loopback port, submits the smoke-size anchor campaign over HTTP,
//! streams its NDJSON progress events, and asserts the service
//! contract end to end:
//!
//! * the HTTP report is **byte-identical** to a plain single-process
//!   CLI campaign over an equivalent fresh store (full `cmp`, not just
//!   fingerprints — the service report *is* a captured CLI stdout);
//! * the progress stream delivers per-class events and terminates with
//!   an explicit `end` event in the `merged` state;
//! * resubmitting the identical config answers `cached:true` from the
//!   finished job without running anything;
//! * a `fresh:true` resubmission re-runs against the warmed store and
//!   performs **zero solver work** (`misses=0 computed=0` in the store
//!   accounting) while reproducing every report fingerprint;
//! * `POST /shutdown` drains and the server exits 0.
//!
//! Knobs: `DOTM_BENCH_JSON` (machine-readable summary), plus the
//! standard campaign knobs. Unset smoke sizes are pinned
//! (`DOTM_DEFECTS=2000`, `DOTM_MAX_CLASSES=8`, 2×2 good space) so the
//! committed baseline matches a plain invocation.
//!
//! Exits non-zero on any contract violation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PINNED: &[(&str, &str)] = &[
    ("DOTM_DEFECTS", "2000"),
    ("DOTM_MAX_CLASSES", "8"),
    ("DOTM_GS_COMMON", "2"),
    ("DOTM_GS_MM", "2"),
];

/// Knobs that must not leak from the invoking shell into either run.
const STALE: &[&str] = &[
    "DOTM_ABORT_AFTER",
    "DOTM_EXPECT_WARM",
    "DOTM_SHARD",
    "DOTM_SHARDS",
    "DOTM_SHARD_ABORT_ONCE",
    "DOTM_SERVE_WORKERS",
    "DOTM_MACROS",
    "DOTM_PROGRESS",
];

fn campaign_exe() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin directory");
    let exe = dir.join(format!("campaign{}", std::env::consts::EXE_SUFFIX));
    if !exe.is_file() {
        eprintln!(
            "[dotm] campaign binary not found at {} — build it first \
             (cargo build --release -p dotm-bench --bin campaign)",
            exe.display()
        );
        std::process::exit(2);
    }
    exe
}

fn pin(cmd: &mut Command, store_dir: &Path) {
    cmd.env("DOTM_STORE_DIR", store_dir);
    for name in STALE {
        cmd.env_remove(name);
    }
    for (k, v) in PINNED {
        if std::env::var_os(k).is_none() {
            cmd.env(k, v);
        }
    }
}

/// The reference: one plain single-process CLI campaign.
fn run_cli(exe: &Path, store_dir: &Path) -> (String, f64) {
    let mut cmd = Command::new(exe);
    pin(&mut cmd, store_dir);
    let t0 = Instant::now();
    let out = cmd.output().unwrap_or_else(|e| {
        eprintln!("[dotm] failed to spawn {}: {e}", exe.display());
        std::process::exit(2);
    });
    let seconds = t0.elapsed().as_secs_f64();
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    if !out.status.success() {
        eprintln!("[dotm] reference campaign exited with {}", out.status);
        std::process::exit(1);
    }
    (String::from_utf8_lossy(&out.stdout).into_owned(), seconds)
}

/// Boots the service and blocks until it announces its bound address.
fn start_server(exe: &Path, store_dir: &Path) -> (Child, String) {
    let mut cmd = Command::new(exe);
    cmd.arg("--serve").arg("127.0.0.1:0");
    pin(&mut cmd, store_dir);
    cmd.stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().unwrap_or_else(|e| {
        eprintln!("[dotm] failed to spawn the service: {e}");
        std::process::exit(2);
    });
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            eprintln!("[dotm] service exited before announcing its address");
            std::process::exit(1);
        }
        eprint!("[serve] {line}");
        if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
            break rest.to_string();
        }
    };
    // Keep forwarding the service's chatter so failures are diagnosable.
    std::thread::spawn(move || {
        for line in reader.lines().map_while(Result::ok) {
            eprintln!("[serve] {line}");
        }
    });
    (child, addr)
}

/// One HTTP exchange: returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("[dotm] connect {addr}: {e}");
        std::process::exit(1);
    });
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("send head");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json_str<'a>(body: &'a str, key: &str) -> &'a str {
    body.split(&format!("\"{key}\":\""))
        .nth(1)
        .map_or("", |s| s.split('"').next().unwrap_or(""))
}

/// Follows the NDJSON event stream to its `end` event. Returns
/// (progress event count, final state).
fn stream_events(addr: &str, id: &str) -> (u64, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /jobs/{id}/events HTTP/1.1\r\n\r\n").expect("send");
    let mut reader = BufReader::new(stream);
    let mut progress = 0u64;
    let mut in_body = false;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return (progress, "stream closed early".into());
        }
        let trimmed = line.trim_end();
        if !in_body {
            in_body = trimmed.is_empty();
            continue;
        }
        if trimmed.contains("\"event\":\"progress\"") {
            progress += 1;
        }
        if trimmed.contains("\"event\":\"end\"") {
            return (progress, json_str(trimmed, "state").to_string());
        }
    }
}

/// Polls the job until it reaches `state` (long deadline — the run does
/// real solver work on a cold store).
fn wait_state(addr: &str, id: &str, state: &str) {
    let needle = format!("\"state\":\"{state}\"");
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), b"");
        if status == 200 && body.contains(&needle) {
            return;
        }
        if Instant::now() > deadline {
            eprintln!("[dotm] job {id} never reached {state}: {body}");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn fingerprints(stdout: &str) -> Vec<(String, String)> {
    stdout
        .lines()
        .filter_map(|l| {
            let fp = l.split("fingerprint=").nth(1)?.trim().to_string();
            let name = l.split_whitespace().next()?.to_string();
            Some((name, fp))
        })
        .collect()
}

fn accounting_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("campaign store accounting:"))
        .unwrap_or("")
}

fn write_json(path: &str, fields: &[(&str, String)]) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[dotm] bench summary: {path}"),
        Err(e) => {
            eprintln!("[dotm] bench summary write failed ({path}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let exe = campaign_exe();
    let root = std::env::temp_dir().join(format!("dotm-serve-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Both runs use the SAME store path — the report's header names the
    // store directory, so byte-identity requires it. The store is wiped
    // between the runs so both are equally cold.
    let store = root.join("store");

    println!("campaign service round-trip (HTTP vs CLI byte-identity)");
    let (cli_out, cli_secs) = run_cli(&exe, &store);
    println!("  CLI reference: {cli_secs:>6.2}s");

    std::fs::remove_dir_all(&store).expect("wipe the store between the runs");
    let (mut server, addr) = start_server(&exe, &store);

    // Submit the anchor job (empty body = the service's pinned env) and
    // follow its event stream to completion.
    let t0 = Instant::now();
    let (status, submitted) = http(&addr, "POST", "/jobs", b"{}");
    if status != 202 {
        eprintln!("[dotm] submit: expected 202, got {status}: {submitted}");
        std::process::exit(1);
    }
    let id = json_str(&submitted, "id").to_string();
    let (progress_events, end_state) = stream_events(&addr, &id);
    let serve_secs = t0.elapsed().as_secs_f64();
    println!("  service run:   {serve_secs:>6.2}s  ({progress_events} progress events, end state {end_state})");
    if end_state != "merged" {
        eprintln!("[dotm] job ended in {end_state}, not merged");
        std::process::exit(1);
    }

    let (status, report) = http(&addr, "GET", &format!("/jobs/{id}/report"), b"");
    let report_identical = status == 200 && report == cli_out;
    if !report_identical {
        eprintln!("  REPORT MISMATCH: HTTP report differs from the CLI bytes");
    }
    let fp_cold = fingerprints(&report);

    // Dedup: the identical config answers from the finished job.
    let (status, cached) = http(&addr, "POST", "/jobs", b"{}");
    let cached_dedup = status == 200 && cached.contains("\"cached\":true");
    if !cached_dedup {
        eprintln!(
            "  DEDUP FAILED: resubmission was not answered from the store ({status}: {cached})"
        );
    }

    // Warm re-run: forced fresh attempt over the warmed store must do
    // zero solver work and reproduce every fingerprint.
    let (status, _) = http(&addr, "POST", "/jobs", b"{\"fresh\":true}");
    if status != 202 {
        eprintln!("[dotm] fresh resubmit: expected 202, got {status}");
        std::process::exit(1);
    }
    wait_state(&addr, &id, "merged");
    let (_, warm_report) = http(&addr, "GET", &format!("/jobs/{id}/report"), b"");
    let warm_accounting = accounting_line(&warm_report);
    let warm_solver_free =
        warm_accounting.contains(" misses=0 ") && warm_accounting.contains(" computed=0 ");
    let fingerprints_identical = !fp_cold.is_empty() && fp_cold == fingerprints(&warm_report);
    if !warm_solver_free {
        eprintln!("  WARM RUN WENT COLD: {warm_accounting}");
    }
    if !fingerprints_identical {
        eprintln!("  FINGERPRINT MISMATCH between cold and warm service runs");
    }

    let (status, _) = http(&addr, "POST", "/shutdown", b"");
    let shutdown_clean = status == 200 && server.wait().map(|s| s.success()).unwrap_or(false);
    if !shutdown_clean {
        eprintln!("  SHUTDOWN FAILED: the service did not drain and exit 0");
        let _ = server.kill();
    }

    println!(
        "  report identical: {report_identical}   cached dedup: {cached_dedup}   \
         warm solver-free: {warm_solver_free}"
    );
    println!(
        "  fingerprints identical: {fingerprints_identical}   clean shutdown: {shutdown_clean}"
    );

    if let Ok(path) = std::env::var("DOTM_BENCH_JSON") {
        write_json(
            &path,
            &[
                ("bench", "\"serve_roundtrip\"".into()),
                ("macros", fp_cold.len().to_string()),
                ("progress_events", progress_events.to_string()),
                ("report_bytes", report.len().to_string()),
                ("report_identical", report_identical.to_string()),
                ("cached_dedup", cached_dedup.to_string()),
                ("warm_solver_free", warm_solver_free.to_string()),
                ("fingerprints_identical", fingerprints_identical.to_string()),
                ("shutdown_clean", shutdown_clean.to_string()),
                ("cli_wall_ms", format!("{:.1}", cli_secs * 1e3)),
                ("serve_wall_ms", format!("{:.1}", serve_secs * 1e3)),
            ],
        );
    }

    let _ = std::fs::remove_dir_all(&root);

    if !(report_identical
        && cached_dedup
        && warm_solver_free
        && fingerprints_identical
        && shutdown_clean
        && progress_events > 0)
    {
        eprintln!("[dotm] FAIL: the campaign service broke its round-trip contract");
        std::process::exit(1);
    }
}
