//! # dotm-bench — reproduction harness for the paper's tables and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure of
//! Kuijstermans et al. (ED&TC 1995):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — catastrophic faults & classes for the comparator |
//! | `table2` | Table 2 — voltage fault signatures of the comparator |
//! | `table3` | Table 3 — current fault signatures of the comparator |
//! | `fig3` | Fig. 3 — detectability overlap for comparator faults |
//! | `fig4` | Fig. 4 — global detectability (catastrophic / non-catastrophic) |
//! | `fig5` | Fig. 5 — global detectability after the DfT measures |
//! | `test_time` | §3.2/§4 — test-time comparison |
//! | `sigma_sweep` | ablation: good-space width vs coverage |
//!
//! Runs are deterministic. Environment knobs (all optional):
//! `DOTM_DEFECTS` (pilot sprinkle size, default 25000),
//! `DOTM_TABLE1_FULL` (Table 1 recount size, default 10000000),
//! `DOTM_GS_COMMON` / `DOTM_GS_MM` (good-space Monte-Carlo sizes),
//! `DOTM_MAX_CLASSES` (truncate to the most frequent classes — smoke runs
//! only), `DOTM_SEED`, `DOTM_THREADS` (worker threads for the parallel
//! executor; changes wall-clock time only, never a number),
//! `DOTM_SIM_FAILURE_POLICY` (`assume-detected` — the paper-parity
//! default — `assume-undetected`, or `exclude`: how classes that never
//! converge, even after the escalation ladder, enter the statistics),
//! `DOTM_WARM_START` (`1`/`0`, default on: seed Newton from the
//! fault-free nominal operating points), `DOTM_MEASURE_CACHE` (`1`/`0`,
//! default on: memoize measurements of structurally identical injected
//! netlists). Both are pure solver-effort knobs — detection verdicts are
//! identical either way, and the cache replays solver telemetry so
//! cache-on reports are bit-identical to cache-off at any thread count.
//! `DOTM_FACTOR_REUSE` (`1`/`0`, default on: bitwise-exact LU factor
//! cache — only the occupancy counters in the accounting move) and
//! `DOTM_RANK_UPDATE` (`1`/`0`, default off: Sherman–Morrison–Woodbury
//! rank-k updates of the nominal factorisation; changes round-off, so the
//! `lu_speedup` bench gates verdict preservation before it is enabled
//! anywhere).
//!
//! The `campaign` binary additionally understands the sharding knobs:
//! `DOTM_SHARD`/`DOTM_SHARDS` (equivalent to `--shard i/N` — evaluate
//! only the i-th contiguous class range and write a journal *segment*),
//! `DOTM_SHARD_RETRIES` (coordinator re-dispatch rounds for crashed
//! workers, default 2) and `DOTM_SHARD_ABORT_ONCE` (fault injection: the
//! first dispatch round's workers abort after that many classes — CI uses
//! it to prove crash-and-re-dispatch merges byte-identically). The
//! `shard_speedup` bench honours `DOTM_SHARD_WORKERS` (default 2) and
//! `DOTM_SHARD_MIN_SPEEDUP` (default 0.0 — identity always gates,
//! wall-clock never does by default).
//!
//! `DOTM_TRACE` (`1`/`0`, default off) turns on the [`dotm_obs`]
//! observability recorder: the binary appends a per-phase wall-clock
//! profile (Newton vs LU vs assembly vs store I/O) to **stderr** and
//! exports `<bin>.ndjson` + `<bin>.trace.json` (chrome://tracing) into
//! `DOTM_TRACE_DIR` (default: the current directory). Tracing is a pure
//! side channel: stdout, report fingerprints, journal bytes and store
//! trees are bit-identical with the recorder on or off.
//!
//! Every binary appends a failure-accounting block after its table: how
//! many classes rest on failed simulations or injections, how many needed
//! solver escalation (and to which rung), and the total solver work. On a
//! healthy paper-parity run the failure counters are all zero.

use dotm_core::harnesses::{
    BiasHarness, ClockgenHarness, ComparatorHarness, DecoderHarness, LadderHarness,
};
use dotm_core::{
    par_map, run_macro_path, ExecConfig, GlobalReport, GoodSpaceConfig, MacroHarness, MacroReport,
    PipelineConfig, SimFailurePolicy,
};

/// Reads a `usize` environment knob (thin wrapper over
/// [`dotm_core::env::usize_knob`], kept for the bench binaries' API).
pub fn env_usize(name: &str, default: usize) -> usize {
    dotm_core::env::usize_knob(name, default)
}

/// Reads a `u64` environment knob (thin wrapper over
/// [`dotm_core::env::u64_knob`]).
pub fn env_u64(name: &str, default: u64) -> u64 {
    dotm_core::env::u64_knob(name, default)
}

/// Reads a boolean environment knob (thin wrapper over
/// [`dotm_core::env::bool_knob`]).
pub fn env_bool(name: &str, default: bool) -> bool {
    dotm_core::env::bool_knob(name, default)
}

/// Reads the `DOTM_SIM_FAILURE_POLICY` knob (default: the paper-parity
/// `AssumeDetected`). An unparsable value aborts loudly rather than
/// silently running with the wrong accounting.
pub fn env_sim_failure_policy() -> SimFailurePolicy {
    dotm_core::env::sim_failure_policy()
}

/// Enables the [`dotm_obs`] recorder when the `DOTM_TRACE` knob is set.
/// Call once at the top of a bench binary's `main`; returns whether
/// tracing is on. When it is off every recorder call collapses to one
/// relaxed atomic load, so binaries wire the spans unconditionally.
pub fn obs_init() -> bool {
    let on = dotm_core::env::trace();
    dotm_obs::set_enabled(on);
    on
}

/// Folds the solver-effort telemetry into the observability counter
/// registry under `sim.*` names (no-op with the recorder off), so the
/// exported trace carries the same 13 words that the report fingerprint
/// covers.
pub fn obs_fold_solver(solver: &dotm_sim::SimStats) {
    if !dotm_obs::enabled() {
        return;
    }
    for (name, value) in dotm_sim::SimStats::WORD_NAMES.iter().zip(solver.to_words()) {
        if value > 0 {
            dotm_obs::counter(&format!("sim.{name}"), value);
        }
    }
}

/// Finishes a traced run: prints the per-phase profile to **stderr**
/// (stdout stays byte-identical to an untraced run) and exports
/// `<label>.ndjson` + `<label>.trace.json` into `DOTM_TRACE_DIR`
/// (default: the current directory). No-op with the recorder off.
pub fn obs_finish(label: &str) {
    if !dotm_obs::enabled() {
        return;
    }
    eprintln!();
    eprint!("{}", dotm_obs::phase_table());
    let dir = dotm_core::env::trace_dir().unwrap_or_else(|| std::path::PathBuf::from("."));
    let ndjson = dir.join(format!("{label}.ndjson"));
    let chrome = dir.join(format!("{label}.trace.json"));
    match dotm_obs::export_ndjson(&ndjson) {
        Ok(()) => eprintln!("[dotm] trace events: {}", ndjson.display()),
        Err(e) => eprintln!("[dotm] trace export failed ({}): {e}", ndjson.display()),
    }
    match dotm_obs::export_chrome(&chrome) {
        Ok(()) => eprintln!("[dotm] chrome trace:  {}", chrome.display()),
        Err(e) => eprintln!("[dotm] trace export failed ({}): {e}", chrome.display()),
    }
}

/// The standard pipeline configuration, honouring the environment knobs.
pub fn standard_config() -> PipelineConfig {
    let max_classes = match dotm_core::env::usize_knob("DOTM_MAX_CLASSES", 0) {
        0 => None,
        n => Some(n),
    };
    PipelineConfig {
        defects: env_usize("DOTM_DEFECTS", 25_000),
        seed: env_u64("DOTM_SEED", 1995),
        goodspace: GoodSpaceConfig {
            common_samples: env_usize("DOTM_GS_COMMON", 5),
            mismatch_samples: env_usize("DOTM_GS_MM", 4),
            seed: env_u64("DOTM_SEED", 1995) ^ 0xD07,
            ..GoodSpaceConfig::default()
        },
        max_classes,
        sim_failure_policy: env_sim_failure_policy(),
        warm_start: dotm_core::env::warm_start(),
        measure_cache: dotm_core::env::measure_cache(),
        factor_reuse: dotm_core::env::factor_reuse(),
        rank_update: dotm_core::env::rank_update(),
        batch_assembly: dotm_core::env::batch_assembly(),
        variant_lockstep: dotm_core::env::variant_lockstep(),
        tran_step_carry: dotm_core::env::tran_step_carry(),
        ..PipelineConfig::default()
    }
}

/// Runs the comparator test path (production or DfT variant).
pub fn comparator_report(dft: bool) -> MacroReport {
    let harness = if dft {
        ComparatorHarness::dft()
    } else {
        ComparatorHarness::production()
    };
    run_with_progress(&harness)
}

/// Runs one macro's path with a stderr progress note.
pub fn run_with_progress(harness: &dyn MacroHarness) -> MacroReport {
    let cfg = standard_config();
    eprintln!(
        "[dotm] running {} path: {} defects, goodspace {}x{} ...",
        harness.name(),
        cfg.defects,
        cfg.goodspace.common_samples,
        cfg.goodspace.mismatch_samples
    );
    let t0 = std::time::Instant::now();
    let report = run_macro_path(harness, &cfg).expect("macro path must run");
    eprintln!(
        "[dotm] {}: {} faults in {} classes, evaluated in {:.1}s",
        report.name,
        report.total_faults,
        report.class_count,
        t0.elapsed().as_secs_f64()
    );
    report
}

/// Runs all five macro paths for the global figures.
///
/// The five macros fan out across worker threads (they are fully
/// independent runs); the report order — and every number in it — is
/// identical to the serial path regardless of `DOTM_THREADS`.
pub fn global_report(dft: bool) -> GlobalReport {
    let comparator: Box<dyn MacroHarness> = Box::new(if dft {
        ComparatorHarness::dft()
    } else {
        ComparatorHarness::production()
    });
    let harnesses: Vec<Box<dyn MacroHarness>> = vec![
        comparator,
        Box::new(LadderHarness),
        Box::new(BiasHarness::default()),
        Box::new(ClockgenHarness::default()),
        Box::new(DecoderHarness::default()),
    ];
    let reports = par_map(&ExecConfig::default(), &harnesses, |_, harness| {
        run_with_progress(harness.as_ref())
    });
    GlobalReport::new(reports)
}

/// Prints a ruled table row.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the failure-accounting block shared by the aggregate printers.
#[allow(clippy::too_many_arguments)]
fn print_accounting(
    sim_failed: usize,
    inject_failed: usize,
    escalated: usize,
    excluded: usize,
    hist: [u64; dotm_core::ESCALATION_RUNGS],
    solver: dotm_sim::SimStats,
    cache_lookups: u64,
    cache_entries: u64,
) {
    println!();
    println!("solver accounting ({:?} policy):", env_sim_failure_policy());
    println!("  sim-failed classes:    {sim_failed}");
    println!("  inject-failed classes: {inject_failed}");
    println!("  escalated classes:     {escalated}");
    if excluded > 0 {
        println!("  excluded classes:      {excluded}");
    }
    let rungs: Vec<String> = hist
        .iter()
        .enumerate()
        .map(|(r, n)| format!("r{r}:{n}"))
        .collect();
    println!("  ladder-rung histogram: {}", rungs.join(" "));
    println!(
        "  solver totals: {} NR solves, {} iterations, {} DC failures, \
         {} singular pivots, {} tran steps ({} rejected, {} halvings)",
        solver.nr_solves,
        solver.nr_iterations,
        solver.dc_failures,
        solver.singular_pivots,
        solver.tran_steps,
        solver.rejected_steps,
        solver.step_halvings,
    );
    if solver.warm_hits + solver.warm_misses > 0 {
        println!(
            "  warm starts: {} hits, {} misses ({:.1}% of seeded DC solves)",
            solver.warm_hits,
            solver.warm_misses,
            100.0 * solver.warm_hits as f64 / (solver.warm_hits + solver.warm_misses) as f64,
        );
    }
    if solver.factor_reuse_hits + solver.factor_refactor_fallbacks > 0 {
        println!(
            "  factor reuse: {} hits, {} refactor fallbacks",
            solver.factor_reuse_hits, solver.factor_refactor_fallbacks,
        );
    }
    if cache_lookups > 0 {
        let hits = cache_lookups.saturating_sub(cache_entries);
        println!(
            "  measurement cache: {cache_lookups} lookups, {cache_entries} entries, \
             {hits} hits ({:.1}% hit rate)",
            100.0 * hits as f64 / cache_lookups as f64,
        );
    }
}

/// Prints the failure-accounting block for one macro report.
pub fn print_macro_accounting(report: &MacroReport) {
    print_accounting(
        report.sim_failed_classes(),
        report.inject_failed_classes(),
        report.escalated_classes(),
        report.excluded_classes(),
        report.rung_histogram(),
        report.solver_totals(),
        report.cache_lookups,
        report.cache_entries,
    );
}

/// Prints the failure-accounting block summed over a global report.
pub fn print_global_accounting(report: &GlobalReport) {
    print_accounting(
        report.sim_failed_classes(),
        report.inject_failed_classes(),
        report.escalated_classes(),
        report.excluded_classes(),
        report.rung_histogram(),
        report.solver_totals(),
        report.cache_lookups(),
        report.cache_entries(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("DOTM_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("DOTM_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn standard_config_is_sane() {
        let cfg = standard_config();
        assert!(cfg.defects > 0);
        assert!(cfg.goodspace.common_samples > 0);
    }
}
