//! Test-set compaction.
//!
//! "The overlap between different detection mechanisms gives room for the
//! optimization of the test method and fault detection" (paper §3.2).
//! This module does that optimisation: given the evaluated fault classes
//! and the per-measurement flags each one raises, a greedy weighted
//! set-cover selects the smallest sequence of current measurements that
//! preserves the current-test coverage — fewer settle-and-measure cycles
//! on the tester, same defect coverage.

use crate::harness::MacroHarness;
use crate::pipeline::MacroReport;
use dotm_faults::Severity;
use std::collections::HashSet;

/// One step of the greedy selection.
#[derive(Debug, Clone)]
pub struct CompactionStep {
    /// Measurement index in the harness's plan.
    pub measurement: usize,
    /// Label of the measurement.
    pub label: String,
    /// Cumulative share of current-detectable fault weight covered after
    /// adding this measurement (0..=1).
    pub cumulative_coverage: f64,
}

/// Result of compacting a macro's current-test set.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// Selected measurements, in greedy order.
    pub steps: Vec<CompactionStep>,
    /// Number of current measurements available in the full plan.
    pub available: usize,
    /// Total weight of current-detectable faults.
    pub detectable_weight: f64,
}

impl CompactionResult {
    /// Measurements needed to retain the full current-test coverage.
    pub fn selected_count(&self) -> usize {
        self.steps.len()
    }

    /// Measurements needed to reach `fraction` (0..=1) of the full
    /// current-test coverage.
    pub fn count_for_coverage(&self, fraction: f64) -> Option<usize> {
        self.steps
            .iter()
            .position(|s| s.cumulative_coverage >= fraction)
            .map(|i| i + 1)
    }
}

/// Greedily selects current measurements until every current-detectable
/// fault class (of the given severity) is covered.
pub fn compact_current_tests(
    harness: &dyn MacroHarness,
    report: &MacroReport,
    severity: Severity,
) -> CompactionResult {
    let plan = harness.plan();
    // The universe: (weight, flag set) per current-detectable class.
    let classes: Vec<(f64, &[usize])> = report
        .outcomes_of(severity)
        .filter(|o| !o.flagged.is_empty())
        .map(|o| (o.count as f64, o.flagged.as_slice()))
        .collect();
    let detectable_weight: f64 = classes.iter().map(|(w, _)| w).sum();
    let available: HashSet<usize> = classes
        .iter()
        .flat_map(|(_, f)| f.iter().copied())
        .collect();

    let mut uncovered: Vec<bool> = vec![true; classes.len()];
    let mut chosen: HashSet<usize> = HashSet::new();
    let mut steps = Vec::new();
    let mut covered_weight = 0.0;
    loop {
        // Pick the measurement covering the most uncovered weight.
        let mut best: Option<(usize, f64)> = None;
        for &m in &available {
            if chosen.contains(&m) {
                continue;
            }
            let gain: f64 = classes
                .iter()
                .zip(&uncovered)
                .filter(|((_, flags), &u)| u && flags.contains(&m))
                .map(|((w, _), _)| w)
                .sum();
            let better = match best {
                None => gain > 0.0,
                Some((bm, bg)) => gain > bg || (gain == bg && m < bm),
            };
            if better {
                best = Some((m, gain));
            }
        }
        let Some((m, gain)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        chosen.insert(m);
        covered_weight += gain;
        for (i, (_, flags)) in classes.iter().enumerate() {
            if flags.contains(&m) {
                uncovered[i] = false;
            }
        }
        steps.push(CompactionStep {
            measurement: m,
            label: plan
                .labels
                .get(m)
                .map(|l| l.name.clone())
                .unwrap_or_else(|| format!("m{m}")),
            cumulative_coverage: if detectable_weight > 0.0 {
                covered_weight / detectable_weight
            } else {
                0.0
            },
        });
        if uncovered.iter().all(|&u| !u) {
            break;
        }
    }
    CompactionResult {
        steps,
        available: plan
            .labels
            .iter()
            .filter(|l| matches!(l.kind, crate::measure::MeasureKind::Current(_)))
            .count(),
        detectable_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
    use crate::pipeline::ClassOutcome;
    use crate::processvar::{CommonSample, ProcessModel};
    use crate::signature::{CurrentFlags, CurrentKind, DetectionSet, VoltageSignature};
    use dotm_defects::FaultMechanism;
    use dotm_layout::Layout;
    use dotm_netlist::Netlist;
    use dotm_rng::rngs::StdRng;

    /// A harness stub: only `plan` matters for compaction.
    #[derive(Debug)]
    struct StubHarness;

    impl MacroHarness for StubHarness {
        fn name(&self) -> &str {
            "stub"
        }
        fn layout(&self) -> Layout {
            Layout::new("stub")
        }
        fn instance_count(&self) -> usize {
            1
        }
        fn testbench(&self) -> Netlist {
            Netlist::new("stub")
        }
        fn plan(&self) -> MeasurementPlan {
            MeasurementPlan {
                labels: (0..5)
                    .map(|i| {
                        MeasureLabel::new(MeasureKind::Current(CurrentKind::IVdd), format!("i{i}"))
                    })
                    .collect(),
            }
        }
        fn measure_with(
            &self,
            _nl: &Netlist,
            _opts: &dotm_sim::SimOptions,
            _stats: &mut dotm_sim::SimStats,
            _warm: crate::harness::Warm<'_>,
            _batch: crate::harness::Batch<'_>,
        ) -> Result<Vec<f64>, dotm_sim::SimError> {
            Ok(vec![0.0; 5])
        }
        fn perturb(
            &self,
            _nl: &mut Netlist,
            _model: &ProcessModel,
            _common: &CommonSample,
            _rng: &mut StdRng,
        ) {
        }
        fn classify_voltage(&self, _n: &[f64], _f: &[f64]) -> VoltageSignature {
            VoltageSignature::NoDeviation
        }
        fn shared_nets(&self) -> Vec<&'static str> {
            Vec::new()
        }
    }

    fn outcome(key: &str, count: usize, flagged: Vec<usize>) -> ClassOutcome {
        let currents = CurrentFlags {
            ivdd: !flagged.is_empty(),
            ..Default::default()
        };
        ClassOutcome {
            key: key.into(),
            mechanism: FaultMechanism::Short,
            count,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::NoDeviation,
            currents,
            detection: DetectionSet {
                missing_code: false,
                currents,
            },
            flagged,
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: dotm_sim::SimStats::default(),
        }
    }

    fn report(outcomes: Vec<ClassOutcome>) -> MacroReport {
        MacroReport {
            name: "stub".into(),
            instances: 1,
            sprinkle_area_nm2: 1.0,
            defects: 100,
            total_faults: 100,
            class_count: outcomes.len(),
            outcomes,
            goodspace_solver: dotm_sim::SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        }
    }

    #[test]
    fn greedy_prefers_the_broadest_measurement() {
        // Measurement 2 covers both classes; 0 and 1 cover one each.
        let r = report(vec![
            outcome("a", 10, vec![0, 2]),
            outcome("b", 5, vec![1, 2]),
        ]);
        let c = compact_current_tests(&StubHarness, &r, Severity::Catastrophic);
        assert_eq!(c.selected_count(), 1);
        assert_eq!(c.steps[0].measurement, 2);
        assert!((c.steps[0].cumulative_coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_flags_need_multiple_measurements() {
        let r = report(vec![
            outcome("a", 10, vec![0]),
            outcome("b", 5, vec![1]),
            outcome("c", 1, vec![4]),
        ]);
        let c = compact_current_tests(&StubHarness, &r, Severity::Catastrophic);
        assert_eq!(c.selected_count(), 3);
        // Greedy order follows weight.
        assert_eq!(c.steps[0].measurement, 0);
        assert_eq!(c.steps[1].measurement, 1);
        assert_eq!(c.steps[2].measurement, 4);
        assert_eq!(c.count_for_coverage(0.9), Some(2));
        assert_eq!(c.count_for_coverage(1.0), Some(3));
    }

    #[test]
    fn undetectable_classes_are_ignored() {
        let r = report(vec![
            outcome("a", 10, vec![3]),
            outcome("undetected", 90, vec![]),
        ]);
        let c = compact_current_tests(&StubHarness, &r, Severity::Catastrophic);
        assert_eq!(c.selected_count(), 1);
        assert!((c.detectable_weight - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_compacts_to_nothing() {
        let c = compact_current_tests(&StubHarness, &report(vec![]), Severity::Catastrophic);
        assert_eq!(c.selected_count(), 0);
        assert_eq!(c.detectable_weight, 0.0);
        assert_eq!(c.count_for_coverage(0.5), None);
    }
}
