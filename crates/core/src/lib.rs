//! # dotm-core — the defect-oriented test methodology
//!
//! The paper's contribution (its Fig. 1) as a library:
//!
//! 1. **Defect simulation** — `dotm-defects` sprinkles spot defects on a
//!    macro's layout and extracts circuit-level faults;
//! 2. **Fault collapsing** — equivalent faults merge into classes whose
//!    multiplicity measures likelihood;
//! 3. **Fault modelling & simulation** — `dotm-faults` injects each class
//!    into the macro testbench; `dotm-sim` computes the faulty behaviour;
//! 4. **Signature classification** — voltage signatures
//!    ([`VoltageSignature`]: stuck-at / offset / mixed / clock value /
//!    none) and current signatures ([`CurrentKind`]: IVdd, IDDQ, Iinput)
//!    against the 3σ good space compiled by process Monte Carlo
//!    ([`GoodSpace`]);
//! 5. **Sensitisation/propagation** — behavioural models decide whether a
//!    signature reaches the circuit edge as a missing code;
//! 6. **Global compilation** — per-macro statistics scale by instances ×
//!    area × fault rate into whole-circuit detectability
//!    ([`GlobalReport`]), before and after the DfT measures.
//!
//! The [`harnesses`] module provides the five case-study macros; the
//! `dotm-bench` crate's binaries regenerate every table and figure of the
//! paper from these pieces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod compaction;
mod diagnosis;
pub mod env;
mod escapes;
pub mod exec;
mod global;
mod goodspace;
mod harness;
pub mod harnesses;
mod measure;
mod memo;
mod pipeline;
mod processvar;
mod report;
mod signature;
mod testtime;

pub use advisor::{
    check_iddq_budget, check_trunk_order, Advisory, IDDQ_BUDGET, SIMILARITY_THRESHOLD,
};
pub use compaction::{compact_current_tests, CompactionResult, CompactionStep};
pub use diagnosis::{Candidate, DictionaryEntry, FaultDictionary};
pub use escapes::YieldModel;
pub use exec::{par_map, par_map_indices, ExecConfig};
pub use global::{GlobalDetectability, GlobalReport};
pub use goodspace::{GoodSpace, GoodSpaceConfig};
pub use harness::{
    with_instrumented_sim, with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCapture,
    WarmCursor, WarmStart,
};
pub use measure::{MeasureKind, MeasureLabel, MeasurementPlan};
pub use memo::{CachedMeasurement, MeasureCache};
pub use pipeline::{
    run_macro_path, run_macro_path_with_faults, run_macro_path_with_faults_hooked, ClassObserver,
    ClassOutcome, EscalationLadder, FanoutObserver, MacroReport, MeasurementStore, PathError,
    PipelineConfig, PipelineHooks, ShardSpec, SimFailurePolicy, ESCALATION_RUNGS,
};
pub use processvar::{CommonSample, ProcessModel};
pub use report::{
    current_table, detectability, internal_fault_pct, voltage_table, CurrentRow,
    DetectabilityBreakdown, VoltageRow,
};
pub use signature::{CurrentFlags, CurrentKind, DetectionSet, VoltageSignature};
pub use testtime::TestTimeModel;
