//! Automated DfT advisories — the paper's §4 design rules, checked
//! mechanically:
//!
//! 1. *"Faults influencing lines with almost identical signals are very
//!    difficult to detect. Therefore, such lines should not be placed
//!    close to each other."*
//! 2. *"The interface between analog and digital should be designed in
//!    such a way that in a fault-free circuit the quiescent current is
//!    negligible small"* (so boundary faults light up IDDQ).

use dotm_netlist::Netlist;
use dotm_sim::{SimError, Simulator};
use std::fmt;

/// One advisory produced by the checks.
#[derive(Debug, Clone, PartialEq)]
pub enum Advisory {
    /// Two adjacent routed lines carry nearly identical DC values: shorts
    /// between them are nearly undetectable. Reorder so a strongly
    /// different line separates them.
    SimilarAdjacentSignals {
        /// First line (net name).
        a: String,
        /// Second line (net name).
        b: String,
        /// DC difference between them (V).
        delta_v: f64,
    },
    /// The digital supply draws a non-negligible quiescent current in the
    /// fault-free circuit, blunting the IDDQ measurement.
    QuiescentDigitalCurrent {
        /// Supply source name.
        supply: String,
        /// Measured quiescent current (A).
        current: f64,
    },
}

impl fmt::Display for Advisory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advisory::SimilarAdjacentSignals { a, b, delta_v } => write!(
                f,
                "adjacent lines `{a}` and `{b}` differ by only {:.0} mV — shorts between \
                 them are nearly undetectable; separate them with a strongly different line",
                delta_v * 1e3
            ),
            Advisory::QuiescentDigitalCurrent { supply, current } => write!(
                f,
                "digital supply `{supply}` draws {:.1} µA quiescent — boundary faults \
                 will hide inside the IDDQ band; gate the static paths",
                current * 1e6
            ),
        }
    }
}

/// DC difference below which two adjacent lines count as "almost
/// identical signals" (V).
pub const SIMILARITY_THRESHOLD: f64 = 0.3;

/// Quiescent digital current above which IDDQ is considered blunted (A).
pub const IDDQ_BUDGET: f64 = 5e-6;

/// Checks an ordered list of routed trunk lines against a solved DC
/// operating point: every *adjacent* pair of **static analog** lines with
/// nearly identical values is flagged.
///
/// `is_static` selects the lines the rule applies to — bias and reference
/// distribution, not clocks, driven inputs or logic outputs (shorts on
/// those announce themselves dynamically or through IDDQ). Supply rails
/// (`vdd*`, `gnd`) are always skipped: a supply short is gross.
///
/// # Errors
/// Propagates simulator failures from the operating-point solve.
pub fn check_trunk_order(
    nl: &Netlist,
    trunk_order: &[&str],
    is_static: &dyn Fn(&str) -> bool,
) -> Result<Vec<Advisory>, SimError> {
    let mut sim = Simulator::new(nl);
    let op = sim.dc_op()?;
    let mut advisories = Vec::new();
    let is_rail = |n: &str| n.starts_with("vdd") || n == "gnd";
    for pair in trunk_order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if is_rail(a) || is_rail(b) || !is_static(a) || !is_static(b) {
            continue;
        }
        let (Some(na), Some(nb)) = (nl.find_node(a), nl.find_node(b)) else {
            continue;
        };
        let delta_v = (op.voltage(na) - op.voltage(nb)).abs();
        if delta_v < SIMILARITY_THRESHOLD {
            advisories.push(Advisory::SimilarAdjacentSignals {
                a: a.to_string(),
                b: b.to_string(),
                delta_v,
            });
        }
    }
    Ok(advisories)
}

/// Checks the fault-free quiescent current of a digital supply against
/// the IDDQ budget, at a DC operating point.
///
/// # Errors
/// Propagates simulator failures; returns [`SimError::BadSource`] if the
/// named device is not a voltage source.
pub fn check_iddq_budget(nl: &Netlist, supply: &str) -> Result<Vec<Advisory>, SimError> {
    let id = nl
        .device_id(supply)
        .ok_or_else(|| SimError::BadSource(supply.to_string()))?;
    let mut sim = Simulator::new(nl);
    let op = sim.dc_op()?;
    let current = op
        .branch_current(id)
        .ok_or_else(|| SimError::BadSource(supply.to_string()))?
        .abs();
    if current > IDDQ_BUDGET {
        Ok(vec![Advisory::QuiescentDigitalCurrent {
            supply: supply.to_string(),
            current,
        }])
    } else {
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_adc::comparator::{comparator_testbench, ComparatorConfig, ComparatorStimulus};
    use dotm_adc::layouts::{comparator_trunk_order, LayoutConfig};
    use dotm_netlist::Waveform;

    fn testbench() -> Netlist {
        let stim = ComparatorStimulus::dc_offset(2.5, 0.0);
        comparator_testbench(ComparatorConfig::default(), &stim)
    }

    /// The comparator's static analog distribution lines.
    fn is_static(net: &str) -> bool {
        matches!(net, "vbn" | "vbnc" | "vbp" | "vaz" | "vref")
    }

    #[test]
    fn production_order_flags_the_similar_bias_pair() {
        let nl = testbench();
        let order = comparator_trunk_order(LayoutConfig::default());
        let advisories = check_trunk_order(&nl, &order, &is_static).unwrap();
        assert!(
            advisories.iter().any(|a| matches!(
                a,
                Advisory::SimilarAdjacentSignals { a, b, .. }
                    if (a == "vbn" && b == "vbnc") || (a == "vbnc" && b == "vbn")
            )),
            "must flag vbn/vbnc: {advisories:?}"
        );
    }

    #[test]
    fn dynamic_lines_are_exempt() {
        let nl = testbench();
        // Clock lines share DC levels but are dynamic: not the rule's
        // concern.
        let advisories = check_trunk_order(&nl, &["ck1", "ck2", "ck3"], &is_static).unwrap();
        assert!(advisories.is_empty(), "{advisories:?}");
    }

    #[test]
    fn dft_order_clears_the_bias_advisory() {
        let nl = testbench();
        let order = comparator_trunk_order(LayoutConfig {
            dft_bias_order: true,
        });
        let advisories = check_trunk_order(&nl, &order, &is_static).unwrap();
        assert!(
            !advisories.iter().any(|a| matches!(
                a,
                Advisory::SimilarAdjacentSignals { a, b, .. }
                    if (a == "vbn" && b == "vbnc") || (a == "vbnc" && b == "vbn")
            )),
            "DfT order must not flag vbn/vbnc: {advisories:?}"
        );
    }

    #[test]
    fn dissimilar_static_lines_are_not_flagged() {
        // vaz (2.2 V) vs vbp (3.6 V): well apart.
        let nl = testbench();
        let advisories = check_trunk_order(&nl, &["vaz", "vbp"], &is_static).unwrap();
        assert!(advisories.is_empty(), "{advisories:?}");
    }

    #[test]
    fn iddq_budget_passes_clean_and_flags_leaky() {
        // A clean CMOS load on the digital supply.
        let mut nl = Netlist::new("clean");
        let vdd_dig = nl.node("vdd_dig");
        nl.add_vsource("VDDDIG", vdd_dig, Netlist::GROUND, Waveform::dc(5.0))
            .unwrap();
        nl.add_capacitor("CL", vdd_dig, Netlist::GROUND, 1e-12)
            .unwrap();
        assert!(check_iddq_budget(&nl, "VDDDIG").unwrap().is_empty());
        // A resistive static path blows the budget.
        let leaky_node = nl.node("x");
        nl.add_resistor("RLEAK", vdd_dig, leaky_node, 100e3)
            .unwrap();
        nl.add_resistor("RLEAK2", leaky_node, Netlist::GROUND, 100e3)
            .unwrap();
        let advisories = check_iddq_budget(&nl, "VDDDIG").unwrap();
        assert_eq!(advisories.len(), 1);
        assert!(advisories[0].to_string().contains("µA quiescent"));
    }

    #[test]
    fn unknown_supply_is_an_error() {
        let nl = Netlist::new("empty");
        assert!(matches!(
            check_iddq_budget(&nl, "NOPE"),
            Err(SimError::BadSource(_))
        ));
    }
}
