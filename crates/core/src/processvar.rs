//! Process, supply and temperature variation — the environment that makes
//! the good signature "a multi-dimensional space" rather than a point.

use dotm_netlist::{DeviceKind, MosType, Netlist};
use dotm_rng::rngs::StdRng;
use dotm_rng::Rng;

/// Standard deviations of the variation model.
///
/// The *common* components shift every device of a die together (process
/// corner, supply, temperature — temperature enters through its effect on
/// mobility and threshold, so it is folded into `kp`/`vt`); the *mismatch*
/// components vary device-to-device within the die.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessModel {
    /// Common threshold shift σ (V).
    pub sigma_vt_common: f64,
    /// Common relative transconductance shift σ.
    pub sigma_kp_common: f64,
    /// Common relative resistor shift σ.
    pub sigma_r_common: f64,
    /// Relative supply-voltage shift σ.
    pub sigma_vdd: f64,
    /// Per-device threshold mismatch σ (V).
    pub sigma_vt_mismatch: f64,
    /// Per-device relative transconductance mismatch σ.
    pub sigma_kp_mismatch: f64,
    /// Per-device relative resistor mismatch σ.
    pub sigma_r_mismatch: f64,
    /// Operating-temperature span (°C), sampled uniformly around the
    /// nominal 27 °C. Temperature enters the devices through its standard
    /// deratings — threshold −2 mV/K and mobility ∝ T^−1.5 — i.e. as
    /// additional *correlated* vt/kp shifts.
    pub temp_span_c: f64,
}

impl Default for ProcessModel {
    fn default() -> Self {
        ProcessModel {
            sigma_vt_common: 0.030,
            sigma_kp_common: 0.05,
            sigma_r_common: 0.10,
            sigma_vdd: 0.02,
            sigma_vt_mismatch: 0.008,
            sigma_kp_mismatch: 0.02,
            sigma_r_mismatch: 0.02,
            temp_span_c: 70.0, // 0 °C .. 70 °C commercial range
        }
    }
}

/// The common (die-wide) part of one Monte-Carlo sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommonSample {
    /// NMOS threshold shift (V).
    pub dvt_n: f64,
    /// PMOS threshold shift (V, applied to |vt|).
    pub dvt_p: f64,
    /// Relative kp shift.
    pub dkp: f64,
    /// Relative resistor shift.
    pub dr: f64,
    /// Relative supply shift.
    pub dvdd: f64,
    /// Temperature offset from the 27 °C nominal (K).
    pub dtemp: f64,
}

impl ProcessModel {
    /// Draws a common sample.
    pub fn sample_common(&self, rng: &mut StdRng) -> CommonSample {
        let g = |rng: &mut StdRng| -> f64 {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let dtemp = if self.temp_span_c > 0.0 {
            rng.gen_range(-0.5..0.5) * self.temp_span_c
        } else {
            0.0
        };
        // Standard deratings: vt drops ~2 mV/K for both polarities (|vt|
        // shrinks), mobility goes as T^-1.5 around 300 K.
        let dvt_temp = -2e-3 * dtemp;
        let dkp_temp = (300.0f64 / (300.0 + dtemp)).powf(1.5) - 1.0;
        CommonSample {
            dvt_n: g(rng) * self.sigma_vt_common + dvt_temp,
            dvt_p: g(rng) * self.sigma_vt_common + dvt_temp,
            dkp: g(rng) * self.sigma_kp_common + dkp_temp,
            dr: g(rng) * self.sigma_r_common,
            dvdd: g(rng) * self.sigma_vdd,
            dtemp,
        }
    }

    /// Applies a common sample plus fresh per-device mismatch to every
    /// device of a netlist. Voltage sources whose name starts with `VDD`
    /// are treated as supplies and scaled by the supply shift.
    pub fn perturb(&self, nl: &mut Netlist, common: &CommonSample, rng: &mut StdRng) {
        let g = |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let n = nl.device_count();
        for i in 0..n {
            let id = dotm_netlist::DeviceId::from_index(i);
            let is_supply = nl
                .device_by_id(id)
                .map(|d| d.name.starts_with("VDD"))
                .unwrap_or(false);
            let dev = nl.device_by_id_mut(id).expect("index in range");
            match &mut dev.kind {
                DeviceKind::Mosfet { ty, params, .. } => {
                    let dvt_c = match ty {
                        MosType::Nmos => common.dvt_n,
                        MosType::Pmos => common.dvt_p,
                    };
                    let dvt = dvt_c + g(rng) * self.sigma_vt_mismatch;
                    match ty {
                        MosType::Nmos => params.vt0 += dvt,
                        // PMOS vt0 is negative; a positive shift makes it
                        // "slower" (more negative).
                        MosType::Pmos => params.vt0 -= dvt,
                    }
                    let dkp = common.dkp + g(rng) * self.sigma_kp_mismatch;
                    params.kp *= (1.0 + dkp).max(0.2);
                }
                DeviceKind::Resistor { ohms, .. } => {
                    let dr = common.dr + g(rng) * self.sigma_r_mismatch;
                    *ohms *= (1.0 + dr).max(0.2);
                }
                DeviceKind::Vsource { waveform, .. } if is_supply => {
                    *waveform = waveform.scaled(1.0 + common.dvdd);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_netlist::{MosfetParams, Waveform};
    use dotm_rng::SeedableRng;

    fn sample_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn common_samples_have_expected_spread() {
        let model = ProcessModel {
            temp_span_c: 0.0,
            ..ProcessModel::default()
        };
        let mut rng = sample_rng(1);
        let n = 4000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let s = model.sample_common(&mut rng);
            sum += s.dvt_n;
            sum2 += s.dvt_n * s.dvt_n;
        }
        let mean = sum / n as f64;
        let sigma = (sum2 / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.003, "mean {mean}");
        assert!(
            (sigma - model.sigma_vt_common).abs() < 0.003,
            "sigma {sigma}"
        );
    }

    #[test]
    fn perturb_shifts_devices_and_supply() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        nl.add_vsource("VDD", a, Netlist::GROUND, Waveform::dc(5.0))
            .unwrap();
        nl.add_resistor("R1", a, Netlist::GROUND, 1000.0).unwrap();
        nl.add_mosfet(
            "M1",
            a,
            a,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            MosfetParams::nmos_default(),
        )
        .unwrap();
        let model = ProcessModel::default();
        let common = CommonSample {
            dvt_n: 0.05,
            dvt_p: 0.0,
            dkp: 0.1,
            dr: 0.2,
            dvdd: -0.05,
            dtemp: 0.0,
        };
        let mut rng = sample_rng(2);
        // Zero out mismatch so the shifts are exact.
        let model = ProcessModel {
            sigma_vt_mismatch: 0.0,
            sigma_kp_mismatch: 0.0,
            sigma_r_mismatch: 0.0,
            ..model
        };
        model.perturb(&mut nl, &common, &mut rng);
        match &nl.device("M1").unwrap().kind {
            DeviceKind::Mosfet { params, .. } => {
                assert!((params.vt0 - 0.80).abs() < 1e-12);
                assert!((params.kp - 110e-6).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
        match &nl.device("R1").unwrap().kind {
            DeviceKind::Resistor { ohms, .. } => assert!((ohms - 1200.0).abs() < 1e-9),
            _ => unreachable!(),
        }
        match &nl.device("VDD").unwrap().kind {
            DeviceKind::Vsource { waveform, .. } => {
                assert!((waveform.dc_value() - 4.75).abs() < 1e-12)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn temperature_derates_vt_and_kp_together() {
        // With zero process sigma, the only common variation left is the
        // temperature derating: hot dies are slower (lower kp) with lower
        // thresholds — and the two shifts are perfectly correlated.
        let model = ProcessModel {
            sigma_vt_common: 0.0,
            sigma_kp_common: 0.0,
            sigma_r_common: 0.0,
            sigma_vdd: 0.0,
            temp_span_c: 70.0,
            ..ProcessModel::default()
        };
        let mut rng = sample_rng(9);
        let mut saw_hot = false;
        for _ in 0..100 {
            let s = model.sample_common(&mut rng);
            assert!(s.dtemp.abs() <= 35.0 + 1e-9);
            // dvt = −2 mV/K · dtemp exactly.
            assert!((s.dvt_n + 2e-3 * s.dtemp).abs() < 1e-12);
            if s.dtemp > 10.0 {
                saw_hot = true;
                assert!(s.dkp < 0.0, "hot die must lose mobility");
                assert!(s.dvt_n < 0.0, "hot die must lose threshold");
            }
        }
        assert!(saw_hot);
    }

    #[test]
    fn pmos_threshold_moves_away_from_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        nl.add_mosfet(
            "MP",
            a,
            a,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Pmos,
            MosfetParams::pmos_default(),
        )
        .unwrap();
        let model = ProcessModel {
            sigma_vt_mismatch: 0.0,
            sigma_kp_mismatch: 0.0,
            sigma_r_mismatch: 0.0,
            ..ProcessModel::default()
        };
        let common = CommonSample {
            dvt_p: 0.05,
            ..Default::default()
        };
        let mut rng = sample_rng(3);
        model.perturb(&mut nl, &common, &mut rng);
        match &nl.device("MP").unwrap().kind {
            DeviceKind::Mosfet { params, .. } => {
                assert!((params.vt0 + 0.90).abs() < 1e-12, "vt0 = {}", params.vt0);
            }
            _ => unreachable!(),
        }
    }
}
