//! Global compilation: scaling the per-macro fault-signature statistics
//! to whole-circuit detectability (the paper's Fig. 4 and Fig. 5).
//!
//! "The fault signature probabilities for macro cells have to be scaled
//! into global fault signature probabilities. This scaling is done on the
//! basis that in a real fabrication process, the defect density will be
//! approximately equal for all macro cells."

use crate::pipeline::{ClassOutcome, MacroReport};
use crate::signature::CurrentKind;
use dotm_faults::Severity;

/// The Fig. 4/Fig. 5 global numbers for one severity.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDetectability {
    /// Detected by the voltage (missing-code) test.
    pub voltage_pct: f64,
    /// Detected by some current measurement.
    pub current_pct: f64,
    /// Voltage-only detections.
    pub voltage_only_pct: f64,
    /// Current-only detections.
    pub current_only_pct: f64,
    /// Detected by both.
    pub both_pct: f64,
    /// Detected only by IDDQ (the paper's 11 % observation).
    pub iddq_only_pct: f64,
    /// Total fault coverage.
    pub coverage_pct: f64,
}

/// Whole-circuit compilation over the per-macro reports.
#[derive(Debug, Clone)]
pub struct GlobalReport {
    reports: Vec<MacroReport>,
}

impl GlobalReport {
    /// Builds a global report from the macro reports.
    pub fn new(reports: Vec<MacroReport>) -> Self {
        GlobalReport { reports }
    }

    /// The per-macro reports.
    pub fn macros(&self) -> &[MacroReport] {
        &self.reports
    }

    /// Weighted fraction (percent) of all chip faults of `severity`
    /// satisfying the predicate. Each macro's faults are weighted by
    /// instances × area × fault rate (uniform defect density), then by
    /// the class multiplicities within the macro.
    pub fn pct_where(
        &self,
        severity: Severity,
        pred: impl Fn(&ClassOutcome) -> bool + Copy,
    ) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for report in &self.reports {
            let w_macro = report.global_weight();
            let total = report.weight_of(severity);
            if total == 0.0 || w_macro == 0.0 {
                continue;
            }
            let hit: f64 = report
                .outcomes_of(severity)
                .filter(|o| pred(o))
                .map(|o| o.count as f64)
                .sum();
            num += w_macro * hit / total;
            den += w_macro;
        }
        if den == 0.0 {
            0.0
        } else {
            100.0 * num / den
        }
    }

    /// Computes the Fig. 4/5 panel for one severity.
    pub fn detectability(&self, severity: Severity) -> GlobalDetectability {
        GlobalDetectability {
            voltage_pct: self.pct_where(severity, |o| o.detection.missing_code),
            current_pct: self.pct_where(severity, |o| o.detection.currents.any()),
            voltage_only_pct: self.pct_where(severity, |o| o.detection.voltage_only()),
            current_only_pct: self.pct_where(severity, |o| o.detection.current_only()),
            both_pct: self.pct_where(severity, |o| {
                o.detection.missing_code && o.detection.currents.any()
            }),
            iddq_only_pct: self.pct_where(severity, |o| o.detection.iddq_only()),
            coverage_pct: self.pct_where(severity, |o| o.detection.detected()),
        }
    }

    /// Global share of faults detectable by one current kind.
    pub fn current_kind_pct(&self, severity: Severity, kind: CurrentKind) -> f64 {
        self.pct_where(severity, |o| o.currents.get(kind))
    }

    /// Classes across all macros whose result rests on a failed
    /// simulation.
    pub fn sim_failed_classes(&self) -> usize {
        self.reports
            .iter()
            .map(MacroReport::sim_failed_classes)
            .sum()
    }

    /// Classes across all macros with real injection errors.
    pub fn inject_failed_classes(&self) -> usize {
        self.reports
            .iter()
            .map(MacroReport::inject_failed_classes)
            .sum()
    }

    /// Classes across all macros that needed escalation above rung 0.
    pub fn escalated_classes(&self) -> usize {
        self.reports
            .iter()
            .map(MacroReport::escalated_classes)
            .sum()
    }

    /// Classes across all macros excluded by
    /// [`SimFailurePolicy::Exclude`](crate::SimFailurePolicy::Exclude).
    pub fn excluded_classes(&self) -> usize {
        self.reports.iter().map(MacroReport::excluded_classes).sum()
    }

    /// Rung histogram summed over all macros.
    pub fn rung_histogram(&self) -> [u64; crate::pipeline::ESCALATION_RUNGS] {
        let mut hist = [0u64; crate::pipeline::ESCALATION_RUNGS];
        for report in &self.reports {
            for (slot, count) in hist.iter_mut().zip(report.rung_histogram()) {
                *slot += count;
            }
        }
        hist
    }

    /// Solver telemetry summed over all macros (fault simulation plus
    /// good-space compilation).
    pub fn solver_totals(&self) -> dotm_sim::SimStats {
        let mut total = dotm_sim::SimStats::default();
        for report in &self.reports {
            total.merge(&report.solver_totals());
        }
        total
    }

    /// Measurement-cache lookups summed over all macros.
    pub fn cache_lookups(&self) -> u64 {
        self.reports.iter().map(|r| r.cache_lookups).sum()
    }

    /// Measurement-cache entries (unique circuits solved) summed over all
    /// macros.
    pub fn cache_entries(&self) -> u64 {
        self.reports.iter().map(|r| r.cache_entries).sum()
    }

    /// Measurement-cache hits summed over all macros.
    pub fn cache_hits(&self) -> u64 {
        self.reports.iter().map(MacroReport::cache_hits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{CurrentFlags, DetectionSet, VoltageSignature};
    use dotm_defects::FaultMechanism;

    fn simple_report(name: &str, instances: usize, faults: usize, detected: bool) -> MacroReport {
        let currents = CurrentFlags {
            ivdd: detected,
            ..Default::default()
        };
        MacroReport {
            name: name.into(),
            instances,
            sprinkle_area_nm2: 1e6,
            defects: 1000,
            total_faults: faults,
            class_count: 1,
            outcomes: vec![ClassOutcome {
                key: "k".into(),
                mechanism: FaultMechanism::Short,
                count: faults,
                severity: Severity::Catastrophic,
                shared: false,
                voltage: VoltageSignature::NoDeviation,
                currents,
                detection: DetectionSet {
                    missing_code: false,
                    currents,
                },
                flagged: Vec::new(),
                sim_failed: false,
                inject_failed: false,
                rung: Some(0),
                inject_errors: 0,
                excluded: false,
                solver: dotm_sim::SimStats::default(),
            }],
            goodspace_solver: dotm_sim::SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        }
    }

    #[test]
    fn weighting_follows_instances_and_fault_rate() {
        // Macro A: 3 instances, all faults detected.
        // Macro B: 1 instance, same area and fault rate, none detected.
        let g = GlobalReport::new(vec![
            simple_report("a", 3, 100, true),
            simple_report("b", 1, 100, false),
        ]);
        let d = g.detectability(Severity::Catastrophic);
        assert!((d.coverage_pct - 75.0).abs() < 1e-9, "{d:?}");
        assert!((d.current_pct - 75.0).abs() < 1e-9);
        assert!((d.voltage_pct - 0.0).abs() < 1e-9);
    }

    #[test]
    fn fault_rate_scales_weight() {
        // Same instances, but macro B produces 3× the faults per defect:
        // its (undetected) faults dominate.
        let g = GlobalReport::new(vec![
            simple_report("a", 1, 100, true),
            simple_report("b", 1, 300, false),
        ]);
        let d = g.detectability(Severity::Catastrophic);
        assert!((d.coverage_pct - 25.0).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn empty_report_is_zero() {
        let g = GlobalReport::new(vec![]);
        let d = g.detectability(Severity::Catastrophic);
        assert_eq!(d.coverage_pct, 0.0);
    }
}
