//! Test-time model (paper §3.2): the missing-code test runs at full
//! conversion speed; the current test waits for transients to die out
//! before each of its six measurements.

use dotm_adc::process::CLOCK_PERIOD;

/// Parameters of the production-test timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestTimeModel {
    /// Samples taken by the missing-code test.
    pub missing_code_samples: usize,
    /// Conversion period (s).
    pub sample_period: f64,
    /// Current measurements (3 phases × 2 input levels).
    pub current_measurements: usize,
    /// Settling wait before each current measurement (s) — the paper's
    /// "approximately 100 µs... for the transient currents to disappear".
    pub current_settle: f64,
    /// Integration window of one current measurement (s).
    pub current_window: f64,
}

impl Default for TestTimeModel {
    fn default() -> Self {
        TestTimeModel {
            missing_code_samples: 1000,
            sample_period: CLOCK_PERIOD,
            current_measurements: 6,
            current_settle: 100e-6,
            current_window: 100e-6,
        }
    }
}

impl TestTimeModel {
    /// Time of the missing-code test (s).
    pub fn missing_code_time(&self) -> f64 {
        self.missing_code_samples as f64 * self.sample_period
    }

    /// Time of the current test (s).
    pub fn current_time(&self) -> f64 {
        self.current_measurements as f64 * (self.current_settle + self.current_window)
    }

    /// Total defect-oriented test time (s).
    pub fn total(&self) -> f64 {
        self.missing_code_time() + self.current_time()
    }

    /// Time of a representative specification-oriented test suite for an
    /// 8-bit video ADC: code-density INL/DNL (many samples per code),
    /// SNR/THD FFT captures and gain/offset trims.
    pub fn specification_test_time(&self) -> f64 {
        // 64 samples per code for a 4096-point code-density run, repeated
        // over 4 conditions, plus four 16k-point FFT captures.
        let code_density = 4.0 * 64.0 * 4096.0 * self.sample_period;
        let ffts = 4.0 * 16384.0 * self.sample_period;
        let trims = 2e-3;
        code_density + ffts + trims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_code_test_is_fast() {
        let m = TestTimeModel::default();
        // 1000 samples at 100 ns = 100 µs.
        assert!((m.missing_code_time() - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn current_test_dominated_by_settling() {
        let m = TestTimeModel::default();
        assert!((m.current_time() - 1.2e-3).abs() < 1e-12);
        assert!(m.total() < 2e-3);
    }

    #[test]
    fn defect_oriented_test_beats_specification_test() {
        let m = TestTimeModel::default();
        assert!(
            m.total() < m.specification_test_time() / 10.0,
            "defect-oriented {} vs spec {}",
            m.total(),
            m.specification_test_time()
        );
    }
}
