//! Fault-dictionary diagnosis.
//!
//! The evaluated fault classes double as a *fault dictionary*: each class
//! predicts which of the four simple tests it fails (missing codes, IVdd,
//! IDDQ, Iinput). Given the outcome pattern observed on a failing part,
//! the dictionary ranks the candidate fault classes by likelihood — the
//! defect-oriented path from tester datalog back to layout location that
//! the paper's methodology enables (its DfT feedback loop is a special
//! case of this).

use crate::pipeline::MacroReport;
use crate::signature::DetectionSet;
use dotm_faults::Severity;

/// One dictionary entry: a fault class and the test outcome it predicts.
#[derive(Debug, Clone)]
pub struct DictionaryEntry {
    /// Canonical fault-class key.
    pub key: String,
    /// Collapsed fault count (prior likelihood weight).
    pub count: usize,
    /// Predicted test outcome.
    pub predicted: DetectionSet,
}

/// A ranked diagnosis candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The fault class.
    pub key: String,
    /// Posterior score in 0..=1 (normalised over all candidates).
    pub score: f64,
    /// Number of test outcomes (out of 4) disagreeing with the
    /// observation.
    pub mismatches: usize,
}

/// A fault dictionary compiled from one macro's evaluated test path.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    entries: Vec<DictionaryEntry>,
}

/// Probability that a single predicted test outcome disagrees with the
/// observation (tester noise, near-threshold faults). Drives the
/// soft-matching score.
const FLIP_PROB: f64 = 0.05;

fn pattern(d: DetectionSet) -> [bool; 4] {
    [
        d.missing_code,
        d.currents.ivdd,
        d.currents.iddq,
        d.currents.iinput,
    ]
}

impl FaultDictionary {
    /// Compiles the dictionary from a macro report, using the outcomes of
    /// the given severity.
    pub fn from_report(report: &MacroReport, severity: Severity) -> Self {
        let entries = report
            .outcomes_of(severity)
            .map(|o| DictionaryEntry {
                key: o.key.clone(),
                count: o.count,
                predicted: o.detection,
            })
            .collect();
        FaultDictionary { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries.
    pub fn entries(&self) -> &[DictionaryEntry] {
        &self.entries
    }

    /// Ranks the fault classes against an observed test outcome.
    ///
    /// The score of a class is `prior × (1−p)^(4−m) × p^m`, where the
    /// prior is its collapsed fault count, `m` its number of mismatching
    /// test outcomes and `p` the per-test flip probability; scores are
    /// normalised to sum to 1. Classes are returned most likely first.
    pub fn diagnose(&self, observed: DetectionSet) -> Vec<Candidate> {
        let obs = pattern(observed);
        let mut raw: Vec<Candidate> = self
            .entries
            .iter()
            .map(|e| {
                let pred = pattern(e.predicted);
                let mismatches = obs.iter().zip(&pred).filter(|(a, b)| a != b).count();
                let likelihood = (1.0 - FLIP_PROB).powi((4 - mismatches) as i32)
                    * FLIP_PROB.powi(mismatches as i32);
                Candidate {
                    key: e.key.clone(),
                    score: e.count as f64 * likelihood,
                    mismatches,
                }
            })
            .collect();
        let total: f64 = raw.iter().map(|c| c.score).sum();
        if total > 0.0 {
            for c in &mut raw {
                c.score /= total;
            }
        }
        raw.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });
        raw
    }

    /// Diagnostic *resolution*: the expected probability mass of the true
    /// class's exact-match group. 1.0 means every observable pattern maps
    /// to a single class.
    pub fn resolution(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|e| e.count as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        // Group classes by predicted pattern; within a group the top
        // class takes the diagnosis.
        use std::collections::HashMap;
        let mut groups: HashMap<[bool; 4], Vec<f64>> = HashMap::new();
        for e in &self.entries {
            groups
                .entry(pattern(e.predicted))
                .or_default()
                .push(e.count as f64);
        }
        let mut correct = 0.0;
        for counts in groups.values() {
            let max = counts.iter().cloned().fold(0.0f64, f64::max);
            correct += max;
        }
        correct / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ClassOutcome;
    use crate::signature::{CurrentFlags, VoltageSignature};
    use dotm_defects::FaultMechanism;

    fn outcome(key: &str, count: usize, mc: bool, ivdd: bool, iddq: bool) -> ClassOutcome {
        let currents = CurrentFlags {
            ivdd,
            iddq,
            iinput: false,
        };
        ClassOutcome {
            key: key.into(),
            mechanism: FaultMechanism::Short,
            count,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::NoDeviation,
            currents,
            detection: DetectionSet {
                missing_code: mc,
                currents,
            },
            flagged: Vec::new(),
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: dotm_sim::SimStats::default(),
        }
    }

    fn report() -> MacroReport {
        MacroReport {
            name: "m".into(),
            instances: 1,
            sprinkle_area_nm2: 1.0,
            defects: 100,
            total_faults: 100,
            class_count: 3,
            outcomes: vec![
                outcome("clock_short", 50, true, true, true),
                outcome("bias_short", 30, false, true, false),
                outcome("ff_fault", 20, false, false, true),
            ],
            goodspace_solver: dotm_sim::SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        }
    }

    fn observed(mc: bool, ivdd: bool, iddq: bool) -> DetectionSet {
        DetectionSet {
            missing_code: mc,
            currents: CurrentFlags {
                ivdd,
                iddq,
                iinput: false,
            },
        }
    }

    #[test]
    fn exact_match_wins() {
        let dict = FaultDictionary::from_report(&report(), Severity::Catastrophic);
        assert_eq!(dict.len(), 3);
        let ranked = dict.diagnose(observed(false, false, true));
        assert_eq!(ranked[0].key, "ff_fault");
        assert_eq!(ranked[0].mismatches, 0);
        assert!(ranked[0].score > 0.9);
    }

    #[test]
    fn prior_breaks_ties_between_near_matches() {
        let dict = FaultDictionary::from_report(&report(), Severity::Catastrophic);
        // Observation matches nothing exactly: iddq+ivdd without codes.
        let ranked = dict.diagnose(observed(false, true, true));
        // clock_short (50x, 1 mismatch) vs bias_short (30x, 1 mismatch)
        // vs ff_fault (20x, 1 mismatch): the count decides.
        assert_eq!(ranked[0].key, "clock_short");
        assert_eq!(ranked[0].mismatches, 1);
    }

    #[test]
    fn scores_normalise() {
        let dict = FaultDictionary::from_report(&report(), Severity::Catastrophic);
        let ranked = dict.diagnose(observed(true, true, true));
        let sum: f64 = ranked.iter().map(|c| c.score).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resolution_reflects_pattern_collisions() {
        let dict = FaultDictionary::from_report(&report(), Severity::Catastrophic);
        // All three classes predict distinct patterns: full resolution.
        assert!((dict.resolution() - 1.0).abs() < 1e-12);
        // Add a colliding class.
        let mut r = report();
        r.outcomes.push(outcome("collider", 10, false, false, true));
        let dict = FaultDictionary::from_report(&r, Severity::Catastrophic);
        // ff_fault (20) and collider (10) collide: 10/110 misdiagnosed.
        assert!((dict.resolution() - 100.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dictionary_is_sane() {
        let r = MacroReport {
            name: "m".into(),
            instances: 1,
            sprinkle_area_nm2: 1.0,
            defects: 0,
            total_faults: 0,
            class_count: 0,
            outcomes: vec![],
            goodspace_solver: dotm_sim::SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        };
        let dict = FaultDictionary::from_report(&r, Severity::Catastrophic);
        assert!(dict.is_empty());
        assert!(dict.diagnose(observed(true, false, false)).is_empty());
        assert_eq!(dict.resolution(), 0.0);
    }
}
