//! Compilation of the multi-dimensional good-signature space.
//!
//! "In the analog domain, the output of a fault-free circuit can vary
//! under the influence of environmental conditions like process, supply
//! voltage and temperature. Thus the good signature is a multi-dimensional
//! space, which has to be compiled for each set of test stimuli" — this
//! module is that compilation: a two-level Monte Carlo separating die-wide
//! (common) variation from per-instance mismatch, so current-detection
//! thresholds can be scaled to the full chip (256 comparators share one
//! supply pin).

use crate::exec::{self, ExecConfig};
use crate::harness::{Batch, MacroHarness, Warm, WarmCapture, WarmStart};
use crate::measure::MeasureKind;
use crate::processvar::ProcessModel;
use crate::signature::{CurrentFlags, CurrentKind};
use dotm_rng::rngs::StdRng;
use dotm_sim::{SimError, SimOptions, SimStats};

/// Monte-Carlo sizes for good-space compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoodSpaceConfig {
    /// Number of die-wide (common) samples.
    pub common_samples: usize,
    /// Mismatch samples per common sample.
    pub mismatch_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Parallel execution of the common samples. The result is
    /// thread-count-invariant: each common sample draws from its own
    /// `(seed, index)` substream.
    pub exec: ExecConfig,
    /// Capture the nominal operating points and use them to warm-start
    /// Newton on every Monte-Carlo corner (and, downstream, on every
    /// fault-injected variant). A failed seed falls back to the cold
    /// homotopy chain, so this only changes solver effort, never whether
    /// a corner converges from the methodology's point of view.
    pub warm_start: bool,
    /// Bitwise-exact LU factor reuse inside the solver (overrides the
    /// harness's base [`SimOptions`]). May never change a reported bit.
    pub factor_reuse: bool,
    /// Sherman–Morrison–Woodbury rank-k updates of the nominal
    /// factorisation (overrides the harness's base [`SimOptions`]).
    /// Changes floating-point round-off; off by default.
    pub rank_update: bool,
    /// Split-plan batched assembly (overrides the harness's base
    /// [`SimOptions`]). The nominal measurement and every Monte-Carlo
    /// corner share the testbench's compiled stamp split; corners whose
    /// perturbed devices break the prefix invariant fall back to a local
    /// split. Bitwise-invisible; on by default.
    pub batch_assembly: bool,
    /// Transient step-carry heuristic (overrides the harness's base
    /// [`SimOptions`]). Round-off-changing; off by default.
    pub tran_step_carry: bool,
}

impl Default for GoodSpaceConfig {
    fn default() -> Self {
        GoodSpaceConfig {
            common_samples: 5,
            mismatch_samples: 4,
            seed: 1995,
            exec: ExecConfig::default(),
            warm_start: true,
            factor_reuse: true,
            rank_update: false,
            batch_assembly: true,
            tran_step_carry: false,
        }
    }
}

/// The harness's base options with the config's factorisation knobs
/// applied — every simulator the compilation spins up goes through this,
/// so the knobs govern the nominal capture run and all corners alike.
fn sim_options_for(harness: &dyn MacroHarness, cfg: &GoodSpaceConfig) -> SimOptions {
    let mut opts = harness.sim_options();
    opts.factor_reuse = cfg.factor_reuse;
    opts.rank_update = cfg.rank_update;
    opts.batch_assembly = cfg.batch_assembly;
    opts.tran_step_carry = cfg.tran_step_carry;
    opts
}

/// Draws common sample `si` — and its `m` mismatch measurements — from
/// the sample's own `(seed, si)` substream. Retries with fresh draws from
/// the same stream when a process corner fails to converge, so the result
/// depends only on `(cfg.seed, si)`, never on sibling samples or thread
/// scheduling.
fn compile_common_sample(
    harness: &dyn MacroHarness,
    model: &ProcessModel,
    cfg: &GoodSpaceConfig,
    m: usize,
    si: u64,
    warm: Option<&WarmStart>,
    batch: Batch<'_>,
) -> Result<(Vec<Vec<f64>>, SimStats, u64), SimError> {
    let opts = sim_options_for(harness, cfg);
    let mut rng = StdRng::seed_from_stream(cfg.seed, si);
    let mut stats = SimStats::default();
    let mut retries: u64 = 0;
    let mut retries_left = 2 * m + 2;
    loop {
        let common = model.sample_common(&mut rng);
        let mut per_mm = Vec::with_capacity(m);
        let mut corner_error = None;
        for _ in 0..m {
            let mut nl = harness.testbench();
            harness.perturb(&mut nl, model, &common, &mut rng);
            let w = warm.map_or(Warm::Cold, Warm::Seed);
            match harness.measure_with(&nl, &opts, &mut stats, w, batch) {
                Ok(v) => per_mm.push(v),
                Err(e) => {
                    corner_error = Some(e);
                    break;
                }
            }
        }
        match corner_error {
            None => return Ok((per_mm, stats, retries)),
            Some(e) => {
                if retries_left == 0 {
                    return Err(e);
                }
                retries_left -= 1;
                retries += 1;
            }
        }
    }
}

/// The compiled good space: nominal measurements plus the per-measurement
/// common and mismatch standard deviations.
#[derive(Debug, Clone)]
pub struct GoodSpace {
    /// Measurement of the unperturbed circuit (the detection reference).
    pub nominal: Vec<f64>,
    /// Monte-Carlo mean.
    pub mean: Vec<f64>,
    /// Die-to-die (common) σ.
    pub sigma_common: Vec<f64>,
    /// Within-die (mismatch) σ.
    pub sigma_mismatch: Vec<f64>,
    /// Solver telemetry accumulated over the whole compilation (nominal
    /// plus every Monte-Carlo corner, including redrawn ones).
    pub solver: SimStats,
    /// Process corners redrawn because the simulator left its convergence
    /// envelope (bounded per common sample).
    pub corner_retries: u64,
    /// Nominal operating points captured per analysis slot during the
    /// nominal measurement — the seed table for warm-starting faulty and
    /// perturbed variants. `None` when warm-start is disabled.
    pub warm: Option<WarmStart>,
}

impl GoodSpace {
    /// Compiles the good space for a harness.
    ///
    /// # Errors
    /// Propagates simulator failures (a fault-free circuit failing to
    /// converge is a configuration error worth surfacing).
    pub fn compile(
        harness: &dyn MacroHarness,
        model: &ProcessModel,
        cfg: GoodSpaceConfig,
    ) -> Result<GoodSpace, SimError> {
        let mut solver = SimStats::default();
        // One compiled stamp split for the whole compilation: the nominal
        // run adopts it exactly (device-prefix-equal with itself) and each
        // Monte-Carlo corner tries to — perturbed device parameters fail
        // the prefix check, so corners fall back to their local split.
        let testbench = harness.testbench();
        let shared_asm = cfg
            .batch_assembly
            .then(|| std::sync::Arc::new(dotm_sim::SharedAssembly::compile(&testbench)));
        let batch = Batch::shared(shared_asm.as_ref());
        // The nominal measurement is single-threaded; in warm-start mode
        // it doubles as the capture run for the per-analysis operating
        // points, frozen into an immutable seed table before any parallel
        // work starts (so seeded results cannot depend on scheduling).
        let capture = WarmCapture::new();
        let nominal_warm = if cfg.warm_start {
            Warm::Capture(&capture)
        } else {
            Warm::Cold
        };
        let nominal = harness.measure_with(
            &testbench,
            &sim_options_for(harness, &cfg),
            &mut solver,
            nominal_warm,
            batch,
        )?;
        let warm = cfg.warm_start.then(|| capture.freeze());
        let n = nominal.len();
        let s = cfg.common_samples.max(1);
        let m = cfg.mismatch_samples.max(1);
        // samples[s][m][i]. Each common sample draws from its own
        // `(seed, index)` substream, so the compilation parallelises over
        // the common axis with thread-count-invariant results. A perturbed
        // sample at an extreme corner can leave the simulator's
        // convergence envelope; the good space is a statistical estimate,
        // so such a sample is redrawn from its own stream (bounded
        // retries) rather than failing the whole compilation.
        let per_sample: Vec<(Vec<Vec<f64>>, SimStats, u64)> =
            exec::par_map_indices(&cfg.exec, s, |si| {
                compile_common_sample(harness, model, &cfg, m, si as u64, warm.as_ref(), batch)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        // Telemetry is folded in index order: SimStats addition commutes,
        // but a fixed order keeps the reduction trivially reproducible.
        let mut corner_retries: u64 = 0;
        let samples: Vec<Vec<Vec<f64>>> = per_sample
            .into_iter()
            .map(|(sample, stats, retries)| {
                solver.merge(&stats);
                corner_retries += retries;
                sample
            })
            .collect();
        let mut mean = vec![0.0; n];
        let mut sigma_common = vec![0.0; n];
        let mut sigma_mismatch = vec![0.0; n];
        for i in 0..n {
            let common_means: Vec<f64> = samples
                .iter()
                .map(|mm| mm.iter().map(|v| v[i]).sum::<f64>() / m as f64)
                .collect();
            let grand = common_means.iter().sum::<f64>() / s as f64;
            mean[i] = grand;
            let var_c = common_means
                .iter()
                .map(|v| (v - grand) * (v - grand))
                .sum::<f64>()
                / (s.max(2) - 1) as f64;
            sigma_common[i] = var_c.sqrt();
            let var_m = samples
                .iter()
                .map(|mm| {
                    let cm = mm.iter().map(|v| v[i]).sum::<f64>() / m as f64;
                    mm.iter().map(|v| (v[i] - cm) * (v[i] - cm)).sum::<f64>()
                        / (m.max(2) - 1) as f64
                })
                .sum::<f64>()
                / s as f64;
            sigma_mismatch[i] = var_m.sqrt();
        }
        Ok(GoodSpace {
            nominal,
            mean,
            sigma_common,
            sigma_mismatch,
            solver,
            corner_retries,
            warm,
        })
    }

    /// Chip-level 3σ detection threshold for measurement `i` when `n`
    /// instances of the macro contribute to the measured pin: the common
    /// part adds linearly, mismatch in quadrature.
    pub fn threshold(&self, i: usize, n_instances: usize) -> f64 {
        let n = n_instances as f64;
        let sigma_chip =
            ((n * self.sigma_common[i]).powi(2) + n * self.sigma_mismatch[i].powi(2)).sqrt();
        3.0 * sigma_chip
    }

    /// Evaluates the current flags of a faulty measurement vector.
    ///
    /// `shared` scales the fault's *supply-current* deviation by the
    /// instance count: a fault on a shared trunk shifts the operating
    /// point of every instance, and all instances hang on the same supply
    /// pins. Input-terminal deviations are never scaled — the fault's
    /// bridge current flows once per chip, and the instances' own input
    /// currents are gate currents (≈ 0) before and after.
    pub fn current_flags(
        &self,
        harness: &dyn MacroHarness,
        faulty: &[f64],
        shared: bool,
    ) -> CurrentFlags {
        let plan = harness.plan();
        let n_inst = harness.instance_count();
        let mut flags = CurrentFlags::default();
        for (i, label) in plan.labels.iter().enumerate() {
            if let MeasureKind::Current(kind) = label.kind {
                let mult = if shared && kind != CurrentKind::Iinput {
                    n_inst as f64
                } else {
                    1.0
                };
                let deviation = (faulty[i] - self.nominal[i]).abs() * mult;
                let threshold = self.threshold(i, n_inst).max(harness.current_floor(kind));
                if deviation > threshold {
                    flags.set(kind, true);
                }
            }
        }
        flags
    }

    /// Indices of the current measurements whose deviation exceeds the
    /// detection threshold — the raw material for test-set compaction.
    pub fn flagged_indices(
        &self,
        harness: &dyn MacroHarness,
        faulty: &[f64],
        shared: bool,
    ) -> Vec<usize> {
        let plan = harness.plan();
        let n_inst = harness.instance_count();
        let mut out = Vec::new();
        for (i, label) in plan.labels.iter().enumerate() {
            if let MeasureKind::Current(kind) = label.kind {
                let mult = if shared && kind != CurrentKind::Iinput {
                    n_inst as f64
                } else {
                    1.0
                };
                let deviation = (faulty[i] - self.nominal[i]).abs() * mult;
                let threshold = self.threshold(i, n_inst).max(harness.current_floor(kind));
                if deviation > threshold {
                    out.push(i);
                }
            }
        }
        out
    }

    /// The largest deviation-to-threshold ratio over all current
    /// measurements of a kind (diagnostic helper for reports and the
    /// sigma-sweep ablation).
    pub fn worst_margin(
        &self,
        harness: &dyn MacroHarness,
        faulty: &[f64],
        kind: CurrentKind,
        shared: bool,
    ) -> f64 {
        let plan = harness.plan();
        let n_inst = harness.instance_count();
        let mult = if shared && kind != CurrentKind::Iinput {
            n_inst as f64
        } else {
            1.0
        };
        let mut worst = 0.0f64;
        for i in plan.current_indices(kind) {
            let deviation = (faulty[i] - self.nominal[i]).abs() * mult;
            let threshold = self.threshold(i, n_inst).max(harness.current_floor(kind));
            worst = worst.max(deviation / threshold);
        }
        worst
    }
}
