//! Memoized measurement cache for the fault-evaluation hot path.
//!
//! The pipeline measures every fault-class variant at every severity and,
//! on non-convergence, re-measures through the escalation ladder. Many of
//! those measurements are *byte-identical circuits*: catastrophic and
//! near-miss severities of a bridge degenerate to the same resistance,
//! distinct defects collapse to equivalent injected netlists, and the
//! ladder re-measures the same netlist at the same rung after a policy
//! retry. [`MeasureCache`] memoizes `(netlist content digest, ladder rung)
//! → (measurement result, solver-stats delta)` so each unique circuit is
//! solved once per run.
//!
//! ## Why memoization preserves bit-identical reports
//!
//! A cache entry stores the *complete* observable effect of a measurement:
//! the `Result<Vec<f64>, SimError>` and the exact [`SimStats`] delta the
//! solve produced. On a hit the caller replays the stored stats delta into
//! its accumulator, so per-class `SimStats` are identical whether the
//! measurement was computed or replayed — and therefore identical at any
//! thread count, because which thread populates an entry first cannot
//! change what the entry contains (the value is a pure function of the
//! key: same digest + same rung ⇒ same netlist stamped with the same
//! options ⇒ same deterministic Newton trajectory). Warm-start seeds are
//! frozen per run (the nominal operating point) before any cached
//! measurement happens, so they are part of that pure function too.
//!
//! Cache *occupancy* statistics, by contrast, are scheduling-dependent
//! (two threads can race to insert the same key), so hit/miss counters are
//! deliberately kept OUT of the per-class `SimStats` that feed report
//! fingerprints. The cache instead exposes two thread-invariant totals:
//! [`MeasureCache::lookups`] (every `get` call — determined by the fault
//! list alone) and [`MeasureCache::entries`] (final number of distinct
//! keys — determined by the set of unique circuits alone). Hits =
//! lookups − entries when every miss is followed by an insert.

use dotm_sim::{SimError, SimStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. A power of two so the shard
/// selector is a mask; 16 comfortably exceeds the executor's worker count.
const SHARDS: usize = 16;

/// One memoized measurement: the result the harness returned and the
/// solver-telemetry delta it accumulated while producing it. This is
/// also the unit a persistent [`MeasurementStore`](crate::MeasurementStore)
/// holds on disk — the value is a pure function of the cache key, which
/// is what makes both layers replayable without touching a report.
pub type CachedMeasurement = (Result<Vec<f64>, SimError>, SimStats);

/// A sharded, thread-safe memoization table for harness measurements,
/// shared by reference across `exec::par_map` workers. See the module
/// docs for the determinism argument.
#[derive(Debug, Default)]
pub struct MeasureCache {
    shards: [Mutex<HashMap<u128, CachedMeasurement>>; SHARDS],
    lookups: AtomicU64,
}

impl MeasureCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, CachedMeasurement>> {
        // The digest is FNV-mixed already; the low bits are well spread.
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up a memoized measurement, counting the lookup.
    pub(crate) fn get(&self, key: u128) -> Option<CachedMeasurement> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Stores a measurement under `key`. If another worker raced us to the
    /// same key the existing entry wins — both computed the same pure
    /// function of the key, so the values are interchangeable.
    pub(crate) fn insert(&self, key: u128, value: CachedMeasurement) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(value);
    }

    /// Whether `key` is present, *without* counting a lookup.
    ///
    /// [`MeasureCache::lookups`] is a report-visible total determined by
    /// the fault list alone, so the lockstep pre-pass — which only wants
    /// to avoid priming lanes a warm cache will answer anyway — must not
    /// perturb it.
    pub(crate) fn peek(&self, key: u128) -> bool {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&key)
    }

    /// Total `get` calls made against this cache. Thread-invariant: one
    /// lookup happens per (variant, severity, rung) measurement attempt,
    /// which is fixed by the fault list.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of distinct keys stored — i.e. unique (circuit, rung) pairs
    /// actually solved. Thread-invariant: the key set is a pure function
    /// of the fault list.
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = MeasureCache::new();
        assert_eq!(cache.lookups(), 0);
        assert_eq!(cache.entries(), 0);
        assert!(cache.get(42).is_none());

        let stats = SimStats {
            nr_solves: 3,
            ..SimStats::default()
        };
        cache.insert(42, (Ok(vec![1.0, 2.0]), stats));
        let (result, replay) = cache.get(42).expect("hit");
        assert_eq!(result.unwrap(), vec![1.0, 2.0]);
        assert_eq!(replay.nr_solves, 3);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn racing_insert_keeps_first_entry() {
        let cache = MeasureCache::new();
        cache.insert(7, (Ok(vec![1.0]), SimStats::default()));
        cache.insert(7, (Ok(vec![9.0]), SimStats::default()));
        let (result, _) = cache.get(7).unwrap();
        assert_eq!(result.unwrap(), vec![1.0]);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = MeasureCache::new();
        cache.insert(
            9,
            (
                Err(SimError::NoConvergence {
                    analysis: "dc",
                    time: None,
                    iterations: 50,
                }),
                SimStats::default(),
            ),
        );
        let (result, _) = cache.get(9).unwrap();
        assert!(result.is_err());
    }
}
