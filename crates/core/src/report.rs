//! Aggregations over macro reports: the rows of Tables 2–3 and the
//! overlap regions of Fig. 3.

use crate::pipeline::MacroReport;
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_faults::Severity;

/// One row of a voltage-signature table (paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageRow {
    /// Signature category.
    pub signature: VoltageSignature,
    /// Percent of catastrophic faults.
    pub catastrophic_pct: f64,
    /// Percent of non-catastrophic faults.
    pub non_catastrophic_pct: f64,
}

/// One row of a current-signature table (paper Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentRow {
    /// The measurement; `None` is the "no deviations" row.
    pub kind: Option<CurrentKind>,
    /// Percent of catastrophic faults.
    pub catastrophic_pct: f64,
    /// Percent of non-catastrophic faults.
    pub non_catastrophic_pct: f64,
}

/// The headline overlap numbers of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectabilityBreakdown {
    /// Detected by the missing-code test (any overlap).
    pub missing_code_pct: f64,
    /// Detected by some current measurement (any overlap).
    pub current_pct: f64,
    /// Detected only by current measurements.
    pub current_only_pct: f64,
    /// Detected only by the missing-code test.
    pub voltage_only_pct: f64,
    /// Detected only by IDDQ.
    pub iddq_only_pct: f64,
    /// Detected by both the missing-code test and IVdd.
    pub missing_code_and_ivdd_pct: f64,
    /// Total coverage.
    pub coverage_pct: f64,
}

/// Builds the Table 2 rows for a macro report.
pub fn voltage_table(report: &MacroReport) -> Vec<VoltageRow> {
    VoltageSignature::ALL
        .iter()
        .map(|&sig| VoltageRow {
            signature: sig,
            catastrophic_pct: report.pct_where(Severity::Catastrophic, |o| o.voltage == sig),
            non_catastrophic_pct: report.pct_where(Severity::NonCatastrophic, |o| o.voltage == sig),
        })
        .collect()
}

/// Builds the Table 3 rows for a macro report. The current rows overlap
/// (sum over rows exceeds 100 %), exactly as in the paper.
pub fn current_table(report: &MacroReport) -> Vec<CurrentRow> {
    let mut rows: Vec<CurrentRow> = CurrentKind::ALL
        .iter()
        .map(|&kind| CurrentRow {
            kind: Some(kind),
            catastrophic_pct: report.pct_where(Severity::Catastrophic, |o| o.currents.get(kind)),
            non_catastrophic_pct: report
                .pct_where(Severity::NonCatastrophic, |o| o.currents.get(kind)),
        })
        .collect();
    rows.push(CurrentRow {
        kind: None,
        catastrophic_pct: report.pct_where(Severity::Catastrophic, |o| !o.currents.any()),
        non_catastrophic_pct: report.pct_where(Severity::NonCatastrophic, |o| !o.currents.any()),
    });
    rows
}

/// Computes the Fig. 3 overlap breakdown for one severity.
pub fn detectability(report: &MacroReport, severity: Severity) -> DetectabilityBreakdown {
    DetectabilityBreakdown {
        missing_code_pct: report.pct_where(severity, |o| o.detection.missing_code),
        current_pct: report.pct_where(severity, |o| o.detection.currents.any()),
        current_only_pct: report.pct_where(severity, |o| o.detection.current_only()),
        voltage_only_pct: report.pct_where(severity, |o| o.detection.voltage_only()),
        iddq_only_pct: report.pct_where(severity, |o| o.detection.iddq_only()),
        missing_code_and_ivdd_pct: report
            .pct_where(severity, |o| o.detection.missing_code && o.currents.ivdd),
        coverage_pct: report.coverage(severity),
    }
}

/// Percentage of faults whose effect stays inside the macro (does not
/// touch a shared net) — the paper's 27.8 % observation.
pub fn internal_fault_pct(report: &MacroReport, severity: Severity) -> f64 {
    report.pct_where(severity, |o| !o.shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ClassOutcome;
    use crate::signature::{CurrentFlags, DetectionSet};
    use dotm_defects::FaultMechanism;

    fn outcome(
        count: usize,
        severity: Severity,
        voltage: VoltageSignature,
        ivdd: bool,
        iddq: bool,
    ) -> ClassOutcome {
        let currents = CurrentFlags {
            ivdd,
            iddq,
            iinput: false,
        };
        ClassOutcome {
            key: format!("k{count}{severity:?}{voltage:?}{ivdd}{iddq}"),
            mechanism: FaultMechanism::Short,
            count,
            severity,
            shared: false,
            voltage,
            currents,
            detection: DetectionSet {
                missing_code: voltage.causes_missing_code(),
                currents,
            },
            flagged: Vec::new(),
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: dotm_sim::SimStats::default(),
        }
    }

    fn report() -> MacroReport {
        MacroReport {
            name: "test".into(),
            instances: 1,
            sprinkle_area_nm2: 1.0,
            defects: 100,
            total_faults: 10,
            class_count: 4,
            outcomes: vec![
                outcome(
                    60,
                    Severity::Catastrophic,
                    VoltageSignature::OutputStuckAt,
                    true,
                    false,
                ),
                outcome(
                    20,
                    Severity::Catastrophic,
                    VoltageSignature::NoDeviation,
                    false,
                    true,
                ),
                outcome(
                    20,
                    Severity::Catastrophic,
                    VoltageSignature::NoDeviation,
                    false,
                    false,
                ),
                outcome(
                    10,
                    Severity::NonCatastrophic,
                    VoltageSignature::Offset,
                    false,
                    false,
                ),
            ],
            goodspace_solver: dotm_sim::SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        }
    }

    #[test]
    fn voltage_table_percentages() {
        let rows = voltage_table(&report());
        let stuck = rows
            .iter()
            .find(|r| r.signature == VoltageSignature::OutputStuckAt)
            .unwrap();
        assert!((stuck.catastrophic_pct - 60.0).abs() < 1e-9);
        let nodev = rows
            .iter()
            .find(|r| r.signature == VoltageSignature::NoDeviation)
            .unwrap();
        assert!((nodev.catastrophic_pct - 40.0).abs() < 1e-9);
        let offset = rows
            .iter()
            .find(|r| r.signature == VoltageSignature::Offset)
            .unwrap();
        assert!((offset.non_catastrophic_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn current_table_rows_overlap_correctly() {
        let rows = current_table(&report());
        let ivdd = rows
            .iter()
            .find(|r| r.kind == Some(CurrentKind::IVdd))
            .unwrap();
        assert!((ivdd.catastrophic_pct - 60.0).abs() < 1e-9);
        let none = rows.iter().find(|r| r.kind.is_none()).unwrap();
        assert!((none.catastrophic_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn detectability_breakdown() {
        let d = detectability(&report(), Severity::Catastrophic);
        assert!((d.missing_code_pct - 60.0).abs() < 1e-9);
        assert!((d.current_pct - 80.0).abs() < 1e-9);
        assert!((d.current_only_pct - 20.0).abs() < 1e-9);
        assert!((d.iddq_only_pct - 20.0).abs() < 1e-9);
        assert!((d.missing_code_and_ivdd_pct - 60.0).abs() < 1e-9);
        assert!((d.coverage_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_counts_weighted_faults() {
        let r = report();
        assert!((r.coverage(Severity::Catastrophic) - 80.0).abs() < 1e-9);
        assert!((r.coverage(Severity::NonCatastrophic) - 100.0).abs() < 1e-9);
        assert!((internal_fault_pct(&r, Severity::Catastrophic) - 100.0).abs() < 1e-9);
    }
}
