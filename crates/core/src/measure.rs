//! Measurement plans: the labelled observation vector a macro harness
//! produces for the good and every faulty circuit.

use crate::signature::CurrentKind;

/// What one entry of a measurement vector represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// A functional (voltage) observation used for signature
    /// classification — e.g. a comparator decision.
    Decision,
    /// A current measurement compared against the 3σ good space.
    Current(CurrentKind),
    /// An auxiliary DC level (e.g. a clock-distribution line) used for the
    /// "clock value" signature.
    Level,
}

/// One labelled measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureLabel {
    /// Semantic kind.
    pub kind: MeasureKind,
    /// Human-readable name (e.g. `"ivdd@sampling/vin_hi"`).
    pub name: String,
}

impl MeasureLabel {
    /// Convenience constructor.
    pub fn new(kind: MeasureKind, name: impl Into<String>) -> Self {
        MeasureLabel {
            kind,
            name: name.into(),
        }
    }
}

/// The ordered list of measurements a harness produces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeasurementPlan {
    /// Labels, in the order of the measurement vector.
    pub labels: Vec<MeasureLabel>,
}

impl MeasurementPlan {
    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Indices of all current measurements of a given kind.
    pub fn current_indices(&self, kind: CurrentKind) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == MeasureKind::Current(kind))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all decision measurements.
    pub fn decision_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == MeasureKind::Decision)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all level measurements.
    pub fn level_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == MeasureKind::Level)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_indexing() {
        let plan = MeasurementPlan {
            labels: vec![
                MeasureLabel::new(MeasureKind::Decision, "d0"),
                MeasureLabel::new(MeasureKind::Current(CurrentKind::IVdd), "ivdd"),
                MeasureLabel::new(MeasureKind::Current(CurrentKind::Iddq), "iddq"),
                MeasureLabel::new(MeasureKind::Level, "ck1"),
                MeasureLabel::new(MeasureKind::Current(CurrentKind::IVdd), "ivdd2"),
            ],
        };
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.decision_indices(), vec![0]);
        assert_eq!(plan.current_indices(CurrentKind::IVdd), vec![1, 4]);
        assert_eq!(plan.current_indices(CurrentKind::Iddq), vec![2]);
        assert_eq!(plan.level_indices(), vec![3]);
    }
}
