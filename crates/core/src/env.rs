//! Centralized parsing of the `DOTM_*` environment knobs.
//!
//! Every process-wide tuning knob the workspace honours goes through this
//! module, so the parsing rules — and the failure behaviour — are written
//! once. The rules:
//!
//! * An **unset** knob takes its documented default.
//! * A **malformed** knob panics with the variable name and the offending
//!   value. A typo like `DOTM_THREADS=fourteen` silently running the
//!   serial path (or a warm run silently going cold) is exactly the kind
//!   of quiet misconfiguration the accounting work of earlier PRs exists
//!   to prevent, so knobs fail loudly instead of guessing.
//!
//! The pure `parse_*` helpers carry the actual grammar and are unit
//! tested without touching the process environment; the `*_knob`
//! wrappers only add the `std::env::var` lookup and the panic message.
//!
//! | knob | meaning | default |
//! |---|---|---|
//! | `DOTM_THREADS` | executor worker threads (`0` = auto) | auto |
//! | `DOTM_WARM_START` | seed Newton from nominal operating points | on |
//! | `DOTM_MEASURE_CACHE` | in-memory measurement memoization | on |
//! | `DOTM_FACTOR_REUSE` | bitwise-exact LU factor cache in the solver | on |
//! | `DOTM_RANK_UPDATE` | rank-k nominal-factor updates (SMW) | off |
//! | `DOTM_BATCH_ASSEMBLY` | split-plan batched assembly + shared class baselines | on |
//! | `DOTM_VARIANT_LOCKSTEP` | lockstep SoA priming of a class's variant lanes | on |
//! | `DOTM_VARIANT_MIN_SPEEDUP` | `variant_speedup` phase-cut ratio gate (`0` = identity only) | 0.0 |
//! | `DOTM_TRAN_STEP_CARRY` | carry accepted transient steps across the grid | off |
//! | `DOTM_SIM_FAILURE_POLICY` | accounting for never-converged classes | assume-detected |
//! | `DOTM_STORE_DIR` | persistent campaign-store directory | unset |
//! | `DOTM_SHARDS` | total worker shards of a sharded campaign | unset |
//! | `DOTM_SHARD` | this worker's shard index (`0 ≤ i < DOTM_SHARDS`) | unset |
//! | `DOTM_TRACE` | structured observability (spans/phases/counters) | off |
//! | `DOTM_TRACE_DIR` | directory for NDJSON + chrome trace exports | `.` |
//! | `DOTM_SHARD_RETRIES` | extra coordinator dispatch rounds for crashed workers | 2 |
//! | `DOTM_SHARD_ABORT_ONCE` | test knob: first-round workers abort after this many classes | off |
//! | `DOTM_SHARD_MIN_SPEEDUP` | `shard_speedup` wall-clock ratio gate (`0` = identity only) | 0.0 |
//! | `DOTM_ABORT_AFTER` | abort the run after this many observed classes (crash injection) | off |
//! | `DOTM_EXPECT_WARM` | assert the run answered entirely from cache/store (0 solves) | off |
//! | `DOTM_PROGRESS` | per-class `[progress]` lines on stderr (service event feed) | off |
//! | `DOTM_SERVE_POLL_MS` | service accept-loop / event-stream poll interval (ms) | 25 |
//! | `DOTM_SERVE_WORKERS` | default shard workers per service job (`0` = one process) | 0 |
//! | `DOTM_MACROS` | comma-separated macro subset the campaign runs | all |

use crate::pipeline::SimFailurePolicy;
use std::path::PathBuf;

/// Parses a boolean knob value: `1`/`true`/`on`/`yes` vs
/// `0`/`false`/`off`/`no`, case-insensitively.
///
/// # Errors
/// A message naming the offending value.
pub fn parse_bool(value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        other => Err(format!("expected a boolean, got {other:?}")),
    }
}

/// Parses an unsigned integer knob value (whitespace-tolerant).
///
/// # Errors
/// A message naming the offending value.
pub fn parse_u64(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("expected an unsigned integer, got {value:?}"))
}

/// Parses a `usize` knob value (whitespace-tolerant).
///
/// # Errors
/// A message naming the offending value.
pub fn parse_usize(value: &str) -> Result<usize, String> {
    value
        .trim()
        .parse::<usize>()
        .map_err(|_| format!("expected an unsigned integer, got {value:?}"))
}

/// Parses a finite, non-negative floating-point knob value
/// (whitespace-tolerant). `NaN`, infinities and negatives are malformed:
/// every float knob in the workspace is a ratio or interval where they
/// could only mean a typo.
///
/// # Errors
/// A message naming the offending value.
pub fn parse_f64(value: &str) -> Result<f64, String> {
    let parsed = value
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("expected a number, got {value:?}"))?;
    if !parsed.is_finite() || parsed < 0.0 {
        return Err(format!(
            "expected a finite non-negative number, got {value:?}"
        ));
    }
    Ok(parsed)
}

/// Reads an environment knob through a parser, panicking loudly on a
/// malformed value and returning `None` when unset.
fn knob<T>(name: &str, parse: impl FnOnce(&str) -> Result<T, String>) -> Option<T> {
    match std::env::var(name) {
        Ok(v) => Some(parse(&v).unwrap_or_else(|e| panic!("{name}: {e}"))),
        Err(_) => None,
    }
}

/// Reads a boolean `DOTM_*` knob.
///
/// # Panics
/// On a malformed value.
pub fn bool_knob(name: &str, default: bool) -> bool {
    knob(name, parse_bool).unwrap_or(default)
}

/// Reads a `usize` `DOTM_*` knob.
///
/// # Panics
/// On a malformed value.
pub fn usize_knob(name: &str, default: usize) -> usize {
    knob(name, parse_usize).unwrap_or(default)
}

/// Reads a `u64` `DOTM_*` knob.
///
/// # Panics
/// On a malformed value.
pub fn u64_knob(name: &str, default: u64) -> u64 {
    knob(name, parse_u64).unwrap_or(default)
}

/// Reads an `f64` `DOTM_*` knob (finite, non-negative).
///
/// # Panics
/// On a malformed value.
pub fn f64_knob(name: &str, default: f64) -> f64 {
    knob(name, parse_f64).unwrap_or(default)
}

/// The `DOTM_THREADS` knob: `None` when unset or `0` (both mean "auto" —
/// resolve from the machine's available parallelism).
///
/// # Panics
/// On a malformed value.
pub fn threads() -> Option<usize> {
    knob("DOTM_THREADS", parse_usize).filter(|&t| t > 0)
}

/// The `DOTM_WARM_START` knob (default on).
///
/// # Panics
/// On a malformed value.
pub fn warm_start() -> bool {
    bool_knob("DOTM_WARM_START", true)
}

/// The `DOTM_MEASURE_CACHE` knob (default on).
///
/// # Panics
/// On a malformed value.
pub fn measure_cache() -> bool {
    bool_knob("DOTM_MEASURE_CACHE", true)
}

/// The `DOTM_FACTOR_REUSE` knob (default on): the bitwise-exact LU
/// factor cache inside the solver. Toggling it may never change a
/// reported number (the determinism suite enforces this) — the knob
/// exists for A/B benchmarking and as an escape hatch.
///
/// # Panics
/// On a malformed value.
pub fn factor_reuse() -> bool {
    bool_knob("DOTM_FACTOR_REUSE", true)
}

/// The `DOTM_RANK_UPDATE` knob (default off): Sherman–Morrison–Woodbury
/// rank-k updates of the nominal factorisation for fault variants.
/// Changes floating-point round-off (verdict preservation is gated
/// empirically by the `lu_speedup` bench), hence off by default.
///
/// # Panics
/// On a malformed value.
pub fn rank_update() -> bool {
    bool_knob("DOTM_RANK_UPDATE", false)
}

/// The `DOTM_BATCH_ASSEMBLY` knob (default on): split-plan batched
/// assembly — static stamps hoisted into a per-gmin baseline, fault
/// variants of a class embedding the shared nominal baseline plus a
/// stamp delta. Bitwise-identical to the scalar path by construction
/// (the determinism suite enforces this), hence on by default.
///
/// # Panics
/// On a malformed value.
pub fn batch_assembly() -> bool {
    bool_knob("DOTM_BATCH_ASSEMBLY", true)
}

/// The `DOTM_VARIANT_LOCKSTEP` knob (default on): lockstep SoA variant
/// evaluation — the first DC Newton iteration of every variant lane of a
/// fault class is captured in a stats-free pre-pass and factored by one
/// blocked multi-matrix LU kernel, with per-lane pivoting and per-lane
/// fallback to the scalar path. Bitwise-identical to the sequential walk
/// by construction (the determinism suite and the `variant_speedup`
/// bench enforce this), hence on by default.
///
/// # Panics
/// On a malformed value.
pub fn variant_lockstep() -> bool {
    bool_knob("DOTM_VARIANT_LOCKSTEP", true)
}

/// The `DOTM_TRAN_STEP_CARRY` knob (default off): carry the last
/// accepted transient step size forward (×2 ramp) instead of restarting
/// every step from the full remaining interval. Cuts rejected Newton
/// solves at sharp edges but changes the step sequence and therefore
/// round-off, hence off by default.
///
/// # Panics
/// On a malformed value.
pub fn tran_step_carry() -> bool {
    bool_knob("DOTM_TRAN_STEP_CARRY", false)
}

/// The `DOTM_SIM_FAILURE_POLICY` knob (default: the paper-parity
/// [`SimFailurePolicy::AssumeDetected`]).
///
/// # Panics
/// On a malformed value.
pub fn sim_failure_policy() -> SimFailurePolicy {
    knob("DOTM_SIM_FAILURE_POLICY", |v| v.parse::<SimFailurePolicy>()).unwrap_or_default()
}

/// The `DOTM_STORE_DIR` knob: the persistent campaign-store directory.
/// `None` when unset or set to the empty string (persistence off).
pub fn store_dir() -> Option<PathBuf> {
    match std::env::var("DOTM_STORE_DIR") {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The `DOTM_SHARDS` knob: total worker count of a sharded campaign.
/// `None` when unset; `0` is malformed (a campaign has at least one
/// shard). Shard assignment is a pure function of `(DOTM_SHARD,
/// DOTM_SHARDS, class count)`, so every process derives the same
/// partition without coordination.
///
/// # Panics
/// On a malformed or zero value.
pub fn shards() -> Option<usize> {
    let n = knob("DOTM_SHARDS", parse_usize)?;
    if n == 0 {
        panic!("DOTM_SHARDS: expected at least 1 shard, got 0");
    }
    Some(n)
}

/// The `DOTM_SHARD` knob: this worker's shard index. `None` when unset.
/// Range-checked against `DOTM_SHARDS` by the campaign binary (the pair
/// is validated together through [`crate::ShardSpec::new`]).
///
/// # Panics
/// On a malformed value.
pub fn shard() -> Option<usize> {
    knob("DOTM_SHARD", parse_usize)
}

/// The `DOTM_TRACE` knob (default off): enables the `dotm-obs` recorder
/// in the bench binaries. Tracing is a pure side channel — it may never
/// change a reported number, a fingerprint, a journal byte or a store
/// entry (the determinism suite enforces this).
///
/// # Panics
/// On a malformed value.
pub fn trace() -> bool {
    bool_knob("DOTM_TRACE", false)
}

/// The `DOTM_TRACE_DIR` knob: where the bench binaries write their
/// NDJSON and chrome-trace exports. `None` when unset or set to the
/// empty string (callers default to the current directory).
pub fn trace_dir() -> Option<PathBuf> {
    match std::env::var("DOTM_TRACE_DIR") {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The `DOTM_SHARD_RETRIES` knob (default 2): extra dispatch rounds the
/// coordinator runs to re-issue shards whose worker crashed before
/// sealing its segment.
///
/// # Panics
/// On a malformed value.
pub fn shard_retries() -> u64 {
    u64_knob("DOTM_SHARD_RETRIES", 2)
}

/// The `DOTM_SHARD_ABORT_ONCE` knob: coordinator crash-injection — every
/// *first-round* worker receives `DOTM_ABORT_AFTER=<n>` so each shard
/// dies once and must be re-dispatched. `None` when unset or `0` (off).
///
/// # Panics
/// On a malformed value.
pub fn shard_abort_once() -> Option<u64> {
    match u64_knob("DOTM_SHARD_ABORT_ONCE", 0) {
        0 => None,
        n => Some(n),
    }
}

/// The `DOTM_ABORT_AFTER` knob: abort the campaign (through the in-order
/// class observer) after this many observed classes — the kill-and-resume
/// crash-injection hook. `None` when unset or `0` (off).
///
/// # Panics
/// On a malformed value.
pub fn abort_after() -> Option<u64> {
    match u64_knob("DOTM_ABORT_AFTER", 0) {
        0 => None,
        n => Some(n),
    }
}

/// The `DOTM_EXPECT_WARM` knob (default off): assert the run never
/// touched the solver — every measurement answered by the in-memory cache
/// or the persistent store. The warm-resume gates use it to turn "the
/// store silently went cold" into a hard failure.
///
/// # Panics
/// On a malformed value.
pub fn expect_warm() -> bool {
    bool_knob("DOTM_EXPECT_WARM", false)
}

/// The `DOTM_SHARD_MIN_SPEEDUP` knob (default 0.0): the `shard_speedup`
/// bench's wall-clock ratio gate. `0.0` means identity-only — always
/// honest numbers, never a flaky timing failure in CI.
///
/// # Panics
/// On a malformed value.
pub fn shard_min_speedup() -> f64 {
    f64_knob("DOTM_SHARD_MIN_SPEEDUP", 0.0)
}

/// The `DOTM_VARIANT_MIN_SPEEDUP` knob (default 0.0): the
/// `variant_speedup` bench's class-evaluation phase-cut ratio gate
/// (sequential assembly+LU work over lockstep assembly+LU+priming work).
/// `0.0` means identity-only — always honest numbers, never a flaky
/// timing failure in CI; `scripts/verify.sh` and CI set `1.3`.
///
/// # Panics
/// On a malformed value.
pub fn variant_min_speedup() -> f64 {
    f64_knob("DOTM_VARIANT_MIN_SPEEDUP", 0.0)
}

/// The `DOTM_PROGRESS` knob (default off): emit one `[progress]` line to
/// stderr per completed class. A pure side channel (stderr only — never a
/// report byte); the campaign service parses these lines into its event
/// stream.
///
/// # Panics
/// On a malformed value.
pub fn progress() -> bool {
    bool_knob("DOTM_PROGRESS", false)
}

/// The `DOTM_SERVE_POLL_MS` knob (default 25): the campaign service's
/// poll interval in milliseconds — the accept loop's idle sleep and the
/// event stream's journal-snapshot cadence. Clamped to at least 1.
///
/// # Panics
/// On a malformed value.
pub fn serve_poll_ms() -> u64 {
    u64_knob("DOTM_SERVE_POLL_MS", 25).max(1)
}

/// The `DOTM_SERVE_IO_TIMEOUT_MS` knob (default 10000): per-operation
/// socket read/write timeout for the campaign service's connections, in
/// milliseconds. A client that stalls mid-request (or stops draining a
/// response) for longer than this gets its connection dropped instead of
/// parking a handler thread forever. Clamped to at least 1.
///
/// # Panics
/// On a malformed value.
pub fn serve_io_timeout_ms() -> u64 {
    u64_knob("DOTM_SERVE_IO_TIMEOUT_MS", 10_000).max(1)
}

/// The `DOTM_SERVE_WORKERS` knob (default 0): how many shard workers the
/// campaign service gives a job that does not pin its own count. `0`
/// runs the job as one ordinary (resumable) campaign process.
///
/// # Panics
/// On a malformed value.
pub fn serve_workers() -> usize {
    usize_knob("DOTM_SERVE_WORKERS", 0)
}

/// The `DOTM_MACROS` knob: a comma-separated subset of macro names the
/// campaign should run (in its own canonical order). `None` when unset
/// or blank (all macros). Name validation happens in the campaign
/// binary, which owns the harness list; this accessor only splits.
pub fn macros() -> Option<Vec<String>> {
    let raw = std::env::var("DOTM_MACROS").ok()?;
    let names: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_grammar() {
        for s in ["1", "true", "ON", "Yes", " on "] {
            assert_eq!(parse_bool(s), Ok(true), "{s}");
        }
        for s in ["0", "false", "OFF", "No", " off "] {
            assert_eq!(parse_bool(s), Ok(false), "{s}");
        }
        for s in ["", "2", "maybe", "yess", "on off"] {
            assert!(parse_bool(s).is_err(), "{s:?} must be rejected");
        }
    }

    #[test]
    fn integer_grammar() {
        assert_eq!(parse_usize("42"), Ok(42));
        assert_eq!(parse_usize(" 7 "), Ok(7));
        assert_eq!(parse_u64("0"), Ok(0));
        assert_eq!(parse_u64("18446744073709551615"), Ok(u64::MAX));
        for s in ["", "-1", "3.5", "fourteen", "0x10", "1e3"] {
            assert!(parse_usize(s).is_err(), "{s:?} must be rejected");
            assert!(parse_u64(s).is_err(), "{s:?} must be rejected");
        }
    }

    #[test]
    fn float_grammar() {
        assert_eq!(parse_f64("0"), Ok(0.0));
        assert_eq!(parse_f64(" 1.75 "), Ok(1.75));
        assert_eq!(parse_f64("2e1"), Ok(20.0));
        for s in ["", "-0.5", "NaN", "inf", "fast", "1,5"] {
            assert!(parse_f64(s).is_err(), "{s:?} must be rejected");
        }
    }

    // The env-reading wrappers are exercised with test-unique variable
    // names: the test harness runs tests concurrently in one process, so
    // these must never touch a knob another test might read.
    #[test]
    fn unset_knobs_take_defaults() {
        assert!(bool_knob("DOTM_TEST_UNSET_B", true));
        assert!(!bool_knob("DOTM_TEST_UNSET_B", false));
        assert_eq!(usize_knob("DOTM_TEST_UNSET_U", 9), 9);
        assert_eq!(u64_knob("DOTM_TEST_UNSET_U64", 11), 11);
        assert_eq!(f64_knob("DOTM_TEST_UNSET_F", 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "DOTM_TEST_MALFORMED_F")]
    fn malformed_f64_knob_panics() {
        std::env::set_var("DOTM_TEST_MALFORMED_F", "-1");
        f64_knob("DOTM_TEST_MALFORMED_F", 0.0);
    }

    // The campaign knobs added since PR 5 are thin wrappers over the
    // tested grammars; assert their defaults and zero-means-off rules
    // where the harness leaves the real variables unset.
    #[test]
    fn campaign_knob_defaults_and_zero_rules() {
        if std::env::var("DOTM_SHARD_RETRIES").is_err() {
            assert_eq!(shard_retries(), 2);
        }
        if std::env::var("DOTM_SHARD_ABORT_ONCE").is_err() {
            assert_eq!(shard_abort_once(), None);
        }
        if std::env::var("DOTM_ABORT_AFTER").is_err() {
            assert_eq!(abort_after(), None);
        }
        if std::env::var("DOTM_EXPECT_WARM").is_err() {
            assert!(!expect_warm());
        }
        if std::env::var("DOTM_SHARD_MIN_SPEEDUP").is_err() {
            assert_eq!(shard_min_speedup(), 0.0);
        }
        if std::env::var("DOTM_PROGRESS").is_err() {
            assert!(!progress());
        }
        if std::env::var("DOTM_SERVE_POLL_MS").is_err() {
            assert_eq!(serve_poll_ms(), 25);
        }
        if std::env::var("DOTM_SERVE_IO_TIMEOUT_MS").is_err() {
            assert_eq!(serve_io_timeout_ms(), 10_000);
        }
        if std::env::var("DOTM_SERVE_WORKERS").is_err() {
            assert_eq!(serve_workers(), 0);
        }
        if std::env::var("DOTM_MACROS").is_err() {
            assert_eq!(macros(), None);
        }
        // The zero-means-off rule is pure; assert it through the parser.
        assert_eq!(parse_u64("0").ok().filter(|&n| n > 0), None);
    }

    #[test]
    fn set_knobs_parse() {
        std::env::set_var("DOTM_TEST_SET_B", "off");
        assert!(!bool_knob("DOTM_TEST_SET_B", true));
        std::env::set_var("DOTM_TEST_SET_U", "123");
        assert_eq!(usize_knob("DOTM_TEST_SET_U", 0), 123);
    }

    #[test]
    #[should_panic(expected = "DOTM_TEST_MALFORMED_B")]
    fn malformed_bool_knob_panics() {
        std::env::set_var("DOTM_TEST_MALFORMED_B", "banana");
        bool_knob("DOTM_TEST_MALFORMED_B", true);
    }

    #[test]
    #[should_panic(expected = "DOTM_TEST_MALFORMED_U")]
    fn malformed_usize_knob_panics() {
        std::env::set_var("DOTM_TEST_MALFORMED_U", "-3");
        usize_knob("DOTM_TEST_MALFORMED_U", 1);
    }

    #[test]
    fn threads_treats_zero_as_auto() {
        std::env::set_var("DOTM_TEST_THREADS_GRAMMAR", "0");
        // threads() reads the real DOTM_THREADS knob; the zero-is-auto
        // rule itself is pure, so assert it through the parser.
        assert_eq!(parse_usize("0").ok().filter(|&t| t > 0), None);
        assert_eq!(parse_usize("3").ok().filter(|&t| t > 0), Some(3));
    }

    #[test]
    fn trace_dir_empty_means_unset() {
        // trace_dir() reads DOTM_TRACE_DIR, unset under the harness.
        if std::env::var("DOTM_TRACE_DIR").is_err() {
            assert_eq!(trace_dir(), None);
        }
        // trace() defaults off when DOTM_TRACE is unset.
        if std::env::var("DOTM_TRACE").is_err() {
            assert!(!trace());
        }
    }

    #[test]
    fn store_dir_empty_means_unset() {
        std::env::set_var("DOTM_TEST_STORE_EMPTY", "  ");
        // store_dir() reads DOTM_STORE_DIR; the emptiness rule is what
        // matters and is visible through the public function only when
        // the real variable is unset, which is the harness default.
        if std::env::var("DOTM_STORE_DIR").is_err() {
            assert_eq!(store_dir(), None);
        }
    }
}
