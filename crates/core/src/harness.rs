//! The [`MacroHarness`] abstraction: how the test path drives one macro
//! cell type.
//!
//! A harness bundles everything the methodology needs per macro: the
//! testbench netlist (macro plus the "affected other macros" — bias
//! impedances, clock drivers — per the paper's §3.2 observation that
//! boundary-crossing faults must be simulated with the affected cells),
//! the layout to sprinkle, the measurement procedure, the process
//! perturbation, and the macro-specific voltage-signature classifier.

use crate::measure::MeasurementPlan;
use crate::processvar::{CommonSample, ProcessModel};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_rng::rngs::StdRng;
use dotm_sim::{SimError, SimOptions, SimStats, Simulator};

/// Drives circuit-level analysis of one macro cell type.
///
/// `Sync` is a supertrait: the parallel executor shares one harness
/// across worker threads, so implementations must hold only immutable
/// (or thread-safe) state — all five case-study harnesses are plain data.
pub trait MacroHarness: Sync {
    /// Macro name (matches the layout name).
    fn name(&self) -> &str;

    /// The macro's layout for defect sprinkling.
    fn layout(&self) -> Layout;

    /// Number of instances of this macro in the full circuit (256 for the
    /// comparator; 1 for ladder, bias and clock generator; 256 slices for
    /// the decoder).
    fn instance_count(&self) -> usize;

    /// A fresh testbench netlist (fault injection edits a clone of this).
    fn testbench(&self) -> Netlist;

    /// The measurement plan produced by [`MacroHarness::measure`].
    fn plan(&self) -> MeasurementPlan;

    /// Base simulator options for this harness's measurement procedure —
    /// rung 0 of the pipeline's convergence-escalation ladder. Higher
    /// rungs derive progressively more robust option sets from this one.
    fn sim_options(&self) -> SimOptions {
        SimOptions::default()
    }

    /// Runs the macro's measurement procedure on a (possibly faulted,
    /// possibly perturbed) netlist with the harness's base options.
    ///
    /// # Errors
    /// Propagates simulator failures; the pipeline escalates a
    /// non-converging faulty circuit through the retry ladder before
    /// applying its [`SimFailurePolicy`](crate::SimFailurePolicy).
    fn measure(&self, nl: &Netlist) -> Result<Vec<f64>, SimError> {
        self.measure_with(nl, &self.sim_options(), &mut SimStats::default())
    }

    /// Runs the measurement procedure with explicit solver options,
    /// merging the solver telemetry of every simulator it spins up into
    /// `stats` — on failure as well as success, so the accounting sees
    /// the work spent on circuits that never converged.
    ///
    /// Implementations should build every simulator through
    /// [`with_instrumented_sim`] (or merge
    /// [`Simulator::stats`](dotm_sim::Simulator::stats) manually on all
    /// exit paths).
    ///
    /// # Errors
    /// Propagates simulator failures.
    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
    ) -> Result<Vec<f64>, SimError>;

    /// Applies one process Monte-Carlo sample. The default perturbs every
    /// device generically; harnesses whose bias inputs track the process
    /// (comparator) override this.
    fn perturb(
        &self,
        nl: &mut Netlist,
        model: &ProcessModel,
        common: &CommonSample,
        rng: &mut StdRng,
    ) {
        model.perturb(nl, common, rng);
    }

    /// Classifies the voltage fault signature from the nominal and faulty
    /// measurement vectors.
    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature;

    /// Nets shared with other macros (clock/bias/reference/supply trunks):
    /// a fault touching one of these shifts *every* instance, so its
    /// current deviation scales with [`MacroHarness::instance_count`].
    fn shared_nets(&self) -> Vec<&'static str>;

    /// Chip-level absolute detection floor per current kind (A). Models
    /// tester accuracy plus the quiescent contribution of the macros not
    /// included in this harness's testbench.
    fn current_floor(&self, kind: CurrentKind) -> f64 {
        match kind {
            CurrentKind::IVdd => 500e-6,
            CurrentKind::Iddq => 20e-6,
            CurrentKind::Iinput => 50e-6,
        }
    }
}

/// Runs `f` over a fresh simulator bound to `nl` with `opts`, merging the
/// simulator's solver telemetry into `stats` whether or not the analysis
/// succeeds — the building block for [`MacroHarness::measure_with`]
/// implementations.
///
/// # Errors
/// Whatever `f` returns.
pub fn with_instrumented_sim<R>(
    nl: &Netlist,
    opts: &SimOptions,
    stats: &mut SimStats,
    f: impl FnOnce(&mut Simulator<'_>) -> Result<R, SimError>,
) -> Result<R, SimError> {
    let mut sim = Simulator::with_options(nl, opts.clone());
    let result = f(&mut sim);
    stats.merge(sim.stats());
    result
}
