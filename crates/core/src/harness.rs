//! The [`MacroHarness`] abstraction: how the test path drives one macro
//! cell type.
//!
//! A harness bundles everything the methodology needs per macro: the
//! testbench netlist (macro plus the "affected other macros" — bias
//! impedances, clock drivers — per the paper's §3.2 observation that
//! boundary-crossing faults must be simulated with the affected cells),
//! the layout to sprinkle, the measurement procedure, the process
//! perturbation, and the macro-specific voltage-signature classifier.

use crate::measure::MeasurementPlan;
use crate::processvar::{CommonSample, ProcessModel};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_rng::rngs::StdRng;
use dotm_sim::{
    LanePrime, NominalFactors, OpPoint, SharedAssembly, SimError, SimOptions, SimStats, Simulator,
};
use std::sync::{Arc, Mutex};

/// The class-shared solver context threaded through
/// [`MacroHarness::measure_with`].
///
/// `shared` hands every simulator the nominal testbench's compiled stamp
/// split so device-prefix-equal fault variants assemble as
/// `shared baseline + delta` (see [`SharedAssembly`]); `None` leaves each
/// simulator to split locally (still batched when
/// [`SimOptions::batch_assembly`] is on).
///
/// `prime` carries this specific variant lane's primed first DC Newton
/// iteration from the lockstep pre-pass ([`prime_lockstep_lanes`]); it is
/// installed into analysis slot 0 only, and the engine adopts it only
/// under bitwise guards, so it is a pure speed-up.
#[derive(Clone, Copy, Default)]
pub struct Batch<'b> {
    /// Class-shared compiled assembly baseline, if one was built.
    pub shared: Option<&'b Arc<SharedAssembly>>,
    /// This lane's primed first DC iteration, if the pre-pass built one.
    pub prime: Option<&'b Arc<LanePrime>>,
}

impl<'b> Batch<'b> {
    /// No shared context at all.
    pub const fn none() -> Self {
        Batch {
            shared: None,
            prime: None,
        }
    }

    /// Only the class-shared assembly (the pre-lockstep constructor; most
    /// call sites thread no prime).
    pub fn shared(shared: Option<&'b Arc<SharedAssembly>>) -> Self {
        Batch {
            shared,
            prime: None,
        }
    }

    /// This context with `prime` attached.
    pub fn with_prime(self, prime: Option<&'b Arc<LanePrime>>) -> Self {
        Batch { prime, ..self }
    }
}

/// One captured analysis slot: the nominal operating point plus (when the
/// rank-update path is enabled) the nominal system's LU factorisation,
/// shared across every fault variant of the same slot via `Arc`.
#[derive(Debug, Clone)]
struct SlotSeed {
    op: OpPoint,
    factors: Option<Arc<NominalFactors>>,
}

/// Collects the good-circuit operating point of every DC-rooted analysis a
/// harness runs, indexed by *analysis slot* — the position of the analysis
/// within the harness's fixed measurement procedure (first transient = slot
/// 0, second = slot 1, …). Filled once, during the single-threaded nominal
/// measurement, then frozen into a read-only [`WarmStart`].
#[derive(Debug, Default)]
pub struct WarmCapture {
    slots: Mutex<Vec<Option<SlotSeed>>>,
}

impl WarmCapture {
    /// An empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the operating point solved for analysis slot `slot`,
    /// together with the nominal LU factors when the capture run holds
    /// them (rank-update mode only).
    pub fn record(&self, slot: usize, op: OpPoint, factors: Option<Arc<NominalFactors>>) {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if slots.len() <= slot {
            slots.resize(slot + 1, None);
        }
        slots[slot] = Some(SlotSeed { op, factors });
    }

    /// Freezes the captured points into an immutable seed table.
    pub fn freeze(self) -> WarmStart {
        WarmStart {
            seeds: self.slots.into_inner().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// The frozen per-analysis nominal operating points used to warm-start
/// Newton on fault-injected variants of the same testbench. Fault
/// injection only ever *appends* nodes and devices, so the nominal `x`
/// remapped into the faulted circuit's unknown vector is a physically
/// meaningful initial guess; [`Simulator::seed_dc_from`] checks the
/// append-only invariant and the solver falls back to the cold homotopy
/// chain whenever the seed does not converge.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    seeds: Vec<Option<SlotSeed>>,
}

impl WarmStart {
    /// The captured nominal operating point for analysis slot `slot`.
    pub fn seed(&self, slot: usize) -> Option<&OpPoint> {
        self.seeds.get(slot).and_then(|s| s.as_ref()).map(|s| &s.op)
    }

    /// The captured nominal LU factorisation for analysis slot `slot`
    /// (present only when the capture run had rank updates enabled).
    pub fn factors(&self, slot: usize) -> Option<&Arc<NominalFactors>> {
        self.seeds
            .get(slot)
            .and_then(|s| s.as_ref())
            .and_then(|s| s.factors.as_ref())
    }

    /// Number of analysis slots that captured a point.
    pub fn len(&self) -> usize {
        self.seeds.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if no analysis captured a point.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Warm-start context threaded through [`MacroHarness::measure_with`].
#[derive(Clone, Copy, Debug, Default)]
pub enum Warm<'a> {
    /// No warm-start: every DC solve starts from the cold homotopy chain.
    #[default]
    Cold,
    /// Capture mode: record each analysis's solved operating point (used
    /// once, on the nominal good circuit).
    Capture(&'a WarmCapture),
    /// Seed mode: seed each analysis's first DC solve from the captured
    /// nominal point (used on every fault-injected / perturbed variant).
    Seed(&'a WarmStart),
}

/// Counts analysis slots within one `measure_with` invocation so capture
/// and seed runs agree on which analysis is which. Create one per
/// `measure_with` call; [`with_instrumented_sim_warm`] advances it on
/// every analysis, including failed ones, so later slots stay aligned.
#[derive(Debug, Default)]
pub struct WarmCursor {
    next: usize,
}

impl WarmCursor {
    /// A cursor positioned at slot 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims the next analysis slot.
    pub fn next_slot(&mut self) -> usize {
        let slot = self.next;
        self.next += 1;
        slot
    }
}

/// Drives circuit-level analysis of one macro cell type.
///
/// `Sync` is a supertrait: the parallel executor shares one harness
/// across worker threads, so implementations must hold only immutable
/// (or thread-safe) state — all five case-study harnesses are plain data.
pub trait MacroHarness: Sync {
    /// Macro name (matches the layout name).
    fn name(&self) -> &str;

    /// The macro's layout for defect sprinkling.
    fn layout(&self) -> Layout;

    /// Number of instances of this macro in the full circuit (256 for the
    /// comparator; 1 for ladder, bias and clock generator; 256 slices for
    /// the decoder).
    fn instance_count(&self) -> usize;

    /// A fresh testbench netlist (fault injection edits a clone of this).
    fn testbench(&self) -> Netlist;

    /// The measurement plan produced by [`MacroHarness::measure`].
    fn plan(&self) -> MeasurementPlan;

    /// Base simulator options for this harness's measurement procedure —
    /// rung 0 of the pipeline's convergence-escalation ladder. Higher
    /// rungs derive progressively more robust option sets from this one.
    fn sim_options(&self) -> SimOptions {
        SimOptions::default()
    }

    /// Whether this harness's measurement procedure *starts* with a plain
    /// DC operating-point solve of the (possibly faulted) testbench at
    /// the base options — the exact shape the lockstep variant pre-pass
    /// ([`prime_lockstep_lanes`]) primes. A pure performance hint: the
    /// engine adopts a prime only under bitwise guards, so a wrong `true`
    /// merely wastes the pre-pass and a wrong `false` only forgoes the
    /// speed-up; neither can move a bit.
    fn lockstep_dc(&self) -> bool {
        false
    }

    /// Runs the macro's measurement procedure on a (possibly faulted,
    /// possibly perturbed) netlist with the harness's base options.
    ///
    /// # Errors
    /// Propagates simulator failures; the pipeline escalates a
    /// non-converging faulty circuit through the retry ladder before
    /// applying its [`SimFailurePolicy`](crate::SimFailurePolicy).
    fn measure(&self, nl: &Netlist) -> Result<Vec<f64>, SimError> {
        self.measure_with(
            nl,
            &self.sim_options(),
            &mut SimStats::default(),
            Warm::Cold,
            Batch::none(),
        )
    }

    /// Runs the measurement procedure with explicit solver options,
    /// merging the solver telemetry of every simulator it spins up into
    /// `stats` — on failure as well as success, so the accounting sees
    /// the work spent on circuits that never converged.
    ///
    /// Implementations should build every simulator through
    /// [`with_instrumented_sim_warm`] (or merge
    /// [`Simulator::stats`](dotm_sim::Simulator::stats) manually on all
    /// exit paths), threading `warm` plus a fresh [`WarmCursor`] through
    /// every analysis so capture and seed runs agree on slot numbering.
    ///
    /// # Errors
    /// Propagates simulator failures.
    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError>;

    /// Applies one process Monte-Carlo sample. The default perturbs every
    /// device generically; harnesses whose bias inputs track the process
    /// (comparator) override this.
    fn perturb(
        &self,
        nl: &mut Netlist,
        model: &ProcessModel,
        common: &CommonSample,
        rng: &mut StdRng,
    ) {
        model.perturb(nl, common, rng);
    }

    /// Classifies the voltage fault signature from the nominal and faulty
    /// measurement vectors.
    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature;

    /// Nets shared with other macros (clock/bias/reference/supply trunks):
    /// a fault touching one of these shifts *every* instance, so its
    /// current deviation scales with [`MacroHarness::instance_count`].
    fn shared_nets(&self) -> Vec<&'static str>;

    /// Chip-level absolute detection floor per current kind (A). Models
    /// tester accuracy plus the quiescent contribution of the macros not
    /// included in this harness's testbench.
    fn current_floor(&self, kind: CurrentKind) -> f64 {
        match kind {
            CurrentKind::IVdd => 500e-6,
            CurrentKind::Iddq => 20e-6,
            CurrentKind::Iinput => 50e-6,
        }
    }
}

/// Runs `f` over a fresh simulator bound to `nl` with `opts`, merging the
/// simulator's solver telemetry into `stats` whether or not the analysis
/// succeeds — the building block for [`MacroHarness::measure_with`]
/// implementations.
///
/// # Errors
/// Whatever `f` returns.
pub fn with_instrumented_sim<R>(
    nl: &Netlist,
    opts: &SimOptions,
    stats: &mut SimStats,
    f: impl FnOnce(&mut Simulator<'_>) -> Result<R, SimError>,
) -> Result<R, SimError> {
    let mut sim = Simulator::with_options(nl, opts.clone());
    let _span = dotm_obs::span_with("analysis", || format!("analysis[{}]", nl.name()));
    let result = f(&mut sim);
    stats.merge(sim.stats());
    result
}

/// Warm-start-aware variant of [`with_instrumented_sim`]: claims the next
/// analysis slot from `cursor`, seeds the simulator's first DC solve from
/// the nominal operating point (in [`Warm::Seed`] mode) or records the
/// solved point after `f` (in [`Warm::Capture`] mode), and merges solver
/// telemetry into `stats` on every exit path.
///
/// The cursor advances even when `f` fails so subsequent analyses keep
/// their slot alignment between the capture run and seeded runs.
///
/// # Errors
/// Whatever `f` returns.
pub fn with_instrumented_sim_warm<R>(
    nl: &Netlist,
    opts: &SimOptions,
    stats: &mut SimStats,
    warm: Warm<'_>,
    batch: Batch<'_>,
    cursor: &mut WarmCursor,
    f: impl FnOnce(&mut Simulator<'_>) -> Result<R, SimError>,
) -> Result<R, SimError> {
    let slot = cursor.next_slot();
    let mut sim = Simulator::with_options(nl, opts.clone());
    if let Some(sh) = batch.shared {
        sim.install_shared_assembly(Arc::clone(sh));
    }
    if slot == 0 {
        if let Some(p) = batch.prime {
            // The lockstep pre-pass captured analysis slot 0's first DC
            // iteration; later slots start from different state and
            // would only refuse the prime at adoption time.
            sim.install_lane_prime(Arc::clone(p));
        }
    }
    if let Warm::Seed(start) = warm {
        if let Some(op) = start.seed(slot) {
            // seed_dc_from rejects seeds that violate the append-only
            // invariant; a rejected seed just means a cold start — and
            // the nominal factors only embed into circuits that satisfy
            // the same invariant, so they are installed only when the
            // seed was accepted.
            if sim.seed_dc_from(op) {
                if let Some(factors) = start.factors(slot) {
                    sim.install_nominal_factors(factors.clone());
                }
            }
        }
    }
    let span = dotm_obs::span_with("analysis", || format!("analysis {slot} [{}]", nl.name()));
    let result = f(&mut sim);
    drop(span);
    if let Warm::Capture(capture) = warm {
        if let Some(op) = sim.last_dc_op() {
            // Factorising the nominal system costs one extra assembly +
            // LU per analysis slot; only pay it when the rank-update
            // path that consumes the factors is enabled.
            let factors = if opts.rank_update {
                sim.capture_nominal_factors()
            } else {
                None
            };
            capture.record(slot, op, factors);
        }
    }
    stats.merge(sim.stats());
    result
}

/// The lockstep variant pre-pass: captures the first DC Newton iteration
/// of every lane netlist — setting each scratch simulator up exactly as
/// [`with_instrumented_sim_warm`] sets up the measuring simulator for
/// analysis slot 0 (shared assembly installed, slot-0 warm seed applied)
/// — and factors all captured systems in one blocked SoA pass
/// (`dotm_sim::soa`).
///
/// The scratch simulators' telemetry is deliberately discarded: the
/// pre-pass does no solver work the measurement would count, and the
/// measuring simulator's stats must be bit-identical lockstep on or off.
/// The whole pass is attributed to the `variant_lockstep` obs phase.
pub fn prime_lockstep_lanes(
    lanes: &[&Netlist],
    opts: &SimOptions,
    warm: Warm<'_>,
    shared: Option<&Arc<SharedAssembly>>,
) -> Vec<Option<Arc<LanePrime>>> {
    let t0 = dotm_obs::start();
    let mut systems = Vec::with_capacity(lanes.len());
    for nl in lanes {
        let mut sim = Simulator::with_options(nl, opts.clone());
        if let Some(sh) = shared {
            sim.install_shared_assembly(Arc::clone(sh));
        }
        if let Warm::Seed(start) = warm {
            if let Some(op) = start.seed(0) {
                // Acceptance mirrors the measuring run: a rejected seed
                // means both the capture and the measurement start from
                // zeros, so the capture stays bit-faithful either way.
                let _ = sim.seed_dc_from(op);
            }
        }
        systems.push(sim.lockstep_capture());
    }
    let primes = dotm_sim::soa::prime_lanes(systems);
    dotm_obs::phase(dotm_obs::Phase::VariantLockstep, t0);
    primes
}
