//! Yield and test-escape modelling.
//!
//! The paper motivates defect-oriented testing with reliability: limited
//! functional verification "does not ensure that all defects are detected,
//! causing potential reliability problems". This module quantifies that —
//! the classic negative-binomial yield model and the Williams–Brown defect
//! level (shipped-defective rate) as a function of fault coverage turn the
//! coverage percentages of Figs. 3–5 into parts-per-million escape rates.

/// Chip-level yield model for spot defects.
///
/// ```
/// use dotm_core::YieldModel;
/// let m = YieldModel::default();
/// // Raising coverage from the paper's 93.3 % to its post-DfT 99.1 %
/// // cuts the shipped-defective rate by roughly 7x.
/// let before = m.escapes_ppm(0.933);
/// let after = m.escapes_ppm(0.991);
/// assert!(before / after > 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldModel {
    /// Expected number of *fault-causing* defects per die (`λ = A·D₀·θ`).
    pub faults_per_die: f64,
    /// Defect clustering parameter `α` of the negative-binomial model;
    /// `α → ∞` recovers the Poisson model. Typical industrial values sit
    /// near 2.
    pub clustering_alpha: f64,
}

impl YieldModel {
    /// Creates a model; `clustering_alpha <= 0` selects the Poisson limit.
    pub fn new(faults_per_die: f64, clustering_alpha: f64) -> Self {
        YieldModel {
            faults_per_die: faults_per_die.max(0.0),
            clustering_alpha,
        }
    }

    /// The probability that a die carries no fault at all.
    pub fn yield_fraction(&self) -> f64 {
        let lambda = self.faults_per_die;
        if self.clustering_alpha > 0.0 && self.clustering_alpha.is_finite() {
            (1.0 + lambda / self.clustering_alpha).powf(-self.clustering_alpha)
        } else {
            (-lambda).exp()
        }
    }

    /// Williams–Brown defect level: the fraction of *shipped* parts that
    /// are defective when the production test achieves fault coverage
    /// `coverage` (0..=1):
    ///
    /// `DL = 1 − Y^(1−T)`
    pub fn defect_level(&self, coverage: f64) -> f64 {
        let t = coverage.clamp(0.0, 1.0);
        1.0 - self.yield_fraction().powf(1.0 - t)
    }

    /// Defect level expressed in defective parts per million shipped.
    pub fn escapes_ppm(&self, coverage: f64) -> f64 {
        1e6 * self.defect_level(coverage)
    }
}

impl Default for YieldModel {
    /// A mid-nineties mixed-signal die: ~0.15 fault-causing defects per
    /// die (≈ 86 % yield) with moderate clustering.
    fn default() -> Self {
        YieldModel::new(0.15, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_limit_matches_exponential() {
        let nb = YieldModel::new(0.2, f64::INFINITY);
        let p = YieldModel::new(0.2, 0.0);
        assert!((nb.yield_fraction() - (-0.2f64).exp()).abs() < 1e-12);
        assert!((p.yield_fraction() - (-0.2f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn clustering_raises_yield_for_same_density() {
        let clustered = YieldModel::new(0.5, 1.0);
        let poisson = YieldModel::new(0.5, 0.0);
        assert!(clustered.yield_fraction() > poisson.yield_fraction());
    }

    #[test]
    fn full_coverage_ships_no_defects() {
        let m = YieldModel::default();
        assert!(m.defect_level(1.0).abs() < 1e-12);
        assert_eq!(m.escapes_ppm(1.0), 0.0);
    }

    #[test]
    fn zero_coverage_ships_all_faulty_parts() {
        let m = YieldModel::default();
        let dl = m.defect_level(0.0);
        assert!((dl - (1.0 - m.yield_fraction())).abs() < 1e-12);
    }

    #[test]
    fn defect_level_is_monotone_in_coverage() {
        let m = YieldModel::default();
        let mut last = f64::INFINITY;
        for k in 0..=10 {
            let dl = m.defect_level(k as f64 / 10.0);
            assert!(dl <= last + 1e-15);
            last = dl;
        }
    }

    #[test]
    fn paper_scale_escape_reduction() {
        // The DfT move 93.3 % → 99.1 % coverage cuts escapes by ~7×.
        let m = YieldModel::default();
        let before = m.escapes_ppm(0.933);
        let after = m.escapes_ppm(0.991);
        assert!(
            before / after > 6.0,
            "before {before:.0} ppm, after {after:.0} ppm"
        );
        assert!(
            before > 5_000.0 && before < 15_000.0,
            "before {before:.0} ppm"
        );
    }
}
