//! Deterministic parallel execution of embarrassingly parallel loops.
//!
//! The methodology's hot paths — per-class fault evaluation, good-space
//! Monte Carlo, per-macro global runs — are all "map a pure function over
//! an index range" problems. This module runs such maps across OS threads
//! (`std::thread::scope` plus one shared atomic work index, no external
//! dependencies) while keeping the output **bit-for-bit identical to the
//! serial path**: every item's result is collected under its original
//! index, so thread count and scheduling order never leak into reports.
//!
//! Thread count resolution, in priority order:
//!
//! 1. an explicit [`ExecConfig { threads }`](ExecConfig) with `threads > 0`,
//! 2. the `DOTM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `threads = 1` takes a plain serial loop on the calling thread — exactly
//! the pre-parallel code path, with no scope, channel or allocation
//! overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count configuration for the parallel executor.
///
/// `threads == 0` means "auto": resolve from `DOTM_THREADS`, falling back
/// to the machine's available parallelism. Results never depend on the
/// value — only wall-clock time does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Worker threads to use (0 = auto).
    pub threads: usize,
}

impl ExecConfig {
    /// Forces the serial code path.
    pub fn serial() -> Self {
        ExecConfig { threads: 1 }
    }

    /// An explicit thread count (0 = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig { threads }
    }

    /// The number of worker threads this configuration resolves to for a
    /// loop of `items` elements.
    pub fn effective_threads(&self, items: usize) -> usize {
        let configured = if self.threads > 0 {
            self.threads
        } else {
            crate::env::threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        };
        configured.min(items).max(1)
    }
}

/// Maps `f` over `items`, in parallel when the configuration allows,
/// returning results in item order.
///
/// `f` receives `(index, &item)` and must be a pure function of them (it
/// may read shared state, never write). Determinism contract: the output
/// vector equals `items.iter().enumerate().map(|(i, t)| f(i, t))` exactly,
/// for every thread count.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(cfg: &ExecConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = cfg.effective_threads(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (next, collected, f) = (&next, &collected, &f);
            scope.spawn(move || {
                // A per-worker span shows lifetime and utilisation in the
                // trace side channel (inert unless DOTM_TRACE is on).
                let _worker = dotm_obs::span_with("exec", || format!("worker {w}"));
                // Per-worker batching of results keeps lock traffic low
                // without changing the index-ordered output.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                if !local.is_empty() {
                    // A panicking sibling poisons the mutex; recovering the
                    // guard instead of unwrapping avoids a double panic
                    // (abort) while this scope unwinds — the original panic
                    // still propagates when the scope joins.
                    collected
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .extend(local);
                }
            });
        }
    });

    let mut indexed = collected
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] over a bare index range — for loops that have no natural
/// input slice.
pub fn par_map_indices<R, F>(cfg: &ExecConfig, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(cfg, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |i: usize, t: &u64| t.wrapping_mul(0x9e3779b9).wrapping_add(i as u64);
        let serial = par_map(&ExecConfig::serial(), &items, f);
        for threads in [2, 3, 8, 64] {
            let parallel = par_map(&ExecConfig::with_threads(threads), &items, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&ExecConfig::default(), &empty, |_, &x| x).is_empty());
        let one = [7u32];
        assert_eq!(
            par_map(&ExecConfig::with_threads(8), &one, |i, &x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn index_range_variant_matches_direct_map() {
        let out = par_map_indices(&ExecConfig::with_threads(4), 100, |i| i * i);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn effective_threads_clamps_to_items() {
        let cfg = ExecConfig::with_threads(16);
        assert_eq!(cfg.effective_threads(3), 3);
        assert_eq!(cfg.effective_threads(0), 1);
        assert_eq!(ExecConfig::serial().effective_threads(100), 1);
    }

    #[test]
    fn worker_panic_propagates_without_abort() {
        // One item panics while siblings are mid-batch: the scope must
        // surface the original panic (not abort on a poisoned mutex).
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&ExecConfig::with_threads(4), &items, |_, &i| {
                if i == 13 {
                    panic!("boom");
                }
                i * 2
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn results_arrive_in_item_order_under_contention() {
        // Items deliberately finish out of order (reverse-proportional
        // busy work); the output must still be index-ordered.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&ExecConfig::with_threads(8), &items, |_, &i| {
            let spin = (64 - i) * 500;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc.wrapping_mul(0)) // acc folded in to defeat optimisation
        });
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i);
        }
    }
}
