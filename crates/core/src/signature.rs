//! Fault signatures and detection sets — the vocabulary of the paper's
//! Tables 2 and 3 and Figures 3–5.

use std::fmt;

/// The voltage fault-signature categories of the paper's Table 2.
///
/// Stuck-at, offset and mixed signatures reach the converter output as
/// missing codes; clock-value deviations and fault-free behaviour are
/// invisible to the simple voltage test (see
/// [`VoltageSignature::causes_missing_code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VoltageSignature {
    /// The macro output is stuck at one decision.
    OutputStuckAt,
    /// The decision threshold shifted by more than 8 mV (one LSB).
    Offset,
    /// Weak, indeterminate or otherwise mixed output levels.
    Mixed,
    /// The macro behaves correctly but a clock-distribution line carries a
    /// deviating value.
    ClockValue,
    /// Indistinguishable from the fault-free circuit by voltage tests.
    NoDeviation,
}

impl VoltageSignature {
    /// All categories in the paper's table order.
    pub const ALL: [VoltageSignature; 5] = [
        VoltageSignature::OutputStuckAt,
        VoltageSignature::Offset,
        VoltageSignature::Mixed,
        VoltageSignature::ClockValue,
        VoltageSignature::NoDeviation,
    ];

    /// `true` if this signature propagates to a missing code at the ADC
    /// output. Stuck-at and offset signatures lose codes directly; a
    /// mixed (weak/indeterminate-level) output is resolved by the decoder's
    /// input gates into a deterministic wrong thermometer bit, which also
    /// corrupts codes. Clock-value deviations and fault-free behaviour do
    /// not reach the output.
    pub fn causes_missing_code(self) -> bool {
        matches!(
            self,
            VoltageSignature::OutputStuckAt | VoltageSignature::Offset | VoltageSignature::Mixed
        )
    }
}

impl fmt::Display for VoltageSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VoltageSignature::OutputStuckAt => "Output Stuck At",
            VoltageSignature::Offset => "Offset (> 8 mV)",
            VoltageSignature::Mixed => "Mixed",
            VoltageSignature::ClockValue => "Clock value",
            VoltageSignature::NoDeviation => "No deviations",
        };
        write!(f, "{s}")
    }
}

/// The current measurements of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CurrentKind {
    /// Analog power-supply current.
    IVdd,
    /// Quiescent current of the digital supply (clock generator/decoder).
    Iddq,
    /// Current drawn by or supplied to an input terminal.
    Iinput,
}

impl CurrentKind {
    /// All kinds in the paper's table order.
    pub const ALL: [CurrentKind; 3] = [CurrentKind::IVdd, CurrentKind::Iddq, CurrentKind::Iinput];
}

impl fmt::Display for CurrentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CurrentKind::IVdd => "IVdd",
            CurrentKind::Iddq => "IDDQ",
            CurrentKind::Iinput => "Iinput",
        };
        write!(f, "{s}")
    }
}

/// Which current measurements flag a fault (a fault may flag several —
/// the paper's Table 3 rows overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CurrentFlags {
    /// Analog supply current outside its 3σ band.
    pub ivdd: bool,
    /// Digital quiescent current outside its band.
    pub iddq: bool,
    /// An input-terminal current outside its band.
    pub iinput: bool,
}

impl CurrentFlags {
    /// `true` if any current measurement detects the fault.
    pub fn any(self) -> bool {
        self.ivdd || self.iddq || self.iinput
    }

    /// Looks up one kind.
    pub fn get(self, kind: CurrentKind) -> bool {
        match kind {
            CurrentKind::IVdd => self.ivdd,
            CurrentKind::Iddq => self.iddq,
            CurrentKind::Iinput => self.iinput,
        }
    }

    /// Sets one kind.
    pub fn set(&mut self, kind: CurrentKind, value: bool) {
        match kind {
            CurrentKind::IVdd => self.ivdd = value,
            CurrentKind::Iddq => self.iddq = value,
            CurrentKind::Iinput => self.iinput = value,
        }
    }

    /// Merges (ORs) another flag set into this one.
    pub fn merge(&mut self, other: CurrentFlags) {
        self.ivdd |= other.ivdd;
        self.iddq |= other.iddq;
        self.iinput |= other.iinput;
    }
}

/// The complete detection outcome of one fault class against the paper's
/// simple test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionSet {
    /// Detected by the missing-code (voltage) test.
    pub missing_code: bool,
    /// Current-measurement detections.
    pub currents: CurrentFlags,
}

impl DetectionSet {
    /// `true` if any mechanism detects the fault.
    pub fn detected(self) -> bool {
        self.missing_code || self.currents.any()
    }

    /// Detected by voltage only.
    pub fn voltage_only(self) -> bool {
        self.missing_code && !self.currents.any()
    }

    /// Detected by current only.
    pub fn current_only(self) -> bool {
        !self.missing_code && self.currents.any()
    }

    /// Detected only by the IDDQ measurement.
    pub fn iddq_only(self) -> bool {
        !self.missing_code && self.currents.iddq && !self.currents.ivdd && !self.currents.iinput
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_code_mapping() {
        assert!(VoltageSignature::OutputStuckAt.causes_missing_code());
        assert!(VoltageSignature::Offset.causes_missing_code());
        assert!(VoltageSignature::Mixed.causes_missing_code());
        assert!(!VoltageSignature::ClockValue.causes_missing_code());
        assert!(!VoltageSignature::NoDeviation.causes_missing_code());
    }

    #[test]
    fn current_flags_merge_and_query() {
        let mut f = CurrentFlags::default();
        assert!(!f.any());
        f.set(CurrentKind::Iddq, true);
        assert!(f.any() && f.get(CurrentKind::Iddq));
        let mut g = CurrentFlags::default();
        g.set(CurrentKind::IVdd, true);
        f.merge(g);
        assert!(f.ivdd && f.iddq && !f.iinput);
    }

    #[test]
    fn detection_set_classification() {
        let v_only = DetectionSet {
            missing_code: true,
            currents: CurrentFlags::default(),
        };
        assert!(v_only.detected() && v_only.voltage_only() && !v_only.current_only());
        let iddq = DetectionSet {
            missing_code: false,
            currents: CurrentFlags {
                iddq: true,
                ..Default::default()
            },
        };
        assert!(iddq.current_only() && iddq.iddq_only());
        let both = DetectionSet {
            missing_code: true,
            currents: CurrentFlags {
                ivdd: true,
                ..Default::default()
            },
        };
        assert!(both.detected() && !both.voltage_only() && !both.current_only());
        let none = DetectionSet {
            missing_code: false,
            currents: CurrentFlags::default(),
        };
        assert!(!none.detected());
    }
}
