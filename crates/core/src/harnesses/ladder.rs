//! Harness for the dual-ladder reference string.

use crate::harness::{with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCursor};
use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_adc::behavior::FlashAdc;
use dotm_adc::ladder::{ideal_tap_voltage, ladder_testbench, tap_node, TAPS};
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_sim::{SimError, SimOptions, SimStats};

/// Deviation treated as a hard (stuck) reference failure (V).
const RAIL_DEV: f64 = 0.5;

/// Harness for the ladder macro. A single DC operating point yields all
/// 256 tap voltages (the "decisions") and the reference input currents.
#[derive(Debug, Clone, Default)]
pub struct LadderHarness;

impl MacroHarness for LadderHarness {
    fn name(&self) -> &str {
        "ladder"
    }

    fn layout(&self) -> Layout {
        dotm_adc::layouts::ladder_layout()
    }

    fn instance_count(&self) -> usize {
        1
    }

    fn testbench(&self) -> Netlist {
        ladder_testbench()
    }

    fn plan(&self) -> MeasurementPlan {
        let mut labels = Vec::new();
        for k in 1..=TAPS {
            labels.push(MeasureLabel::new(MeasureKind::Decision, format!("tap{k}")));
        }
        labels.push(MeasureLabel::new(
            MeasureKind::Current(CurrentKind::Iinput),
            "i(VRH)",
        ));
        labels.push(MeasureLabel::new(
            MeasureKind::Current(CurrentKind::Iinput),
            "i(VRL)",
        ));
        // Terminal balance: a fault-free two-terminal ladder returns every
        // electron (i(VRH) + i(VRL) ≈ 0 independent of the sheet-ρ spread),
        // so any leak to the substrate or a neighbouring structure shows
        // up here with an essentially zero-width good band.
        labels.push(MeasureLabel::new(
            MeasureKind::Current(CurrentKind::Iinput),
            "i(VRH)+i(VRL)",
        ));
        MeasurementPlan { labels }
    }

    // The first (and only) analysis is a plain base-gmin DC operating
    // point, so a lockstep-primed first iteration is always adoptable.
    fn lockstep_dc(&self) -> bool {
        true
    }

    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let mut cursor = WarmCursor::new();
        let op = with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
            sim.dc_op()
        })?;
        let mut out = Vec::with_capacity(TAPS + 2);
        for k in 1..=TAPS {
            out.push(op.voltage(tap_node(nl, k)));
        }
        let mut sum = 0.0;
        for src in ["VRH", "VRL"] {
            let i = nl
                .device_id(src)
                .and_then(|id| op.branch_current(id))
                .unwrap_or(0.0);
            sum += i;
            out.push(i);
        }
        out.push(sum);
        Ok(out)
    }

    fn classify_voltage(&self, _nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
        // Propagate the faulty reference set through the behavioural
        // converter (ideal comparators, real decoder): this is the exact
        // sensitisation path of the paper.
        let mut adc = FlashAdc::ideal();
        let mut worst = 0.0f64;
        for (k, &v) in faulty.iter().enumerate().take(TAPS) {
            adc.set_reference(k, v);
            worst = worst.max((v - ideal_tap_voltage(k + 1)).abs());
        }
        if worst > RAIL_DEV {
            return VoltageSignature::OutputStuckAt;
        }
        if adc.fails_missing_code_test() {
            VoltageSignature::Offset
        } else {
            VoltageSignature::NoDeviation
        }
    }

    fn shared_nets(&self) -> Vec<&'static str> {
        Vec::new() // single instance: no multiplicity scaling
    }

    fn current_floor(&self, kind: CurrentKind) -> f64 {
        match kind {
            // The reference current is milliamp-scale; detection rides on
            // its tight resistor-matching band.
            CurrentKind::Iinput => 50e-6,
            CurrentKind::IVdd => 500e-6,
            CurrentKind::Iddq => 20e-6,
        }
    }
}
