//! Harness for the comparator macro — the cell the paper analyses in
//! depth (§3.2).

use crate::harness::{with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCursor};
use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
use crate::processvar::{CommonSample, ProcessModel};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_adc::comparator::{
    comparator_testbench, decision_sim_time, read_decision, ComparatorConfig, ComparatorStimulus,
};
use dotm_adc::layouts::{comparator_layout, LayoutConfig};
use dotm_adc::process::{Phase, CLOCK_PERIOD, VREF_HI, VREF_LO};
use dotm_layout::Layout;
use dotm_netlist::{DeviceKind, Netlist, Waveform};
use dotm_rng::rngs::StdRng;
use dotm_sim::{SimError, SimOptions, SimStats, Simulator};

/// The differential drive points probed by the voltage test, in volts
/// around the reference. ±8 mV is the paper's one-LSB offset bound.
pub const DECISION_DVS: [f64; 4] = [-0.050, -0.008, 0.008, 0.050];

/// Reference-range extremes probed by the voltage test (the missing-code
/// stimulus sweeps every reference, so faults that only break conversion
/// near the range edges are still voltage-detected).
pub const EXTREME_VREFS: [f64; 2] = [1.7, 3.3];

/// Differential drive at the extreme references.
pub const EXTREME_DV: f64 = 0.030;

/// Input levels for the current test: "an input voltage higher than the
/// highest reference voltage and lower than the lowest reference voltage".
pub const CURRENT_VINS: [f64; 2] = [VREF_LO - 0.2, VREF_HI + 0.2];

/// Reference voltage used by the decision runs (mid-range tap).
pub const VREF_MID: f64 = 2.5;

/// Logic threshold on the differential flipflop output.
const LOGIC: f64 = 2.0;

/// Clock-line level deviation flagged as a "clock value" signature (V).
const CLOCK_DEV: f64 = 0.30;

/// Harness for the comparator macro.
#[derive(Debug, Clone)]
pub struct ComparatorHarness {
    /// Circuit variant (DfT flipflop or production).
    pub cfg: ComparatorConfig,
    /// Layout variant (DfT bias order or production).
    pub lcfg: LayoutConfig,
    /// Transient timestep (s).
    pub dt: f64,
}

impl ComparatorHarness {
    /// Production comparator.
    pub fn production() -> Self {
        ComparatorHarness {
            cfg: ComparatorConfig::default(),
            lcfg: LayoutConfig::default(),
            dt: 0.25e-9,
        }
    }

    /// Comparator with both DfT measures applied (redesigned flipflop and
    /// reordered bias trunks).
    pub fn dft() -> Self {
        ComparatorHarness {
            cfg: ComparatorConfig { dft_flipflop: true },
            lcfg: LayoutConfig {
                dft_bias_order: true,
            },
            dt: 0.25e-9,
        }
    }

    /// The source names measured as input-terminal currents.
    fn iinput_sources() -> [&'static str; 6] {
        ["VIN", "VREF", "VBN", "VBNC", "VBP", "VAZ"]
    }
}

impl MacroHarness for ComparatorHarness {
    fn name(&self) -> &str {
        if self.cfg.dft_flipflop {
            "comparator_dft"
        } else {
            "comparator"
        }
    }

    fn layout(&self) -> Layout {
        comparator_layout(self.cfg, self.lcfg)
    }

    fn instance_count(&self) -> usize {
        dotm_adc::process::N_COMPARATORS
    }

    fn testbench(&self) -> Netlist {
        let stim = ComparatorStimulus::dc_offset(VREF_MID, 0.0);
        let mut nl = comparator_testbench(self.cfg, &stim);
        // Representative pair mismatches: in silicon every matched pair
        // carries a residual offset, so a fault that merely *attenuates*
        // the signal (e.g. a vin↔vref bridge) or ties a differential pair
        // together (oa↔ob) leaves the decision to the offset — a stuck
        // output. Without these, the noiseless simulator resolves
        // arbitrarily small differentials (and breaks metastable ties by
        // numerical accident), so such faults masquerade as fault-free.
        for (dev, dvt) in [("M1", 0.003), ("ML1", 0.002), ("MFN1", 0.002)] {
            if let Some(dev) = nl.device_mut(dev) {
                if let DeviceKind::Mosfet { params, .. } = &mut dev.kind {
                    params.vt0 += dvt;
                }
            }
        }
        nl
    }

    fn plan(&self) -> MeasurementPlan {
        let mut labels = Vec::new();
        for dv in DECISION_DVS {
            labels.push(MeasureLabel::new(
                MeasureKind::Decision,
                format!("decision@{:+.0}mV", dv * 1e3),
            ));
        }
        for vref in EXTREME_VREFS {
            for sign in ["-", "+"] {
                labels.push(MeasureLabel::new(
                    MeasureKind::Decision,
                    format!("decision@vref={vref}{sign}"),
                ));
            }
        }
        for (ci, _) in CURRENT_VINS.iter().enumerate() {
            for phase in Phase::ALL {
                labels.push(MeasureLabel::new(
                    MeasureKind::Current(CurrentKind::IVdd),
                    format!("ivdd@{}/c{ci}", phase.name()),
                ));
                labels.push(MeasureLabel::new(
                    MeasureKind::Current(CurrentKind::Iddq),
                    format!("iddq@{}/c{ci}", phase.name()),
                ));
                for src in Self::iinput_sources() {
                    labels.push(MeasureLabel::new(
                        MeasureKind::Current(CurrentKind::Iinput),
                        format!("i({src})@{}/c{ci}", phase.name()),
                    ));
                }
            }
        }
        for ck in 1..=3 {
            for phase in Phase::ALL {
                labels.push(MeasureLabel::new(
                    MeasureKind::Level,
                    format!("ck{ck}@{}", phase.name()),
                ));
            }
        }
        MeasurementPlan { labels }
    }

    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let mut cursor = WarmCursor::new();
        let mut out = Vec::new();
        // Voltage test: four decisions around the mid reference, plus one
        // pair at each range extreme.
        for dv in DECISION_DVS {
            let tr =
                with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
                    sim.override_source("VIN", VREF_MID + dv)?;
                    sim.transient(decision_sim_time(), self.dt)
                })?;
            out.push(read_decision(nl, &tr));
        }
        for vref in EXTREME_VREFS {
            for dv in [-EXTREME_DV, EXTREME_DV] {
                let tr =
                    with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
                        sim.override_source("VREF", vref)?;
                        sim.override_source("VIN", vref + dv)?;
                        sim.transient(decision_sim_time(), self.dt)
                    })?;
                out.push(read_decision(nl, &tr));
            }
        }
        // Current test: two input extremes, three phases each; the clock
        // levels ride along on the first condition.
        let mut clock_levels = Vec::new();
        for (ci, vin) in CURRENT_VINS.iter().enumerate() {
            let tr =
                with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
                    sim.override_source("VIN", *vin)?;
                    sim.transient(2.0 * CLOCK_PERIOD, self.dt)
                })?;
            for phase in Phase::ALL {
                let k = tr.index_at(CLOCK_PERIOD + phase.settle_time());
                let branch = |name: &str| -> f64 {
                    nl.device_id(name)
                        .and_then(|id| tr.branch_current(k, id))
                        .unwrap_or(0.0)
                };
                out.push(branch("VDD"));
                out.push(branch("VDDDIG"));
                for src in Self::iinput_sources() {
                    out.push(branch(src));
                }
            }
            if ci == 0 {
                for ck in 1..=3 {
                    let node = nl.find_node(&format!("ck{ck}"));
                    for phase in Phase::ALL {
                        let k = tr.index_at(CLOCK_PERIOD + phase.settle_time());
                        clock_levels.push(match node {
                            Some(n) => tr.voltage(k, n),
                            None => 0.0,
                        });
                    }
                }
            }
        }
        out.extend(clock_levels);
        Ok(out)
    }

    fn perturb(
        &self,
        nl: &mut Netlist,
        model: &ProcessModel,
        common: &CommonSample,
        rng: &mut StdRng,
    ) {
        model.perturb(nl, common, rng);
        // The bias lines track the same process corner: re-derive their
        // values from a bias generator simulated with the same common
        // sample (divide-and-conquer, exactly as the chip distributes its
        // biases).
        let mut bias_nl = dotm_adc::bias::bias_testbench();
        model.perturb(&mut bias_nl, common, rng);
        let mut sim = Simulator::new(&bias_nl);
        if let Ok(op) = sim.dc_op() {
            for (src, net) in [
                ("VBN", "vbn"),
                ("VBNC", "vbnc"),
                ("VBP", "vbp"),
                ("VAZ", "vaz"),
            ] {
                let v = op.voltage(bias_nl.find_node(net).expect("bias net"));
                if let Some(dev) = nl.device_mut(src) {
                    if let DeviceKind::Vsource { waveform, .. } = &mut dev.kind {
                        *waveform = Waveform::dc(v);
                    }
                }
            }
        }
    }

    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
        let sgn = |v: f64| -> Option<bool> {
            if v > LOGIC {
                Some(true)
            } else if v < -LOGIC {
                Some(false)
            } else {
                None
            }
        };
        let d: Vec<Option<bool>> = faulty[0..8].iter().map(|&v| sgn(v)).collect();
        if d.iter().any(Option::is_none) {
            return VoltageSignature::Mixed;
        }
        let p: Vec<bool> = d.into_iter().map(Option::unwrap).collect();
        if p.iter().all(|&b| b) || p.iter().all(|&b| !b) {
            return VoltageSignature::OutputStuckAt;
        }
        let mid_ok = p[0..4] == [false, false, true, true];
        let ext_ok = p[4..8] == [false, true, false, true];
        if mid_ok && ext_ok {
            // Functionally correct: check the clock-distribution levels.
            let plan = self.plan();
            for i in plan.level_indices() {
                if (faulty[i] - nominal[i]).abs() > CLOCK_DEV {
                    return VoltageSignature::ClockValue;
                }
            }
            return VoltageSignature::NoDeviation;
        }
        let mid_offset =
            p[0..4] == [false, false, false, true] || p[0..4] == [false, true, true, true];
        if mid_offset || (mid_ok && !ext_ok) {
            // A shifted trip point, or a conversion that fails near the
            // range edges: either way the ramp test loses codes.
            return VoltageSignature::Offset;
        }
        VoltageSignature::Mixed
    }

    fn shared_nets(&self) -> Vec<&'static str> {
        vec![
            "vdd", "vdd_dig", "ck1", "ck2", "ck3", "vbn", "vbnc", "vbp", "vaz", "vin", "vref",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::MacroHarness;

    /// Builds a synthetic measurement vector: 8 decisions followed by
    /// zeros for the currents and nominal clock levels.
    fn vector(harness: &ComparatorHarness, decisions: [f64; 8], clock_shift: f64) -> Vec<f64> {
        let plan = harness.plan();
        let mut v = vec![0.0; plan.len()];
        v[..8].copy_from_slice(&decisions);
        for i in plan.level_indices() {
            v[i] = clock_shift;
        }
        v
    }

    fn nominal(harness: &ComparatorHarness) -> Vec<f64> {
        // Healthy pattern: [-,-,+,+] at mid, [-,+,-,+] at the extremes.
        vector(harness, [-5.0, -5.0, 5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.0)
    }

    #[test]
    fn healthy_pattern_is_no_deviation() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        assert_eq!(h.classify_voltage(&n, &n), VoltageSignature::NoDeviation);
    }

    #[test]
    fn constant_outputs_are_stuck() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        let hi = vector(&h, [5.0; 8], 0.0);
        let lo = vector(&h, [-5.0; 8], 0.0);
        assert_eq!(h.classify_voltage(&n, &hi), VoltageSignature::OutputStuckAt);
        assert_eq!(h.classify_voltage(&n, &lo), VoltageSignature::OutputStuckAt);
    }

    #[test]
    fn shifted_trip_point_is_offset() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        // Trip moved past +8 mV: the +8 mV decision flips low.
        let f = vector(&h, [-5.0, -5.0, -5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.0);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::Offset);
        // Trip moved past −8 mV the other way.
        let f = vector(&h, [-5.0, 5.0, 5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.0);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::Offset);
    }

    #[test]
    fn range_edge_failure_is_offset() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        // Mid-range fine, but the high-reference pair fails one-sided.
        let f = vector(&h, [-5.0, -5.0, 5.0, 5.0, -5.0, 5.0, -5.0, -5.0], 0.0);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::Offset);
    }

    #[test]
    fn weak_levels_are_mixed() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        let f = vector(&h, [-5.0, 0.5, 5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.0);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::Mixed);
    }

    #[test]
    fn non_monotone_pattern_is_mixed() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        let f = vector(&h, [5.0, -5.0, 5.0, -5.0, -5.0, 5.0, -5.0, 5.0], 0.0);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::Mixed);
    }

    #[test]
    fn correct_decisions_with_shifted_clock_line_is_clock_value() {
        let h = ComparatorHarness::production();
        let n = nominal(&h);
        let f = vector(&h, [-5.0, -5.0, 5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.5);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::ClockValue);
        // A shift below the threshold stays invisible.
        let f = vector(&h, [-5.0, -5.0, 5.0, 5.0, -5.0, 5.0, -5.0, 5.0], 0.1);
        assert_eq!(h.classify_voltage(&n, &f), VoltageSignature::NoDeviation);
    }

    #[test]
    fn names_and_counts() {
        let prod = ComparatorHarness::production();
        let dft = ComparatorHarness::dft();
        assert_eq!(prod.name(), "comparator");
        assert_eq!(dft.name(), "comparator_dft");
        assert_eq!(prod.instance_count(), 256);
        // The production testbench carries the equaliser; the DfT one not.
        assert!(prod.testbench().device("MEQ").is_some());
        assert!(dft.testbench().device("MEQ").is_none());
    }
}
