//! Harness for the decoder column section.

use crate::harness::{with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCursor};
use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_adc::decoder::{decoder_slice_testbench, SLICE_CODES, SLICE_INPUTS};
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_sim::{SimError, SimOptions, SimStats};

/// Bitline deviation counting as a corrupted code (V).
const BIT_DEV: f64 = 1.0;

/// Thermometer heights exercised by the measurement: idle, the three row
/// transitions, and all-high.
const HEIGHTS: [usize; 5] = [0, 1, 2, 3, 4];

/// Harness for the decoder column section (three transition detectors and
/// their ROM rows on the shared bitlines); the full decoder is this
/// structure times 256/3.
#[derive(Debug, Clone)]
pub struct DecoderHarness {
    /// Transient timestep (s).
    pub dt: f64,
}

impl Default for DecoderHarness {
    fn default() -> Self {
        DecoderHarness { dt: 0.2e-9 }
    }
}

impl MacroHarness for DecoderHarness {
    fn name(&self) -> &str {
        "decoder_slice"
    }

    fn layout(&self) -> Layout {
        dotm_adc::layouts::decoder_slice_layout(SLICE_CODES)
    }

    fn instance_count(&self) -> usize {
        // 256 ROM rows = 256/3 three-row sections, rounded up.
        86
    }

    fn testbench(&self) -> Netlist {
        decoder_slice_testbench(SLICE_CODES, 1)
    }

    fn plan(&self) -> MeasurementPlan {
        let mut labels = Vec::new();
        for h in HEIGHTS {
            for bit in 0..8 {
                labels.push(MeasureLabel::new(
                    MeasureKind::Decision,
                    format!("bl{bit}@h{h}"),
                ));
            }
            labels.push(MeasureLabel::new(
                MeasureKind::Current(CurrentKind::Iddq),
                format!("iddq@h{h}"),
            ));
            for i in 0..SLICE_INPUTS {
                labels.push(MeasureLabel::new(
                    MeasureKind::Current(CurrentKind::Iinput),
                    format!("i(VT{i})@h{h}"),
                ));
            }
            labels.push(MeasureLabel::new(
                MeasureKind::Current(CurrentKind::Iinput),
                format!("i(VPC)@h{h}"),
            ));
        }
        MeasurementPlan { labels }
    }

    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let mut cursor = WarmCursor::new();
        let mut out = Vec::new();
        for h in HEIGHTS {
            let tr =
                with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
                    for i in 0..SLICE_INPUTS {
                        let level = if i < h { 5.0 } else { 0.0 };
                        sim.override_source(&format!("VT{i}"), level)?;
                    }
                    sim.transient(30e-9, self.dt)
                })?;
            let k = tr.index_at(29e-9);
            for bit in 0..8 {
                out.push(match nl.find_node(&format!("bl{bit}")) {
                    Some(n) => tr.voltage(k, n),
                    None => 0.0,
                });
            }
            out.push(
                nl.device_id("VDDDIG")
                    .and_then(|id| tr.branch_current(k, id))
                    .unwrap_or(0.0),
            );
            for i in 0..SLICE_INPUTS {
                out.push(
                    nl.device_id(&format!("VT{i}"))
                        .and_then(|id| tr.branch_current(k, id))
                        .unwrap_or(0.0),
                );
            }
            out.push(
                nl.device_id("VPC")
                    .and_then(|id| tr.branch_current(k, id))
                    .unwrap_or(0.0),
            );
        }
        Ok(out)
    }

    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
        let plan = self.plan();
        let mut worst = 0.0f64;
        for i in plan.decision_indices() {
            worst = worst.max((nominal[i] - faulty[i]).abs());
        }
        if worst > BIT_DEV {
            // A wrong ROM bit corrupts the output code directly.
            VoltageSignature::OutputStuckAt
        } else {
            VoltageSignature::NoDeviation
        }
    }

    fn shared_nets(&self) -> Vec<&'static str> {
        // Bitlines are wired-OR across all rows; the precharge and the
        // digital supply are shared too.
        vec![
            "vdd_dig", "pc", "bl0", "bl1", "bl2", "bl3", "bl4", "bl5", "bl6", "bl7",
        ]
    }

    fn current_floor(&self, kind: CurrentKind) -> f64 {
        match kind {
            CurrentKind::Iddq => 10e-6,
            CurrentKind::IVdd => 500e-6,
            CurrentKind::Iinput => 50e-6,
        }
    }
}
