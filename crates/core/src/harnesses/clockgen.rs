//! Harness for the clock generator — the digital cell whose quiescent
//! supply current is the IDDQ measurement.

use crate::harness::{with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCursor};
use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_adc::clockgen::clockgen_testbench;
use dotm_adc::process::{Phase, CLOCK_PERIOD};
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_sim::{SimError, SimOptions, SimStats};

/// Level deviation that still counts as a working (but shifted) clock.
const LEVEL_DEV: f64 = 0.30;
/// Level deviation that breaks the conversion.
const LOGIC_DEV: f64 = 1.50;

/// Harness for the clock-generator macro.
#[derive(Debug, Clone)]
pub struct ClockgenHarness {
    /// Transient timestep (s).
    pub dt: f64,
}

impl Default for ClockgenHarness {
    fn default() -> Self {
        ClockgenHarness { dt: 0.5e-9 }
    }
}

impl MacroHarness for ClockgenHarness {
    fn name(&self) -> &str {
        "clock_gen"
    }

    fn layout(&self) -> Layout {
        dotm_adc::layouts::clockgen_layout()
    }

    fn instance_count(&self) -> usize {
        1
    }

    fn testbench(&self) -> Netlist {
        clockgen_testbench()
    }

    fn plan(&self) -> MeasurementPlan {
        let mut labels = Vec::new();
        for ck in 1..=3 {
            for phase in Phase::ALL {
                labels.push(MeasureLabel::new(
                    MeasureKind::Decision,
                    format!("ck{ck}@{}", phase.name()),
                ));
            }
        }
        for phase in Phase::ALL {
            labels.push(MeasureLabel::new(
                MeasureKind::Current(CurrentKind::Iddq),
                format!("iddq@{}", phase.name()),
            ));
        }
        for x in 1..=3 {
            labels.push(MeasureLabel::new(
                MeasureKind::Current(CurrentKind::Iinput),
                format!("i(VX{x})"),
            ));
        }
        MeasurementPlan { labels }
    }

    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let mut cursor = WarmCursor::new();
        let tr = with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
            sim.transient(CLOCK_PERIOD, self.dt)
        })?;
        let mut out = Vec::new();
        for ck in 1..=3 {
            let node = nl.find_node(&format!("ck{ck}"));
            for phase in Phase::ALL {
                let k = tr.index_at(phase.settle_time());
                out.push(match node {
                    Some(n) => tr.voltage(k, n),
                    None => 0.0,
                });
            }
        }
        for phase in Phase::ALL {
            let k = tr.index_at(phase.settle_time());
            out.push(
                nl.device_id("VDDDIG")
                    .and_then(|id| tr.branch_current(k, id))
                    .unwrap_or(0.0),
            );
        }
        for x in 1..=3 {
            let k = tr.index_at(Phase::Sample.settle_time());
            out.push(
                nl.device_id(&format!("VX{x}"))
                    .and_then(|id| tr.branch_current(k, id))
                    .unwrap_or(0.0),
            );
        }
        Ok(out)
    }

    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
        // Nine phase levels: a broken phase kills every comparator
        // (stuck-at conversion); a shifted level is the "clock value"
        // signature.
        let mut worst = 0.0f64;
        for i in 0..9 {
            worst = worst.max((nominal[i] - faulty[i]).abs());
        }
        if worst > LOGIC_DEV {
            VoltageSignature::OutputStuckAt
        } else if worst > LEVEL_DEV {
            VoltageSignature::ClockValue
        } else {
            VoltageSignature::NoDeviation
        }
    }

    fn shared_nets(&self) -> Vec<&'static str> {
        Vec::new()
    }

    fn current_floor(&self, kind: CurrentKind) -> f64 {
        match kind {
            // The digital cell is quiescent by construction: IDDQ has a
            // very tight band (this is why the paper finds IDDQ so
            // powerful).
            CurrentKind::Iddq => 10e-6,
            CurrentKind::IVdd => 500e-6,
            CurrentKind::Iinput => 50e-6,
        }
    }
}
