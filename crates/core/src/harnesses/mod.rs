//! Concrete [`crate::harness::MacroHarness`] implementations for the five
//! macro cell types of the case-study ADC.

pub mod bias;
pub mod clockgen;
pub mod comparator;
pub mod decoder;
pub mod ladder;

pub use bias::BiasHarness;
pub use clockgen::ClockgenHarness;
pub use comparator::ComparatorHarness;
pub use decoder::DecoderHarness;
pub use ladder::LadderHarness;
