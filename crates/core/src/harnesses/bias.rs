//! Harness for the bias generator.

use crate::harness::{with_instrumented_sim_warm, Batch, MacroHarness, Warm, WarmCursor};
use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
use crate::signature::{CurrentKind, VoltageSignature};
use dotm_adc::comparator::{
    comparator_testbench, decision_sim_time, read_decision, ComparatorConfig, ComparatorStimulus,
};
use dotm_adc::process::BiasValues;
use dotm_layout::Layout;
use dotm_netlist::Netlist;
use dotm_sim::{SimError, SimOptions, SimStats, Simulator};

use super::comparator::{DECISION_DVS, VREF_MID};

/// Bias deviation below which the comparator is assumed unaffected (V).
const BIAS_TOL: f64 = 0.020;

/// Harness for the bias-generator macro. Its voltage signature is decided
/// by *propagation*: the faulty bias vector drives a nominal comparator,
/// whose decisions are then classified — the bias lines feed all 256
/// comparators, so a disturbed bias disturbs the whole converter.
#[derive(Debug, Clone)]
pub struct BiasHarness {
    /// Timestep for the propagation transients (s).
    pub dt: f64,
}

impl Default for BiasHarness {
    fn default() -> Self {
        BiasHarness { dt: 0.25e-9 }
    }
}

impl MacroHarness for BiasHarness {
    fn name(&self) -> &str {
        "bias_gen"
    }

    fn layout(&self) -> Layout {
        dotm_adc::layouts::bias_layout()
    }

    fn instance_count(&self) -> usize {
        1
    }

    fn testbench(&self) -> Netlist {
        dotm_adc::bias::bias_testbench()
    }

    fn plan(&self) -> MeasurementPlan {
        let mut labels: Vec<MeasureLabel> = ["vbn", "vbnc", "vbp", "vaz"]
            .iter()
            .map(|n| MeasureLabel::new(MeasureKind::Decision, *n))
            .collect();
        labels.push(MeasureLabel::new(
            MeasureKind::Current(CurrentKind::IVdd),
            "ivdd",
        ));
        MeasurementPlan { labels }
    }

    // The first (and only) analysis is a plain base-gmin DC operating
    // point, so a lockstep-primed first iteration is always adoptable.
    fn lockstep_dc(&self) -> bool {
        true
    }

    fn measure_with(
        &self,
        nl: &Netlist,
        opts: &SimOptions,
        stats: &mut SimStats,
        warm: Warm<'_>,
        batch: Batch<'_>,
    ) -> Result<Vec<f64>, SimError> {
        let mut cursor = WarmCursor::new();
        let op = with_instrumented_sim_warm(nl, opts, stats, warm, batch, &mut cursor, |sim| {
            sim.dc_op()
        })?;
        let mut out = Vec::with_capacity(5);
        for net in ["vbn", "vbnc", "vbp", "vaz"] {
            out.push(match nl.find_node(net) {
                Some(n) => op.voltage(n),
                None => 0.0,
            });
        }
        out.push(
            nl.device_id("VDD")
                .and_then(|id| op.branch_current(id))
                .unwrap_or(0.0),
        );
        Ok(out)
    }

    fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
        let max_dev = nominal[0..4]
            .iter()
            .zip(&faulty[0..4])
            .map(|(n, f)| (n - f).abs())
            .fold(0.0f64, f64::max);
        if max_dev < BIAS_TOL {
            return VoltageSignature::NoDeviation;
        }
        // Propagate: drive a nominal comparator with the faulty biases.
        let bias = BiasValues {
            vbn: faulty[0],
            vbnc: faulty[1],
            vbp: faulty[2],
            vaz: faulty[3],
        };
        let mut stim = ComparatorStimulus::dc_offset(VREF_MID, 0.0);
        stim.bias = bias;
        let nl = comparator_testbench(ComparatorConfig::default(), &stim);
        let mut decisions = Vec::new();
        for dv in DECISION_DVS {
            let mut sim = Simulator::new(&nl);
            if sim.override_source("VIN", VREF_MID + dv).is_err() {
                return VoltageSignature::Mixed;
            }
            match sim.transient(decision_sim_time(), self.dt) {
                Ok(tr) => decisions.push(read_decision(&nl, &tr)),
                Err(_) => return VoltageSignature::Mixed,
            }
        }
        let sgn = |v: f64| -> Option<bool> {
            if v > 2.0 {
                Some(true)
            } else if v < -2.0 {
                Some(false)
            } else {
                None
            }
        };
        let d: Vec<Option<bool>> = decisions.iter().map(|&v| sgn(v)).collect();
        if d.iter().any(Option::is_none) {
            return VoltageSignature::Mixed;
        }
        let p: Vec<bool> = d.into_iter().map(Option::unwrap).collect();
        if p.iter().all(|&b| b) || p.iter().all(|&b| !b) {
            VoltageSignature::OutputStuckAt
        } else if p == [false, false, true, true] {
            VoltageSignature::NoDeviation
        } else {
            VoltageSignature::Offset
        }
    }

    fn shared_nets(&self) -> Vec<&'static str> {
        Vec::new()
    }
}
