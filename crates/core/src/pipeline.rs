//! The defect-oriented test path (the paper's Fig. 1), end to end for one
//! macro: defect sprinkling → fault collapsing → fault-model injection →
//! circuit-level fault simulation → signature classification → detection
//! evaluation against the compiled good space.

use crate::exec::{self, ExecConfig};
use crate::goodspace::{GoodSpace, GoodSpaceConfig};
use crate::harness::MacroHarness;
use crate::signature::{CurrentFlags, DetectionSet, VoltageSignature};
use dotm_defects::{
    sprinkle_collapsed, CollapseReport, DefectStatistics, FaultEffect, FaultMechanism, Sprinkler,
};
use dotm_faults::{InjectError, Injector, Severity};
use dotm_netlist::{DeviceKind, Netlist};
use dotm_sim::SimError;
use std::collections::HashSet;
use std::fmt;

/// Configuration of one macro test path run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Defects to sprinkle.
    pub defects: usize,
    /// Sprinkle RNG seed.
    pub seed: u64,
    /// Defect statistics.
    pub stats: DefectStatistics,
    /// Process variation model.
    pub process: crate::processvar::ProcessModel,
    /// Good-space Monte-Carlo sizes.
    pub goodspace: GoodSpaceConfig,
    /// Evaluate only the `n` most frequent classes (None = all). The
    /// skipped tail is excluded from the statistics — use only for smoke
    /// tests.
    pub max_classes: Option<usize>,
    /// Also evaluate the non-catastrophic (near-miss) variants of shorts
    /// and extra contacts.
    pub non_catastrophic: bool,
    /// Parallel execution of the per-class fault evaluations. Reports are
    /// bit-for-bit identical for every thread count; `threads = 1` is the
    /// plain serial loop.
    pub exec: ExecConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            defects: 25_000,
            seed: 1995,
            stats: DefectStatistics::default(),
            process: crate::processvar::ProcessModel::default(),
            goodspace: GoodSpaceConfig::default(),
            max_classes: None,
            non_catastrophic: true,
            exec: ExecConfig::default(),
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug)]
pub enum PathError {
    /// The fault-free circuit failed to simulate — a configuration bug.
    GoodCircuit(SimError),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::GoodCircuit(e) => {
                write!(f, "fault-free circuit failed to simulate: {e}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Evaluated outcome of one fault class at one severity.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Canonical class key.
    pub key: String,
    /// Mechanism (Table 1 row).
    pub mechanism: FaultMechanism,
    /// Collapsed member count (the likelihood weight).
    pub count: usize,
    /// Catastrophic or near-miss model.
    pub severity: Severity,
    /// `true` if the fault touches a net shared with other macro
    /// instances (its current deviation scales with the instance count).
    pub shared: bool,
    /// Voltage fault signature (worst-case over model variants).
    pub voltage: VoltageSignature,
    /// Current detections (worst-case variant).
    pub currents: CurrentFlags,
    /// Combined detection outcome.
    pub detection: DetectionSet,
    /// Indices (into the harness's measurement plan) of the current
    /// measurements that flagged this class — the raw material for
    /// test-set compaction.
    pub flagged: Vec<usize>,
    /// `true` if the faulty circuit failed to converge (treated as an
    /// erratic part: missing-code detected, classified Mixed).
    pub sim_failed: bool,
    /// `true` if injection was impossible (excluded from statistics).
    pub inject_failed: bool,
}

/// Full result of one macro's test path.
#[derive(Debug, Clone)]
pub struct MacroReport {
    /// Macro name.
    pub name: String,
    /// Instances in the full circuit.
    pub instances: usize,
    /// Area over which defects were sprinkled (nm²).
    pub sprinkle_area_nm2: f64,
    /// Defects sprinkled.
    pub defects: usize,
    /// Catastrophic faults found (pre-collapse).
    pub total_faults: usize,
    /// Number of collapsed classes.
    pub class_count: usize,
    /// Evaluated outcomes (catastrophic, plus non-catastrophic entries
    /// when enabled).
    pub outcomes: Vec<ClassOutcome>,
}

impl MacroReport {
    /// Outcomes of one severity (excluding injection failures).
    pub fn outcomes_of(&self, severity: Severity) -> impl Iterator<Item = &ClassOutcome> {
        self.outcomes
            .iter()
            .filter(move |o| o.severity == severity && !o.inject_failed)
    }

    /// Total fault weight of one severity.
    pub fn weight_of(&self, severity: Severity) -> f64 {
        self.outcomes_of(severity).map(|o| o.count as f64).sum()
    }

    /// Weighted fraction of faults satisfying a predicate, in percent.
    pub fn pct_where(&self, severity: Severity, pred: impl Fn(&ClassOutcome) -> bool) -> f64 {
        let total = self.weight_of(severity);
        if total == 0.0 {
            return 0.0;
        }
        let hit: f64 = self
            .outcomes_of(severity)
            .filter(|o| pred(o))
            .map(|o| o.count as f64)
            .sum();
        100.0 * hit / total
    }

    /// Overall fault coverage (any detection mechanism), in percent.
    pub fn coverage(&self, severity: Severity) -> f64 {
        self.pct_where(severity, |o| o.detection.detected())
    }

    /// A 64-bit FNV-1a digest over every field of the report, including
    /// the exact bit patterns of the floating-point members. Two reports
    /// fingerprint equal iff they are bit-for-bit identical — the
    /// executor's determinism contract is asserted on this value.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.instances as u64).to_le_bytes());
        eat(&self.sprinkle_area_nm2.to_bits().to_le_bytes());
        eat(&(self.defects as u64).to_le_bytes());
        eat(&(self.total_faults as u64).to_le_bytes());
        eat(&(self.class_count as u64).to_le_bytes());
        for o in &self.outcomes {
            eat(o.key.as_bytes());
            eat(format!("{:?}", o.mechanism).as_bytes());
            eat(&(o.count as u64).to_le_bytes());
            eat(format!("{:?}", o.severity).as_bytes());
            eat(format!("{:?}", o.voltage).as_bytes());
            eat(&[
                o.shared as u8,
                o.currents.ivdd as u8,
                o.currents.iddq as u8,
                o.currents.iinput as u8,
                o.detection.missing_code as u8,
                o.sim_failed as u8,
                o.inject_failed as u8,
            ]);
            for &i in &o.flagged {
                eat(&(i as u64).to_le_bytes());
            }
        }
        h
    }

    /// Expected number of faults this macro type contributes per sprinkled
    /// defect per unit chip area — the paper's defect-density scaling
    /// weight for global compilation.
    pub fn global_weight(&self) -> f64 {
        if self.defects == 0 {
            return 0.0;
        }
        let fault_rate = self.total_faults as f64 / self.defects as f64;
        self.instances as f64 * self.sprinkle_area_nm2 * fault_rate
    }
}

/// The nets a fault effect actually touches in the netlist (resolving
/// device-level effects to their terminals).
fn effect_nets(effect: &FaultEffect, nl: &Netlist) -> Vec<String> {
    let mut nets: Vec<String> = match effect {
        FaultEffect::Bridge { nets, .. } => nets.clone(),
        FaultEffect::NodeSplit { net, .. } => vec![net.clone()],
        FaultEffect::BulkLeak { net, bulk } => vec![net.clone(), bulk.clone()],
        FaultEffect::NewDevice { net, gate, .. } => {
            let mut v = vec![net.clone()];
            if let Some(g) = gate {
                v.push(g.clone());
            }
            v
        }
        FaultEffect::GateOxide { device } | FaultEffect::DeviceShort { device } => nl
            .device(device)
            .map(|d| {
                let terms = d.terminals();
                let keep: &[usize] = match (&d.kind, effect) {
                    (DeviceKind::Mosfet { .. }, FaultEffect::GateOxide { .. }) => &[0, 1, 2],
                    (DeviceKind::Mosfet { .. }, FaultEffect::DeviceShort { .. }) => &[0, 2],
                    _ => &[],
                };
                keep.iter()
                    .filter_map(|&t| terms.get(t))
                    .map(|n| nl.node_name(*n).to_string())
                    .collect()
            })
            .unwrap_or_default(),
    };
    nets.sort();
    nets.dedup();
    nets
}

/// Runs the full test path for one macro.
///
/// # Errors
/// [`PathError::GoodCircuit`] if the fault-free testbench does not
/// simulate.
pub fn run_macro_path(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
) -> Result<MacroReport, PathError> {
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let sprinkle_area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    run_macro_path_with_faults(harness, cfg, &collapsed, sprinkle_area)
}

/// Runs the evaluation part of the test path on an existing collapsed
/// fault population (lets Table-1-style sprinkles be reused).
///
/// # Errors
/// [`PathError::GoodCircuit`] if the fault-free testbench does not
/// simulate.
pub fn run_macro_path_with_faults(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
    collapsed: &CollapseReport,
    sprinkle_area_nm2: f64,
) -> Result<MacroReport, PathError> {
    let good =
        GoodSpace::compile(harness, &cfg.process, cfg.goodspace).map_err(PathError::GoodCircuit)?;
    let injector = Injector::default();
    let shared: HashSet<&str> = harness.shared_nets().into_iter().collect();
    let base = harness.testbench();

    let classes: Vec<_> = match cfg.max_classes {
        Some(n) => collapsed.classes.iter().take(n).collect(),
        None => collapsed.classes.iter().collect(),
    };

    // Each class is a pure function of the compiled good space and the
    // base netlist, so the evaluation fans out across threads; collecting
    // per-class result vectors by index and flattening keeps the outcome
    // order — and therefore the whole report — identical to the serial
    // loop for every thread count.
    let outcomes: Vec<ClassOutcome> = exec::par_map(&cfg.exec, &classes, |_, class| {
        let effect = &class.representative.effect;
        let is_shared = effect_nets(effect, &base)
            .iter()
            .any(|n| shared.contains(n.as_str()));
        let mut severities = vec![Severity::Catastrophic];
        if cfg.non_catastrophic && injector.supports_non_catastrophic(effect) {
            severities.push(Severity::NonCatastrophic);
        }
        severities
            .into_iter()
            .map(|severity| {
                let outcome = evaluate_class(
                    harness, &injector, &good, &base, effect, severity, is_shared,
                );
                ClassOutcome {
                    key: class.key.clone(),
                    mechanism: class.mechanism(),
                    count: class.count,
                    severity,
                    shared: is_shared,
                    voltage: outcome.voltage,
                    currents: outcome.currents,
                    detection: outcome.detection,
                    flagged: outcome.flagged,
                    sim_failed: outcome.sim_failed,
                    inject_failed: outcome.inject_failed,
                }
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    Ok(MacroReport {
        name: harness.name().to_string(),
        instances: harness.instance_count(),
        sprinkle_area_nm2,
        defects: collapsed.defects,
        total_faults: collapsed.total_faults,
        class_count: collapsed.class_count(),
        outcomes,
    })
}

/// Evaluation result of one class at one severity (worst-case variant).
struct Evaluated {
    voltage: VoltageSignature,
    currents: CurrentFlags,
    detection: DetectionSet,
    flagged: Vec<usize>,
    sim_failed: bool,
    inject_failed: bool,
}

/// Evaluates one class at one severity, keeping the worst-case (hardest
/// to detect) model variant.
fn evaluate_class(
    harness: &dyn MacroHarness,
    injector: &Injector,
    good: &GoodSpace,
    base: &Netlist,
    effect: &FaultEffect,
    severity: Severity,
    shared: bool,
) -> Evaluated {
    let n_variants = injector.variant_count(effect);
    let mut best: Option<(u32, Evaluated)> = None;
    let mut any_injected = false;
    for variant in 0..n_variants {
        let mut nl = base.clone();
        match injector.inject(&mut nl, effect, severity, variant, "flt") {
            Ok(()) => any_injected = true,
            Err(InjectError::NotApplicable(_)) => continue,
            Err(_) => continue,
        }
        let (voltage, currents, flagged, sim_failed) = match harness.measure(&nl) {
            Ok(meas) => {
                let v = harness.classify_voltage(&good.nominal, &meas);
                let c = good.current_flags(harness, &meas, shared);
                let f = good.flagged_indices(harness, &meas, shared);
                (v, c, f, false)
            }
            Err(_) => {
                // A faulty circuit without a stable solution behaves
                // erratically on the tester: garbage codes, so the
                // missing-code test flags it.
                (
                    VoltageSignature::Mixed,
                    CurrentFlags::default(),
                    Vec::new(),
                    true,
                )
            }
        };
        let missing_code = if sim_failed {
            true
        } else {
            voltage.causes_missing_code()
        };
        let detection = DetectionSet {
            missing_code,
            currents,
        };
        let score = (missing_code as u32)
            + (currents.ivdd as u32)
            + (currents.iddq as u32)
            + (currents.iinput as u32);
        let candidate = (
            score,
            Evaluated {
                voltage,
                currents,
                detection,
                flagged,
                sim_failed,
                inject_failed: false,
            },
        );
        best = Some(match best {
            None => candidate,
            Some(prev) if candidate.0 < prev.0 => candidate,
            Some(prev) => prev,
        });
    }
    match best {
        Some((_, e)) => e,
        None => Evaluated {
            voltage: VoltageSignature::NoDeviation,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: false,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            sim_failed: false,
            inject_failed: !any_injected,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::MacroHarness;
    use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
    use crate::signature::{CurrentKind, VoltageSignature};
    use dotm_defects::{collapse, BridgeMedium, Defect, DefectKind, Fault};
    use dotm_layout::{Layer, Layout};
    use dotm_netlist::{Netlist, Waveform};
    use dotm_sim::Simulator;

    /// A minimal harness: a 5 V divider whose mid voltage is the decision
    /// and whose supply current is the IVdd measurement.
    #[derive(Debug)]
    struct DividerHarness;

    impl MacroHarness for DividerHarness {
        fn name(&self) -> &str {
            "divider"
        }

        fn layout(&self) -> Layout {
            let mut lo = Layout::new("divider");
            let gnd = lo.net("gnd");
            lo.set_substrate_net(gnd);
            let vdd = lo.net("vdd");
            let mid = lo.net("mid");
            lo.wire_h(vdd, Layer::Metal1, 0, 50_000, 0, 700);
            lo.wire_h(mid, Layer::Metal1, 0, 50_000, 1_400, 700);
            lo
        }

        fn instance_count(&self) -> usize {
            1
        }

        fn testbench(&self) -> Netlist {
            let mut nl = Netlist::new("divider");
            let vdd = nl.node("vdd");
            let mid = nl.node("mid");
            nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
                .unwrap();
            nl.add_resistor("R1", vdd, mid, 10e3).unwrap();
            nl.add_resistor("R2", mid, Netlist::GROUND, 10e3).unwrap();
            nl
        }

        fn plan(&self) -> MeasurementPlan {
            MeasurementPlan {
                labels: vec![
                    MeasureLabel::new(MeasureKind::Decision, "v(mid)"),
                    MeasureLabel::new(MeasureKind::Current(CurrentKind::IVdd), "ivdd"),
                ],
            }
        }

        fn measure(&self, nl: &Netlist) -> Result<Vec<f64>, dotm_sim::SimError> {
            let mut sim = Simulator::new(nl);
            let op = sim.dc_op()?;
            Ok(vec![
                op.voltage(nl.find_node("mid").expect("mid")),
                nl.device_id("VDD")
                    .and_then(|id| op.branch_current(id))
                    .unwrap_or(0.0),
            ])
        }

        fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
            let dv = (nominal[0] - faulty[0]).abs();
            if dv > 1.0 {
                VoltageSignature::OutputStuckAt
            } else if dv > 0.05 {
                VoltageSignature::Offset
            } else {
                VoltageSignature::NoDeviation
            }
        }

        fn shared_nets(&self) -> Vec<&'static str> {
            vec!["vdd"]
        }

        fn current_floor(&self, _kind: CurrentKind) -> f64 {
            50e-6
        }
    }

    fn fault(effect: FaultEffect, mechanism: FaultMechanism) -> Fault {
        Fault {
            mechanism,
            effect,
            defect: Defect {
                kind: DefectKind::ExtraMetal1,
                x: 0,
                y: 0,
                size: 1000,
            },
        }
    }

    fn run(faults: Vec<Fault>) -> MacroReport {
        let collapsed = collapse(1000, faults);
        let cfg = PipelineConfig {
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            ..PipelineConfig::default()
        };
        run_macro_path_with_faults(&DividerHarness, &cfg, &collapsed, 1e6).expect("path")
    }

    #[test]
    fn hard_short_is_stuck_and_current_detected() {
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "vdd".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        assert_eq!(report.outcomes.len(), 2); // catastrophic + near-miss
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        assert_eq!(cat.voltage, VoltageSignature::OutputStuckAt);
        assert!(cat.currents.ivdd);
        assert!(cat.detection.detected());
        assert!(cat.shared, "touches the shared vdd trunk");
    }

    #[test]
    fn near_miss_short_is_offset_but_still_current_detected() {
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "vdd".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        let ncat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::NonCatastrophic)
            .unwrap();
        // 500 Ω against 10 kΩ legs: mid rises by ~2 V → stuck-class shift.
        assert!(ncat.voltage != VoltageSignature::NoDeviation);
        assert!(ncat.currents.ivdd);
    }

    #[test]
    fn benign_leak_is_undetected() {
        // A 2 kΩ leak from mid to ground moves mid by ~0.4 V (Offset) but
        // the extra supply current (≈ 160 µA... actually detected). Use a
        // fault on the vdd net itself: bulk leak vdd→gnd through 2 kΩ pulls
        // 2.5 mA — detectable; instead test an unknown-net inject failure.
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "nowhere".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        assert!(cat.inject_failed, "unknown net must mark injection failure");
        // Injection failures are excluded from the statistics.
        assert_eq!(report.weight_of(Severity::Catastrophic), 0.0);
    }

    #[test]
    fn open_fault_detaches_leg() {
        let nl = DividerHarness.testbench();
        let _ = nl; // structure documented by the effect below
        let report = run(vec![fault(
            FaultEffect::NodeSplit {
                net: "mid".into(),
                groups: vec![vec![("R1".into(), 1)], vec![("R2".into(), 0)]],
            },
            FaultMechanism::Open,
        )]);
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        // mid floats to 5 V (through R1, no load): a hard deviation.
        assert_eq!(cat.voltage, VoltageSignature::OutputStuckAt);
        // Supply current drops from 250 µA to ~0: IVdd flags it too.
        assert!(cat.currents.ivdd);
        // Opens have no near-miss variant.
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn effect_nets_resolves_device_terminals() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_mosfet(
            "M1",
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            dotm_netlist::MosType::Nmos,
            dotm_netlist::MosfetParams::nmos_default(),
        )
        .unwrap();
        let nets = effect_nets(
            &FaultEffect::GateOxide {
                device: "M1".into(),
            },
            &nl,
        );
        assert_eq!(
            nets,
            vec!["0".to_string(), "a".to_string(), "b".to_string()]
        );
        let nets = effect_nets(
            &FaultEffect::DeviceShort {
                device: "M1".into(),
            },
            &nl,
        );
        assert_eq!(nets, vec!["0".to_string(), "a".to_string()]);
    }

    #[test]
    fn max_classes_truncates() {
        let faults = vec![
            fault(
                FaultEffect::Bridge {
                    nets: vec!["mid".into(), "vdd".into()],
                    medium: BridgeMedium::Metal,
                },
                FaultMechanism::Short,
            );
            3
        ]
        .into_iter()
        .chain(std::iter::once(fault(
            FaultEffect::BulkLeak {
                net: "mid".into(),
                bulk: "gnd".into(),
            },
            FaultMechanism::JunctionPinhole,
        )))
        .collect();
        let collapsed = collapse(1000, faults);
        assert_eq!(collapsed.class_count(), 2);
        let cfg = PipelineConfig {
            max_classes: Some(1),
            non_catastrophic: false,
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            ..PipelineConfig::default()
        };
        let report =
            run_macro_path_with_faults(&DividerHarness, &cfg, &collapsed, 1e6).expect("path");
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].count, 3); // the most frequent class
    }
}
