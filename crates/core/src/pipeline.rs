//! The defect-oriented test path (the paper's Fig. 1), end to end for one
//! macro: defect sprinkling → fault collapsing → fault-model injection →
//! circuit-level fault simulation → signature classification → detection
//! evaluation against the compiled good space.

use crate::exec::{self, ExecConfig};
use crate::goodspace::{GoodSpace, GoodSpaceConfig};
use crate::harness::{prime_lockstep_lanes, Batch, MacroHarness, Warm, WarmStart};
use crate::memo::{CachedMeasurement, MeasureCache};
use crate::signature::{CurrentFlags, DetectionSet, VoltageSignature};
use dotm_defects::{
    sprinkle_collapsed, CollapseReport, DefectStatistics, FaultEffect, FaultMechanism, Sprinkler,
};
use dotm_faults::{InjectError, Injector, Severity};
use dotm_netlist::{DeviceKind, Netlist};
use dotm_sim::{Integration, LanePrime, SimError, SimOptions, SimStats};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How a fault class whose every model variant still fails to simulate —
/// even at the top of the escalation ladder — enters the detection
/// statistics.
///
/// The paper's flow treats an unsolvable faulty circuit as an erratic
/// part that the missing-code test flags; that is the
/// [`AssumeDetected`](SimFailurePolicy::AssumeDetected) default and the
/// setting under which the published tables are reproduced. The other two
/// policies bound the coverage claim from below instead of above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimFailurePolicy {
    /// Count the class as missing-code detected (paper parity): a circuit
    /// without a stable solution produces garbage codes on the tester.
    #[default]
    AssumeDetected,
    /// Count the class as undetected: pessimistic lower bound that never
    /// credits the test set for a solver limitation.
    AssumeUndetected,
    /// Drop the class from the weighted statistics entirely (reported via
    /// [`MacroReport::excluded_classes`]).
    Exclude,
}

impl std::str::FromStr for SimFailurePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "assumedetected" | "detected" => Ok(SimFailurePolicy::AssumeDetected),
            "assumeundetected" | "undetected" => Ok(SimFailurePolicy::AssumeUndetected),
            "exclude" | "excluded" => Ok(SimFailurePolicy::Exclude),
            other => Err(format!(
                "unknown sim-failure policy `{other}` (want assume-detected, \
                 assume-undetected or exclude)"
            )),
        }
    }
}

/// Number of rungs in the convergence-escalation ladder, rung 0 being the
/// harness's own base options.
pub const ESCALATION_RUNGS: usize = 6;

/// Deterministic retry ladder for fault-injected circuits that fail to
/// simulate. Each rung keeps every robustness measure of the rungs below
/// it and adds one more, so the sequence is strictly monotone:
///
/// | rung | added measure                                   |
/// |------|-------------------------------------------------|
/// | 0    | the harness's base options                      |
/// | 1    | 4× Newton–Raphson iteration budget              |
/// | 2    | tighter per-iteration voltage-step clamp        |
/// | 3    | forced Backward Euler + extra step halvings     |
/// | 4    | raised `gmin` (≥ 1 nS to ground everywhere)     |
/// | 5    | relaxed `reltol` (≥ 1e-3)                       |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationLadder {
    /// Highest rung to try (`0` disables escalation entirely).
    pub max_rung: u8,
}

impl Default for EscalationLadder {
    fn default() -> Self {
        EscalationLadder {
            max_rung: (ESCALATION_RUNGS - 1) as u8,
        }
    }
}

impl EscalationLadder {
    /// A ladder that never retries: every class gets exactly one attempt
    /// with the base options.
    pub fn disabled() -> Self {
        EscalationLadder { max_rung: 0 }
    }

    /// Solver options at `rung`, derived cumulatively from `base`.
    pub fn options_at(base: &SimOptions, rung: u8) -> SimOptions {
        let mut o = base.clone();
        if rung >= 1 {
            o.max_iter = base.max_iter.saturating_mul(4);
        }
        if rung >= 2 {
            o.v_step_limit = base.v_step_limit.min(0.3);
        }
        if rung >= 3 {
            o.integration = Integration::BackwardEuler;
            o.max_step_halvings = base.max_step_halvings + 4;
        }
        if rung >= 4 {
            o.gmin = base.gmin.max(1e-9);
        }
        if rung >= 5 {
            o.reltol = base.reltol.max(1e-3);
        }
        o
    }
}

/// Configuration of one macro test path run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Defects to sprinkle.
    pub defects: usize,
    /// Sprinkle RNG seed.
    pub seed: u64,
    /// Defect statistics.
    pub stats: DefectStatistics,
    /// Process variation model.
    pub process: crate::processvar::ProcessModel,
    /// Good-space Monte-Carlo sizes.
    pub goodspace: GoodSpaceConfig,
    /// Evaluate only the `n` most frequent classes (None = all). The
    /// skipped tail is excluded from the statistics — use only for smoke
    /// tests.
    pub max_classes: Option<usize>,
    /// Also evaluate the non-catastrophic (near-miss) variants of shorts
    /// and extra contacts.
    pub non_catastrophic: bool,
    /// Parallel execution of the per-class fault evaluations. Reports are
    /// bit-for-bit identical for every thread count; `threads = 1` is the
    /// plain serial loop.
    pub exec: ExecConfig,
    /// Accounting policy for classes that fail to simulate even after the
    /// escalation ladder.
    pub sim_failure_policy: SimFailurePolicy,
    /// Convergence-escalation ladder applied to fault-injected circuits.
    pub escalation: EscalationLadder,
    /// Seed every fault-variant DC solve from the good circuit's nominal
    /// operating point (captured during good-space compilation). Purely a
    /// solver-effort optimisation: a failed seed falls back to the cold
    /// homotopy chain. Also gates the good-space capture itself.
    pub warm_start: bool,
    /// Memoize `(injected-netlist digest, ladder rung) → measurement`
    /// across the per-class evaluations, so byte-identical injected
    /// circuits are solved once per run. Replays the cached solver-stats
    /// delta on a hit, keeping reports bit-identical to a cache-off run.
    pub measure_cache: bool,
    /// Bitwise-exact LU factor reuse inside the solver: identical system
    /// matrices within one simulator reuse the previous factorisation.
    /// Toggling it may never change a reported bit (only the occupancy
    /// counters in the solver telemetry move).
    pub factor_reuse: bool,
    /// Sherman–Morrison–Woodbury rank-k updates: factor the nominal
    /// circuit once per analysis slot, apply each fault variant's
    /// append-only delta as a low-rank update, and fall back to a full
    /// refactorisation when the delta is not low-rank or the update is
    /// ill-conditioned. Changes floating-point round-off, so it is off by
    /// default; the `lu_speedup` bench gates verdict preservation.
    pub rank_update: bool,
    /// Split-plan batched assembly: static stamps are hoisted into a
    /// per-gmin baseline and each macro's fault variants embed the
    /// class-shared nominal baseline plus a per-variant stamp delta
    /// instead of replaying the full plan every Newton iteration.
    /// Bitwise-identical to the scalar path by construction (the
    /// determinism suite enforces this), so it is on by default.
    pub batch_assembly: bool,
    /// Carry the last accepted transient step size forward (×2 ramp)
    /// instead of restarting every step from the full remaining output
    /// interval. Cuts rejected Newton solves on sharp comparator edges
    /// but changes the step sequence and therefore round-off; off by
    /// default, verdict-gated like `rank_update`.
    pub tran_step_carry: bool,
    /// Lockstep SoA evaluation of one class's variant lanes: a stats-free
    /// pre-pass captures each lane's first DC Newton iteration, factors
    /// all lanes in one blocked `[cell][lane]` LU kernel, and the
    /// measuring simulators adopt the primed systems under bitwise
    /// guards. Bitwise-identical to the sequential walk by construction
    /// (every divergence falls a lane back to the scalar path), so it is
    /// on by default like `batch_assembly`.
    pub variant_lockstep: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            defects: 25_000,
            seed: 1995,
            stats: DefectStatistics::default(),
            process: crate::processvar::ProcessModel::default(),
            goodspace: GoodSpaceConfig::default(),
            max_classes: None,
            non_catastrophic: true,
            exec: ExecConfig::default(),
            sim_failure_policy: SimFailurePolicy::default(),
            escalation: EscalationLadder::default(),
            warm_start: true,
            measure_cache: true,
            factor_reuse: true,
            rank_update: false,
            batch_assembly: true,
            tran_step_carry: false,
            variant_lockstep: true,
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug)]
pub enum PathError {
    /// The fault-free circuit failed to simulate — a configuration bug.
    GoodCircuit(SimError),
    /// A [`ClassObserver`] requested an abort: the run stopped after the
    /// last in-order class it observed. Used by checkpointing campaigns
    /// (and their kill-and-resume tests) to stop a run at a precise,
    /// journaled point without delivering a real signal.
    Aborted {
        /// Number of classes the observer saw complete, in order, before
        /// requesting the abort.
        completed: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::GoodCircuit(e) => {
                write!(f, "fault-free circuit failed to simulate: {e}")
            }
            PathError::Aborted { completed } => {
                write!(
                    f,
                    "run aborted by the class observer after {completed} classes"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A persistent measurement store consulted by the fault-evaluation hot
/// path: the on-disk extension of the in-memory [`MeasureCache`].
///
/// Keys are the same `(netlist content digest, escalation rung)` mix the
/// in-memory cache uses; an implementation is expected to fold its own
/// campaign context (harness configuration, seeds, sigma bounds) into the
/// key before touching storage, so stale entries can never be replayed.
///
/// The determinism contract mirrors the cache's: the stored value must be
/// the *complete* observable effect of the measurement — result plus
/// solver-stats delta — and a pure function of the key, so replaying an
/// entry is indistinguishable (in every report byte) from recomputing it.
/// Implementations must treat corrupt or missing entries as misses, never
/// as errors, and must be safe to share across executor threads.
pub trait MeasurementStore: Sync {
    /// Looks up a stored measurement. `None` on a miss *or* on any
    /// storage-level problem (truncated file, bad checksum, I/O error).
    fn load(&self, key: u128) -> Option<CachedMeasurement>;

    /// Persists a freshly computed measurement. Failures must be absorbed
    /// (counted, at most): persistence is an accelerator, never a
    /// correctness dependency.
    fn store(&self, key: u128, value: &CachedMeasurement);

    /// Whether an entry exists for `key`, as cheaply as the backend can
    /// answer. Consulted only by performance heuristics — the lockstep
    /// pre-pass skips priming lanes the store will answer — never for
    /// correctness, so a conservative default (full load) is fine and a
    /// backend may answer from metadata alone (file existence).
    fn contains(&self, key: u128) -> bool {
        self.load(key).is_some()
    }
}

/// Observes class evaluations as they complete — always in ascending
/// class order, regardless of executor scheduling — so a campaign can
/// journal per-class progress with byte-identical journals at any thread
/// count.
pub trait ClassObserver: Sync {
    /// Called once per class, in class order, with the class's outcomes
    /// (one per evaluated severity). Return `false` to abort the run: no
    /// further classes are observed and the pipeline returns
    /// [`PathError::Aborted`].
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool;
}

/// Fans one in-order class-completion stream out to several observers.
///
/// Every inner observer sees every class, in the same ascending order the
/// dispatch guarantees; delivery order within a class is the constructor
/// order. The fan-out aborts when *any* inner observer votes to abort,
/// but only after the whole panel has seen the class — a side-channel
/// consumer (progress events, metrics) never misses the journaled
/// frontier because a sibling (abort injection) stopped the run.
pub struct FanoutObserver<'a> {
    observers: Vec<&'a dyn ClassObserver>,
}

impl<'a> FanoutObserver<'a> {
    /// Builds a fan-out delivering to `observers` in the given order.
    pub fn new(observers: Vec<&'a dyn ClassObserver>) -> Self {
        FanoutObserver { observers }
    }
}

impl ClassObserver for FanoutObserver<'_> {
    fn on_class(&self, index: usize, outcomes: &[ClassOutcome]) -> bool {
        let mut keep = true;
        for observer in &self.observers {
            keep &= observer.on_class(index, outcomes);
        }
        keep
    }
}

/// One worker's slice of a sharded campaign.
///
/// A campaign run as `count` cooperating processes partitions each
/// macro's class list into `count` contiguous index ranges; worker
/// `index` evaluates only [`range`](ShardSpec::range) and journals it as
/// a segment. The partition is a pure function of `(index, count,
/// classes)` — no coordinator state, no filesystem order — so every
/// process (and every retry of a crashed worker) derives the same
/// assignment, and the merged result is bit-identical to a
/// single-process run at any `(workers × threads)` combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's shard index, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards in the campaign.
    pub count: usize,
}

impl ShardSpec {
    /// Builds a validated spec.
    ///
    /// # Errors
    /// When `count` is zero or `index` is out of range.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the `i/N` notation used by `campaign --shard i/N`.
    ///
    /// # Errors
    /// On anything that is not `<index>/<count>` with `index < count`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .trim()
            .split_once('/')
            .ok_or_else(|| format!("expected <index>/<count>, got {s:?}"))?;
        let index = i
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard index {i:?}"))?;
        let count = n
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard count {n:?}"))?;
        ShardSpec::new(index, count)
    }

    /// The contiguous class-index range this shard evaluates out of
    /// `classes` total. Ranges tile `0..classes` exactly (no gaps, no
    /// overlap) and differ in length by at most one class.
    pub fn range(&self, classes: usize) -> std::ops::Range<usize> {
        let start = self.index * classes / self.count;
        let end = (self.index + 1) * classes / self.count;
        start..end
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Optional hooks threaded through one pipeline run. All hooks are
/// borrowed and frozen before parallel work starts — like the warm-seed
/// table, they are shared read-only across executor workers so hooked
/// runs stay deterministic.
#[derive(Default)]
pub struct PipelineHooks<'a> {
    /// Persistent measurement store: consulted after the in-memory cache
    /// (load-before-evaluate), appended to after every computed
    /// measurement (append-after-evaluate).
    pub store: Option<&'a dyn MeasurementStore>,
    /// In-order completion observer (campaign journaling, abort
    /// injection).
    pub observer: Option<&'a dyn ClassObserver>,
    /// Previously completed outcomes by class index (a journal's
    /// contiguous prefix): the pipeline replays these verbatim instead of
    /// re-evaluating, which is what makes a resumed run bit-identical to
    /// an uninterrupted one. Indices beyond the vector (or `None` slots)
    /// evaluate normally.
    pub completed: Vec<Option<Vec<ClassOutcome>>>,
    /// Evaluate only this shard's contiguous class range. Classes outside
    /// the range are skipped entirely — not evaluated, not observed, not
    /// reported — so the returned report covers exactly the shard. The
    /// observer still sees the shard's classes in ascending order.
    pub shard: Option<ShardSpec>,
}

/// Serializes observer callbacks into ascending class order: workers
/// deposit finished classes here, and whichever worker completes the
/// contiguous frontier drains it while holding the lock.
struct ObserverDispatch<'a> {
    observer: &'a dyn ClassObserver,
    state: Mutex<DispatchState>,
    aborted: AtomicBool,
}

struct DispatchState {
    /// Next class index to hand to the observer.
    next: usize,
    /// Finished classes waiting for the frontier to reach them.
    pending: BTreeMap<usize, Vec<ClassOutcome>>,
    /// Classes delivered to the observer so far.
    delivered: usize,
}

impl<'a> ObserverDispatch<'a> {
    /// `first` is the lowest class index this run will deliver — `0` for
    /// a whole-macro run, the shard range's start for a sharded worker.
    fn new(observer: &'a dyn ClassObserver, first: usize) -> Self {
        ObserverDispatch {
            observer,
            state: Mutex::new(DispatchState {
                next: first,
                pending: BTreeMap::new(),
                delivered: 0,
            }),
            aborted: AtomicBool::new(false),
        }
    }

    fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    fn complete(&self, index: usize, outcomes: &[ClassOutcome]) {
        if self.aborted() {
            return;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.pending.insert(index, outcomes.to_vec());
        while let Some(outcomes) = {
            let next = state.next;
            state.pending.remove(&next)
        } {
            if self.aborted() {
                state.pending.clear();
                return;
            }
            let keep_going = self.observer.on_class(state.next, &outcomes);
            state.next += 1;
            // The aborting class still counts as delivered: the observer
            // has already processed (e.g. journaled) it, so `completed`
            // stays in lockstep with the checkpoint prefix length.
            state.delivered += 1;
            if !keep_going {
                self.aborted.store(true, Ordering::Relaxed);
                state.pending.clear();
                return;
            }
        }
    }

    fn delivered(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .delivered
    }
}

/// Evaluated outcome of one fault class at one severity.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Canonical class key.
    pub key: String,
    /// Mechanism (Table 1 row).
    pub mechanism: FaultMechanism,
    /// Collapsed member count (the likelihood weight).
    pub count: usize,
    /// Catastrophic or near-miss model.
    pub severity: Severity,
    /// `true` if the fault touches a net shared with other macro
    /// instances (its current deviation scales with the instance count).
    pub shared: bool,
    /// Voltage fault signature (worst-case over model variants).
    pub voltage: VoltageSignature,
    /// Current detections (worst-case variant).
    pub currents: CurrentFlags,
    /// Combined detection outcome.
    pub detection: DetectionSet,
    /// Indices (into the harness's measurement plan) of the current
    /// measurements that flagged this class — the raw material for
    /// test-set compaction.
    pub flagged: Vec<usize>,
    /// `true` if the reported result rests on a circuit that failed to
    /// converge even at the top of the escalation ladder (accounted per
    /// the run's [`SimFailurePolicy`]).
    pub sim_failed: bool,
    /// `true` if no model variant could be injected at all (excluded from
    /// statistics).
    pub inject_failed: bool,
    /// Highest escalation-ladder rung any measured variant of this class
    /// needed (`Some(0)` = base options sufficed; `None` = no variant
    /// ever measured).
    pub rung: Option<u8>,
    /// Model variants that hit a *real* injection error (unknown
    /// net/device, netlist edit failure) — not-applicable variants are
    /// legitimately skipped and not counted here.
    pub inject_errors: usize,
    /// `true` if the class was dropped from the weighted statistics by
    /// [`SimFailurePolicy::Exclude`].
    pub excluded: bool,
    /// Solver telemetry accumulated over every variant and ladder rung
    /// tried for this class.
    pub solver: SimStats,
}

/// Full result of one macro's test path.
#[derive(Debug, Clone)]
pub struct MacroReport {
    /// Macro name.
    pub name: String,
    /// Instances in the full circuit.
    pub instances: usize,
    /// Area over which defects were sprinkled (nm²).
    pub sprinkle_area_nm2: f64,
    /// Defects sprinkled.
    pub defects: usize,
    /// Catastrophic faults found (pre-collapse).
    pub total_faults: usize,
    /// Number of collapsed classes.
    pub class_count: usize,
    /// Evaluated outcomes (catastrophic, plus non-catastrophic entries
    /// when enabled).
    pub outcomes: Vec<ClassOutcome>,
    /// Solver telemetry of the good-space compilation (nominal plus every
    /// Monte-Carlo corner).
    pub goodspace_solver: SimStats,
    /// Process corners redrawn during good-space compilation because the
    /// simulator left its convergence envelope.
    pub goodspace_corner_retries: u64,
    /// Measurement-cache lookups made during fault evaluation (0 when the
    /// cache is disabled). Thread-invariant: one lookup per
    /// (variant, severity, rung) measurement attempt.
    pub cache_lookups: u64,
    /// Distinct (injected netlist, rung) pairs actually solved — the
    /// cache's final occupancy (0 when disabled). Hits = lookups − entries.
    pub cache_entries: u64,
}

impl MacroReport {
    /// Outcomes of one severity (excluding injection failures and classes
    /// dropped by [`SimFailurePolicy::Exclude`]).
    pub fn outcomes_of(&self, severity: Severity) -> impl Iterator<Item = &ClassOutcome> {
        self.outcomes
            .iter()
            .filter(move |o| o.severity == severity && !o.inject_failed && !o.excluded)
    }

    /// Total fault weight of one severity.
    pub fn weight_of(&self, severity: Severity) -> f64 {
        self.outcomes_of(severity).map(|o| o.count as f64).sum()
    }

    /// Weighted fraction of faults satisfying a predicate, in percent.
    pub fn pct_where(&self, severity: Severity, pred: impl Fn(&ClassOutcome) -> bool) -> f64 {
        let total = self.weight_of(severity);
        if total == 0.0 {
            return 0.0;
        }
        let hit: f64 = self
            .outcomes_of(severity)
            .filter(|o| pred(o))
            .map(|o| o.count as f64)
            .sum();
        100.0 * hit / total
    }

    /// Overall fault coverage (any detection mechanism), in percent.
    pub fn coverage(&self, severity: Severity) -> f64 {
        self.pct_where(severity, |o| o.detection.detected())
    }

    /// Outcomes whose reported result rests on a circuit that never
    /// converged, even at the top of the escalation ladder.
    pub fn sim_failed_classes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.sim_failed).count()
    }

    /// Outcomes where at least one model variant hit a real injection
    /// error (unknown net/device, netlist edit failure).
    pub fn inject_failed_classes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.inject_errors > 0).count()
    }

    /// Outcomes that needed at least one escalation rung above the base
    /// options before a variant measured.
    pub fn escalated_classes(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.rung.unwrap_or(0) > 0)
            .count()
    }

    /// Outcomes dropped from the statistics by
    /// [`SimFailurePolicy::Exclude`].
    pub fn excluded_classes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.excluded).count()
    }

    /// Histogram over the highest ladder rung each measured outcome
    /// needed (index = rung; outcomes that never measured do not appear).
    ///
    /// A rung outside `0..ESCALATION_RUNGS` cannot come from the ladder —
    /// it means a deserialized/foreign outcome disagrees with this
    /// build's rung count. Debug builds fail fast on that skew; release
    /// builds saturate into the top bucket rather than panicking over a
    /// diagnostic counter.
    pub fn rung_histogram(&self) -> [u64; ESCALATION_RUNGS] {
        let mut hist = [0u64; ESCALATION_RUNGS];
        for o in &self.outcomes {
            if let Some(r) = o.rung {
                debug_assert!(
                    (r as usize) < ESCALATION_RUNGS,
                    "outcome rung {r} out of range for a {ESCALATION_RUNGS}-rung ladder"
                );
                hist[(r as usize).min(ESCALATION_RUNGS - 1)] += 1;
            }
        }
        hist
    }

    /// Total solver telemetry: every fault-simulation solve plus the
    /// good-space compilation.
    pub fn solver_totals(&self) -> SimStats {
        let mut total = self.goodspace_solver;
        for o in &self.outcomes {
            total.merge(&o.solver);
        }
        total
    }

    /// A 64-bit FNV-1a digest over every field of the report, including
    /// the exact bit patterns of the floating-point members. Two reports
    /// fingerprint equal iff they are bit-for-bit identical — the
    /// executor's determinism contract is asserted on this value.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.instances as u64).to_le_bytes());
        eat(&self.sprinkle_area_nm2.to_bits().to_le_bytes());
        eat(&(self.defects as u64).to_le_bytes());
        eat(&(self.total_faults as u64).to_le_bytes());
        eat(&(self.class_count as u64).to_le_bytes());
        for o in &self.outcomes {
            eat(o.key.as_bytes());
            eat(format!("{:?}", o.mechanism).as_bytes());
            eat(&(o.count as u64).to_le_bytes());
            eat(format!("{:?}", o.severity).as_bytes());
            eat(format!("{:?}", o.voltage).as_bytes());
            eat(&[
                o.shared as u8,
                o.currents.ivdd as u8,
                o.currents.iddq as u8,
                o.currents.iinput as u8,
                o.detection.missing_code as u8,
                o.sim_failed as u8,
                o.inject_failed as u8,
                o.excluded as u8,
                o.rung.unwrap_or(u8::MAX),
            ]);
            eat(&(o.inject_errors as u64).to_le_bytes());
            for w in o.solver.to_words() {
                eat(&w.to_le_bytes());
            }
            for &i in &o.flagged {
                eat(&(i as u64).to_le_bytes());
            }
        }
        for w in self.goodspace_solver.to_words() {
            eat(&w.to_le_bytes());
        }
        eat(&self.goodspace_corner_retries.to_le_bytes());
        eat(&self.cache_lookups.to_le_bytes());
        eat(&self.cache_entries.to_le_bytes());
        h
    }

    /// Measurement-cache hits (lookups that found an entry). Every miss
    /// is followed by exactly one insert, so hits = lookups − entries.
    pub fn cache_hits(&self) -> u64 {
        self.cache_lookups.saturating_sub(self.cache_entries)
    }

    /// Expected number of faults this macro type contributes per sprinkled
    /// defect per unit chip area — the paper's defect-density scaling
    /// weight for global compilation.
    pub fn global_weight(&self) -> f64 {
        if self.defects == 0 {
            return 0.0;
        }
        let fault_rate = self.total_faults as f64 / self.defects as f64;
        self.instances as f64 * self.sprinkle_area_nm2 * fault_rate
    }
}

/// The nets a fault effect actually touches in the netlist (resolving
/// device-level effects to their terminals).
fn effect_nets(effect: &FaultEffect, nl: &Netlist) -> Vec<String> {
    let mut nets: Vec<String> = match effect {
        FaultEffect::Bridge { nets, .. } => nets.clone(),
        FaultEffect::NodeSplit { net, .. } => vec![net.clone()],
        FaultEffect::BulkLeak { net, bulk } => vec![net.clone(), bulk.clone()],
        FaultEffect::NewDevice { net, gate, .. } => {
            let mut v = vec![net.clone()];
            if let Some(g) = gate {
                v.push(g.clone());
            }
            v
        }
        FaultEffect::GateOxide { device } | FaultEffect::DeviceShort { device } => nl
            .device(device)
            .map(|d| {
                let terms = d.terminals();
                let keep: &[usize] = match (&d.kind, effect) {
                    (DeviceKind::Mosfet { .. }, FaultEffect::GateOxide { .. }) => &[0, 1, 2],
                    (DeviceKind::Mosfet { .. }, FaultEffect::DeviceShort { .. }) => &[0, 2],
                    _ => &[],
                };
                keep.iter()
                    .filter_map(|&t| terms.get(t))
                    .map(|n| nl.node_name(*n).to_string())
                    .collect()
            })
            .unwrap_or_default(),
    };
    nets.sort();
    nets.dedup();
    nets
}

/// Runs the full test path for one macro.
///
/// # Errors
/// [`PathError::GoodCircuit`] if the fault-free testbench does not
/// simulate.
pub fn run_macro_path(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
) -> Result<MacroReport, PathError> {
    let layout = harness.layout();
    let sprinkler = Sprinkler::new(&layout, cfg.stats.clone());
    let collapsed = sprinkle_collapsed(&sprinkler, cfg.defects, cfg.seed);
    let sprinkle_area = layout
        .bbox()
        .map(|b| b.expanded(cfg.stats.size.xmax / 2))
        .map(|b| b.area() as f64)
        .unwrap_or(0.0);
    run_macro_path_with_faults(harness, cfg, &collapsed, sprinkle_area)
}

/// Runs the evaluation part of the test path on an existing collapsed
/// fault population (lets Table-1-style sprinkles be reused).
///
/// # Errors
/// [`PathError::GoodCircuit`] if the fault-free testbench does not
/// simulate.
pub fn run_macro_path_with_faults(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
    collapsed: &CollapseReport,
    sprinkle_area_nm2: f64,
) -> Result<MacroReport, PathError> {
    run_macro_path_with_faults_hooked(
        harness,
        cfg,
        collapsed,
        sprinkle_area_nm2,
        &PipelineHooks::default(),
    )
}

/// [`run_macro_path_with_faults`] with campaign hooks: a persistent
/// measurement store, an in-order class observer, and a replay prefix of
/// previously completed classes (see [`PipelineHooks`]).
///
/// # Errors
/// [`PathError::GoodCircuit`] if the fault-free testbench does not
/// simulate; [`PathError::Aborted`] if the observer requested an abort.
pub fn run_macro_path_with_faults_hooked(
    harness: &dyn MacroHarness,
    cfg: &PipelineConfig,
    collapsed: &CollapseReport,
    sprinkle_area_nm2: f64,
    hooks: &PipelineHooks<'_>,
) -> Result<MacroReport, PathError> {
    let _macro_span = dotm_obs::span_with("macro", || format!("macro {}", harness.name()));
    let mut gs_cfg = cfg.goodspace;
    gs_cfg.warm_start = gs_cfg.warm_start && cfg.warm_start;
    gs_cfg.factor_reuse = cfg.factor_reuse;
    gs_cfg.rank_update = cfg.rank_update;
    gs_cfg.batch_assembly = cfg.batch_assembly;
    gs_cfg.tran_step_carry = cfg.tran_step_carry;
    let good = GoodSpace::compile(harness, &cfg.process, gs_cfg).map_err(PathError::GoodCircuit)?;
    let injector = Injector::default();
    let shared: HashSet<&str> = harness.shared_nets().into_iter().collect();
    let base = harness.testbench();
    // One compiled stamp split per macro, shared (read-only, Arc) by every
    // worker: fault injection appends devices, so almost every variant
    // adopts the nominal baseline and assembles as `baseline + delta`.
    let shared_asm = cfg
        .batch_assembly
        .then(|| std::sync::Arc::new(dotm_sim::SharedAssembly::compile(&base)));
    // The seed table is frozen before any parallel work: every worker sees
    // the same seeds, so warm-started measurements stay scheduling-free.
    let warm = if cfg.warm_start {
        good.warm.as_ref()
    } else {
        None
    };
    let cache = cfg.measure_cache.then(MeasureCache::new);
    let store = hooks.store;

    let classes: Vec<_> = match cfg.max_classes {
        Some(n) => collapsed.classes.iter().take(n).collect(),
        None => collapsed.classes.iter().collect(),
    };
    // The shard's contiguous slice of the class list (everything, for an
    // unsharded run). Out-of-range classes are skipped entirely.
    let shard_range = hooks
        .shard
        .map_or(0..classes.len(), |s| s.range(classes.len()));
    let dispatch = hooks
        .observer
        .map(|o| ObserverDispatch::new(o, shard_range.start));

    // Each class is a pure function of the compiled good space and the
    // base netlist, so the evaluation fans out across threads; collecting
    // per-class result vectors by index and flattening keeps the outcome
    // order — and therefore the whole report — identical to the serial
    // loop for every thread count.
    let outcomes: Vec<Vec<ClassOutcome>> = exec::par_map(&cfg.exec, &classes, |ci, class| {
        // Out-of-shard classes belong to another worker: skipped without
        // evaluation, observation or reporting.
        if !shard_range.contains(&ci) {
            return Vec::new();
        }
        // Once an observer aborts, remaining classes are skipped: their
        // (empty) results never reach the report, because the whole run
        // returns `PathError::Aborted` below.
        if dispatch.as_ref().is_some_and(|d| d.aborted()) {
            return Vec::new();
        }
        // A journaled class from a previous (interrupted) run replays
        // verbatim — same bytes in, same bytes out — instead of
        // re-evaluating.
        if let Some(Some(prior)) = hooks.completed.get(ci) {
            let outcomes = prior.clone();
            if let Some(d) = &dispatch {
                d.complete(ci, &outcomes);
            }
            return outcomes;
        }
        let _class_span = dotm_obs::span_with("class", || format!("class {ci}"));
        let effect = &class.representative.effect;
        let is_shared = effect_nets(effect, &base)
            .iter()
            .any(|n| shared.contains(n.as_str()));
        let mut severities = vec![Severity::Catastrophic];
        if cfg.non_catastrophic && injector.supports_non_catastrophic(effect) {
            severities.push(Severity::NonCatastrophic);
        }
        let evaluated = evaluate_severities(
            harness,
            &injector,
            &good,
            &base,
            effect,
            &severities,
            is_shared,
            cfg,
            warm,
            cache.as_ref(),
            store,
            Batch::shared(shared_asm.as_ref()),
        );
        let outcomes: Vec<ClassOutcome> = severities
            .into_iter()
            .zip(evaluated)
            .map(|(severity, outcome)| ClassOutcome {
                key: class.key.clone(),
                mechanism: class.mechanism(),
                count: class.count,
                severity,
                shared: is_shared,
                voltage: outcome.voltage,
                currents: outcome.currents,
                detection: outcome.detection,
                flagged: outcome.flagged,
                sim_failed: outcome.sim_failed,
                inject_failed: outcome.inject_failed,
                rung: outcome.rung,
                inject_errors: outcome.inject_errors,
                excluded: outcome.excluded,
                solver: outcome.solver,
            })
            .collect();
        if let Some(d) = &dispatch {
            d.complete(ci, &outcomes);
        }
        outcomes
    });

    if let Some(d) = &dispatch {
        if d.aborted() {
            return Err(PathError::Aborted {
                completed: d.delivered(),
            });
        }
    }
    let outcomes: Vec<ClassOutcome> = outcomes.into_iter().flatten().collect();

    Ok(MacroReport {
        name: harness.name().to_string(),
        instances: harness.instance_count(),
        sprinkle_area_nm2,
        defects: collapsed.defects,
        total_faults: collapsed.total_faults,
        class_count: collapsed.class_count(),
        outcomes,
        goodspace_solver: good.solver,
        goodspace_corner_retries: good.corner_retries,
        cache_lookups: cache.as_ref().map_or(0, |c| c.lookups()),
        cache_entries: cache.as_ref().map_or(0, |c| c.entries()),
    })
}

/// Evaluation result of one class at one severity (worst-case variant).
struct Evaluated {
    voltage: VoltageSignature,
    currents: CurrentFlags,
    detection: DetectionSet,
    flagged: Vec<usize>,
    sim_failed: bool,
    inject_failed: bool,
    rung: Option<u8>,
    inject_errors: usize,
    excluded: bool,
    solver: SimStats,
}

/// Detection outcome of a single model variant, competing in the
/// worst-case (minimum-score) selection.
struct VariantEval {
    voltage: VoltageSignature,
    currents: CurrentFlags,
    detection: DetectionSet,
    flagged: Vec<usize>,
    sim_failed: bool,
    /// Ladder rung this variant measured at (`None` for policy stand-ins
    /// of variants that never measured).
    rung: Option<u8>,
}

/// Combines a netlist content digest with a ladder rung into the
/// measurement-cache key: one extra FNV-1a step, so rungs of the same
/// circuit land in unrelated buckets.
fn cache_key(digest: u128, rung: u8) -> u128 {
    (digest ^ (rung as u128 + 1)).wrapping_mul(0x0000000001000000000000000000013b)
}

/// Runs one `(netlist, rung)` measurement, through the memoization cache
/// and the persistent store when either is active. Consulted in order:
/// in-memory cache, then persistent store, then the solver. On any hit
/// the stored solver-stats delta is replayed into `solver`, so accounting
/// is identical whether the measurement was computed or replayed — and a
/// store hit back-fills the in-memory cache, so the cache's occupancy
/// counters are the same whether an entry was solved or loaded.
#[allow(clippy::too_many_arguments)]
fn measure_rung(
    harness: &dyn MacroHarness,
    nl: &Netlist,
    opts: &SimOptions,
    solver: &mut SimStats,
    warm: Option<&WarmStart>,
    batch: Batch<'_>,
    prime: Option<&Arc<LanePrime>>,
    cache: Option<&MeasureCache>,
    store: Option<&dyn MeasurementStore>,
    digest: Option<u128>,
    rung: u8,
) -> Result<Vec<f64>, SimError> {
    let w = warm.map_or(Warm::Cold, Warm::Seed);
    // The lane prime only reaches the solver path: a cache or store hit
    // below replays without ever touching a simulator, and the pre-pass
    // avoids priming lanes it can tell will hit.
    let batch = batch.with_prime(prime);
    let digest = match digest {
        Some(d) => d,
        None => return harness.measure_with(nl, opts, solver, w, batch),
    };
    let key = cache_key(digest, rung);
    if let Some(c) = cache {
        let t_lookup = dotm_obs::start();
        let hit = c.get(key);
        dotm_obs::phase(dotm_obs::Phase::CacheLookup, t_lookup);
        if let Some((result, delta)) = hit {
            // Honest replay marker: the deterministic artifacts must not
            // distinguish a replayed measurement from a computed one, so
            // the distinction lives only in this trace-side counter.
            dotm_obs::counter("replay.cache_hits", 1);
            solver.merge(&delta);
            return result;
        }
    }
    if let Some(s) = store {
        if let Some((result, delta)) = s.load(key) {
            dotm_obs::counter("replay.store_hits", 1);
            if let Some(c) = cache {
                c.insert(key, (result.clone(), delta));
            }
            solver.merge(&delta);
            return result;
        }
    }
    let mut delta = SimStats::default();
    let result = harness.measure_with(nl, opts, &mut delta, w, batch);
    if let Some(c) = cache {
        c.insert(key, (result.clone(), delta));
    }
    if let Some(s) = store {
        s.store(key, &(result.clone(), delta));
    }
    solver.merge(&delta);
    result
}

/// Measures one injected variant, walking up the escalation ladder on
/// retryable failures. Returns the measurement and the rung that
/// succeeded, or `None` if every rung failed (or the failure was not a
/// numerical one, where retrying cannot help).
#[allow(clippy::too_many_arguments)]
fn measure_escalated(
    harness: &dyn MacroHarness,
    nl: &Netlist,
    base_opts: &SimOptions,
    ladder: EscalationLadder,
    solver: &mut SimStats,
    warm: Option<&WarmStart>,
    batch: Batch<'_>,
    prime: Option<&Arc<LanePrime>>,
    cache: Option<&MeasureCache>,
    store: Option<&dyn MeasurementStore>,
) -> Option<(Vec<f64>, u8)> {
    // One digest per injected netlist, shared by every rung's cache key.
    let digest = (cache.is_some() || store.is_some()).then(|| nl.content_digest());
    for rung in 0..=ladder.max_rung {
        let opts = EscalationLadder::options_at(base_opts, rung);
        // The prime captured rung 0's base options; an escalated rung
        // solves with different options, so a diverging lane falls back
        // to the scalar path from rung 1 on.
        let rung_prime = if rung == 0 { prime } else { None };
        // Per-rung escalation timing: each retry of the same variant gets
        // its own span, so the trace shows how much wall-clock the ladder
        // itself costs (rung 0 is the ordinary first attempt).
        let rung_span = dotm_obs::span_with("rung", || format!("rung {rung}"));
        let outcome = measure_rung(
            harness, nl, &opts, solver, warm, batch, rung_prime, cache, store, digest, rung,
        );
        drop(rung_span);
        match outcome {
            Ok(meas) => return Some((meas, rung)),
            Err(e) if e.is_retryable() => continue,
            Err(_) => return None,
        }
    }
    None
}

/// Resolves measurement-time simulator options for one class evaluation:
/// the harness's rung-0 base options with the pipeline's solver knobs
/// applied. Shared by the sequential and lockstep paths so both measure
/// with identical options.
fn class_base_opts(harness: &dyn MacroHarness, cfg: &PipelineConfig) -> SimOptions {
    let mut base_opts = harness.sim_options();
    base_opts.factor_reuse = cfg.factor_reuse;
    base_opts.rank_update = cfg.rank_update;
    base_opts.batch_assembly = cfg.batch_assembly;
    base_opts.tran_step_carry = cfg.tran_step_carry;
    base_opts
}

/// Worst-case competition score of one variant: the number of distinct
/// detections it earns. Lower is harder to detect.
fn variant_score(v: &VariantEval) -> u32 {
    (v.detection.missing_code as u32)
        + (v.currents.ivdd as u32)
        + (v.currents.iddq as u32)
        + (v.currents.iinput as u32)
}

/// Folds one candidate into the running worst-case (minimum-score)
/// selection. The comparison is strictly `<`, so on a tie the
/// earliest-folded variant wins: the selection depends only on the fold
/// *order*, which both the sequential walk and the lockstep path produce
/// identically (severity-major, variant-minor) — pinned by the
/// `worst_case_tie_break_prefers_earliest_variant` regression test.
fn compete(best: Option<(u32, VariantEval)>, candidate: VariantEval) -> Option<(u32, VariantEval)> {
    let score = variant_score(&candidate);
    Some(match best {
        None => (score, candidate),
        Some(prev) if score < prev.0 => (score, candidate),
        Some(prev) => prev,
    })
}

/// Classifies one successful measurement into its competing
/// [`VariantEval`].
fn measured_eval(
    harness: &dyn MacroHarness,
    good: &GoodSpace,
    shared: bool,
    meas: &[f64],
    used_rung: u8,
) -> VariantEval {
    let voltage = harness.classify_voltage(&good.nominal, meas);
    let currents = good.current_flags(harness, meas, shared);
    let flagged = good.flagged_indices(harness, meas, shared);
    let detection = DetectionSet {
        missing_code: voltage.causes_missing_code(),
        currents,
    };
    VariantEval {
        voltage,
        currents,
        detection,
        flagged,
        sim_failed: false,
        rung: Some(used_rung),
    }
}

/// The policy stand-in for a variant that failed to simulate at every
/// ladder rung. `None` under [`SimFailurePolicy::Exclude`]: the variant
/// simply does not compete.
fn policy_eval(policy: SimFailurePolicy) -> Option<VariantEval> {
    match policy {
        // The paper's reading: a faulty circuit without a stable
        // solution behaves erratically on the tester — garbage
        // codes, so the missing-code test flags it.
        SimFailurePolicy::AssumeDetected => Some(VariantEval {
            voltage: VoltageSignature::Mixed,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            sim_failed: true,
            rung: None,
        }),
        // Pessimistic: the solver's failure earns no detection
        // credit, so the variant scores 0 and is always the
        // worst case.
        SimFailurePolicy::AssumeUndetected => Some(VariantEval {
            voltage: VoltageSignature::Mixed,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: false,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            sim_failed: true,
            rung: None,
        }),
        // Excluded variants do not compete; if every variant is
        // excluded the whole class drops from the statistics.
        SimFailurePolicy::Exclude => None,
    }
}

/// Folds the surviving worst case (or its absence) into one severity's
/// [`Evaluated`] record.
fn finish_class(
    best: Option<(u32, VariantEval)>,
    any_injected: bool,
    inject_errors: usize,
    solver: SimStats,
) -> Evaluated {
    match best {
        // The recorded rung is the *winning* (worst-case) variant's: the
        // escalation histogram describes what it took to obtain the
        // reported signature, not the hardest variant that was merely
        // tried along the way.
        Some((_, v)) => Evaluated {
            voltage: v.voltage,
            currents: v.currents,
            detection: v.detection,
            flagged: v.flagged,
            sim_failed: v.sim_failed,
            inject_failed: false,
            rung: v.rung,
            inject_errors,
            excluded: false,
            solver,
        },
        None => Evaluated {
            voltage: VoltageSignature::NoDeviation,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: false,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            // `best` is empty either because nothing injected
            // (inject_failed) or because `Exclude` dropped every
            // sim-failed variant (excluded, sim_failed).
            sim_failed: any_injected,
            inject_failed: !any_injected,
            rung: None,
            inject_errors,
            excluded: any_injected,
            solver,
        },
    }
}

/// Evaluates one class at every requested severity, returning one
/// [`Evaluated`] per severity in order.
///
/// Dispatches between the sequential per-severity walk
/// ([`evaluate_class`]) and the lockstep SoA path
/// ([`evaluate_class_lockstep`]); both share the same measurement,
/// scoring and competition code in the same severity-major,
/// variant-minor order, so their results are identical — the lockstep
/// path only adds a guarded, bitwise-invisible solver speed-up.
#[allow(clippy::too_many_arguments)]
fn evaluate_severities(
    harness: &dyn MacroHarness,
    injector: &Injector,
    good: &GoodSpace,
    base: &Netlist,
    effect: &FaultEffect,
    severities: &[Severity],
    shared: bool,
    cfg: &PipelineConfig,
    warm: Option<&WarmStart>,
    cache: Option<&MeasureCache>,
    store: Option<&dyn MeasurementStore>,
    batch: Batch<'_>,
) -> Vec<Evaluated> {
    let expected_lanes = severities.len() * injector.variant_count(effect);
    // The pre-pass pays off when a class fans out into several lanes
    // (multi-variant models, catastrophic + near-miss severities); a
    // single-lane class takes the plain sequential walk. The harness
    // hint gates circuits whose first analysis is not a base-gmin DC
    // solve — priming those could never be adopted.
    let lockstep = cfg.variant_lockstep
        && cfg.batch_assembly
        && batch.shared.is_some()
        && harness.lockstep_dc()
        && expected_lanes >= 2;
    if lockstep {
        evaluate_class_lockstep(
            harness, injector, good, base, effect, severities, shared, cfg, warm, cache, store,
            batch,
        )
    } else {
        severities
            .iter()
            .map(|&severity| {
                evaluate_class(
                    harness, injector, good, base, effect, severity, shared, cfg, warm, cache,
                    store, batch,
                )
            })
            .collect()
    }
}

/// Evaluates one class at one severity, keeping the worst-case (hardest
/// to detect) model variant. Variants that fail to simulate at every
/// ladder rung enter the selection per `policy`.
#[allow(clippy::too_many_arguments)]
fn evaluate_class(
    harness: &dyn MacroHarness,
    injector: &Injector,
    good: &GoodSpace,
    base: &Netlist,
    effect: &FaultEffect,
    severity: Severity,
    shared: bool,
    cfg: &PipelineConfig,
    warm: Option<&WarmStart>,
    cache: Option<&MeasureCache>,
    store: Option<&dyn MeasurementStore>,
    batch: Batch<'_>,
) -> Evaluated {
    let policy = cfg.sim_failure_policy;
    let ladder = cfg.escalation;
    let n_variants = injector.variant_count(effect);
    let base_opts = class_base_opts(harness, cfg);
    let mut best: Option<(u32, VariantEval)> = None;
    let mut any_injected = false;
    let mut inject_errors = 0usize;
    let mut solver = SimStats::default();
    for variant in 0..n_variants {
        let mut nl = base.clone();
        match injector.inject(&mut nl, effect, severity, variant, "flt") {
            Ok(()) => any_injected = true,
            Err(InjectError::NotApplicable(_)) => continue,
            Err(_) => {
                // A *real* injection error (unknown net/device, netlist
                // edit failure) is silent data loss if merely skipped —
                // count it so the report can surface it.
                inject_errors += 1;
                continue;
            }
        }
        let candidate = match measure_escalated(
            harness,
            &nl,
            &base_opts,
            ladder,
            &mut solver,
            warm,
            batch,
            None,
            cache,
            store,
        ) {
            Some((meas, used_rung)) => measured_eval(harness, good, shared, &meas, used_rung),
            None => match policy_eval(policy) {
                Some(v) => v,
                None => continue,
            },
        };
        best = compete(best.take(), candidate);
    }
    finish_class(best, any_injected, inject_errors, solver)
}

/// Lockstep SoA evaluation of one class across all its severities: the
/// variant lanes are injected up front (severity-major, variant-minor —
/// the sequential walk's exact order), a stats-free pre-pass captures
/// each unanswered lane's first DC Newton iteration and factors all of
/// them in one blocked `[cell][lane]` LU kernel, and the lanes are then
/// measured in the same order as the sequential walk with their primed
/// systems attached.
///
/// Injection order vs. measurement order: the sequential walk interleaves
/// (inject v0, measure v0, inject v1, …) while this path injects every
/// lane first. Injection edits a private clone of `base`, so the
/// interleaving is unobservable; measurements — the only side-effecting
/// steps (stats folds, cache/store population) — run in the identical
/// sequence.
#[allow(clippy::too_many_arguments)]
fn evaluate_class_lockstep(
    harness: &dyn MacroHarness,
    injector: &Injector,
    good: &GoodSpace,
    base: &Netlist,
    effect: &FaultEffect,
    severities: &[Severity],
    shared: bool,
    cfg: &PipelineConfig,
    warm: Option<&WarmStart>,
    cache: Option<&MeasureCache>,
    store: Option<&dyn MeasurementStore>,
    batch: Batch<'_>,
) -> Vec<Evaluated> {
    let policy = cfg.sim_failure_policy;
    let ladder = cfg.escalation;
    let n_variants = injector.variant_count(effect);
    let base_opts = class_base_opts(harness, cfg);

    struct Lane {
        sev: usize,
        nl: Netlist,
    }
    let mut lanes: Vec<Lane> = Vec::new();
    let mut any_injected = vec![false; severities.len()];
    let mut inject_errors = vec![0usize; severities.len()];
    for (si, &severity) in severities.iter().enumerate() {
        for variant in 0..n_variants {
            let mut nl = base.clone();
            match injector.inject(&mut nl, effect, severity, variant, "flt") {
                Ok(()) => {
                    any_injected[si] = true;
                    lanes.push(Lane { sev: si, nl });
                }
                Err(InjectError::NotApplicable(_)) => continue,
                Err(_) => {
                    inject_errors[si] += 1;
                    continue;
                }
            }
        }
    }

    // Pre-pass: prime the rung-0 DC iteration of every lane a warm
    // cache/store will not answer (priming an answered lane would be
    // wasted work — the prime never reaches a simulator on a replay).
    // The existence probes are deliberately uncounted so warm-run
    // accounting stays identical to the sequential walk.
    let mut primes: Vec<Option<Arc<LanePrime>>> = (0..lanes.len()).map(|_| None).collect();
    let to_prime: Vec<usize> = lanes
        .iter()
        .enumerate()
        .filter(|(_, lane)| {
            if cache.is_none() && store.is_none() {
                return true;
            }
            let key = cache_key(lane.nl.content_digest(), 0);
            let answered =
                cache.is_some_and(|c| c.peek(key)) || store.is_some_and(|s| s.contains(key));
            !answered
        })
        .map(|(i, _)| i)
        .collect();
    if !to_prime.is_empty() {
        let prime_opts = EscalationLadder::options_at(&base_opts, 0);
        let nls: Vec<&Netlist> = to_prime.iter().map(|&i| &lanes[i].nl).collect();
        let w = warm.map_or(Warm::Cold, Warm::Seed);
        for (i, p) in
            to_prime
                .into_iter()
                .zip(prime_lockstep_lanes(&nls, &prime_opts, w, batch.shared))
        {
            primes[i] = p;
        }
    }

    // Measurement and worst-case competition, lane by lane in the same
    // severity-major order — per-severity stats folds, cache evolution
    // and the tie-break all replay the sequential walk by construction.
    let mut best: Vec<Option<(u32, VariantEval)>> = severities.iter().map(|_| None).collect();
    let mut solver: Vec<SimStats> = severities.iter().map(|_| SimStats::default()).collect();
    for (lane, prime) in lanes.iter().zip(primes) {
        let si = lane.sev;
        let candidate = match measure_escalated(
            harness,
            &lane.nl,
            &base_opts,
            ladder,
            &mut solver[si],
            warm,
            batch,
            prime.as_ref(),
            cache,
            store,
        ) {
            Some((meas, used_rung)) => measured_eval(harness, good, shared, &meas, used_rung),
            None => match policy_eval(policy) {
                Some(v) => v,
                None => continue,
            },
        };
        best[si] = compete(best[si].take(), candidate);
    }
    best.into_iter()
        .zip(solver)
        .enumerate()
        .map(|(si, (b, s))| finish_class(b, any_injected[si], inject_errors[si], s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::MacroHarness;
    use crate::measure::{MeasureKind, MeasureLabel, MeasurementPlan};
    use crate::signature::{CurrentKind, VoltageSignature};
    use dotm_defects::{collapse, BridgeMedium, Defect, DefectKind, Fault};
    use dotm_layout::{Layer, Layout};
    use dotm_netlist::{Netlist, Waveform};

    /// A minimal harness: a 5 V divider whose mid voltage is the decision
    /// and whose supply current is the IVdd measurement.
    #[derive(Debug)]
    struct DividerHarness;

    impl MacroHarness for DividerHarness {
        fn name(&self) -> &str {
            "divider"
        }

        fn layout(&self) -> Layout {
            let mut lo = Layout::new("divider");
            let gnd = lo.net("gnd");
            lo.set_substrate_net(gnd);
            let vdd = lo.net("vdd");
            let mid = lo.net("mid");
            lo.wire_h(vdd, Layer::Metal1, 0, 50_000, 0, 700);
            lo.wire_h(mid, Layer::Metal1, 0, 50_000, 1_400, 700);
            lo
        }

        fn instance_count(&self) -> usize {
            1
        }

        fn testbench(&self) -> Netlist {
            let mut nl = Netlist::new("divider");
            let vdd = nl.node("vdd");
            let mid = nl.node("mid");
            nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
                .unwrap();
            nl.add_resistor("R1", vdd, mid, 10e3).unwrap();
            nl.add_resistor("R2", mid, Netlist::GROUND, 10e3).unwrap();
            nl
        }

        fn plan(&self) -> MeasurementPlan {
            MeasurementPlan {
                labels: vec![
                    MeasureLabel::new(MeasureKind::Decision, "v(mid)"),
                    MeasureLabel::new(MeasureKind::Current(CurrentKind::IVdd), "ivdd"),
                ],
            }
        }

        fn measure_with(
            &self,
            nl: &Netlist,
            opts: &SimOptions,
            stats: &mut SimStats,
            warm: Warm<'_>,
            batch: Batch<'_>,
        ) -> Result<Vec<f64>, dotm_sim::SimError> {
            let mut cursor = crate::harness::WarmCursor::new();
            let op = crate::harness::with_instrumented_sim_warm(
                nl,
                opts,
                stats,
                warm,
                batch,
                &mut cursor,
                |sim| sim.dc_op(),
            )?;
            Ok(vec![
                op.voltage(nl.find_node("mid").expect("mid")),
                nl.device_id("VDD")
                    .and_then(|id| op.branch_current(id))
                    .unwrap_or(0.0),
            ])
        }

        fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
            let dv = (nominal[0] - faulty[0]).abs();
            if dv > 1.0 {
                VoltageSignature::OutputStuckAt
            } else if dv > 0.05 {
                VoltageSignature::Offset
            } else {
                VoltageSignature::NoDeviation
            }
        }

        fn shared_nets(&self) -> Vec<&'static str> {
            vec!["vdd"]
        }

        fn current_floor(&self, _kind: CurrentKind) -> f64 {
            50e-6
        }
    }

    fn fault(effect: FaultEffect, mechanism: FaultMechanism) -> Fault {
        Fault {
            mechanism,
            effect,
            defect: Defect {
                kind: DefectKind::ExtraMetal1,
                x: 0,
                y: 0,
                size: 1000,
            },
        }
    }

    fn run(faults: Vec<Fault>) -> MacroReport {
        let collapsed = collapse(1000, faults);
        let cfg = PipelineConfig {
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            ..PipelineConfig::default()
        };
        run_macro_path_with_faults(&DividerHarness, &cfg, &collapsed, 1e6).expect("path")
    }

    #[test]
    fn hard_short_is_stuck_and_current_detected() {
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "vdd".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        assert_eq!(report.outcomes.len(), 2); // catastrophic + near-miss
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        assert_eq!(cat.voltage, VoltageSignature::OutputStuckAt);
        assert!(cat.currents.ivdd);
        assert!(cat.detection.detected());
        assert!(cat.shared, "touches the shared vdd trunk");
    }

    #[test]
    fn near_miss_short_is_offset_but_still_current_detected() {
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "vdd".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        let ncat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::NonCatastrophic)
            .unwrap();
        // 500 Ω against 10 kΩ legs: mid rises by ~2 V → stuck-class shift.
        assert!(ncat.voltage != VoltageSignature::NoDeviation);
        assert!(ncat.currents.ivdd);
    }

    #[test]
    fn benign_leak_is_undetected() {
        // A 2 kΩ leak from mid to ground moves mid by ~0.4 V (Offset) but
        // the extra supply current (≈ 160 µA... actually detected). Use a
        // fault on the vdd net itself: bulk leak vdd→gnd through 2 kΩ pulls
        // 2.5 mA — detectable; instead test an unknown-net inject failure.
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "nowhere".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        assert!(cat.inject_failed, "unknown net must mark injection failure");
        // Injection failures are excluded from the statistics.
        assert_eq!(report.weight_of(Severity::Catastrophic), 0.0);
    }

    #[test]
    fn open_fault_detaches_leg() {
        let nl = DividerHarness.testbench();
        let _ = nl; // structure documented by the effect below
        let report = run(vec![fault(
            FaultEffect::NodeSplit {
                net: "mid".into(),
                groups: vec![vec![("R1".into(), 1)], vec![("R2".into(), 0)]],
            },
            FaultMechanism::Open,
        )]);
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        // mid floats to 5 V (through R1, no load): a hard deviation.
        assert_eq!(cat.voltage, VoltageSignature::OutputStuckAt);
        // Supply current drops from 250 µA to ~0: IVdd flags it too.
        assert!(cat.currents.ivdd);
        // Opens have no near-miss variant.
        assert_eq!(report.outcomes.len(), 1);
    }

    #[test]
    fn effect_nets_resolves_device_terminals() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_mosfet(
            "M1",
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            dotm_netlist::MosType::Nmos,
            dotm_netlist::MosfetParams::nmos_default(),
        )
        .unwrap();
        let nets = effect_nets(
            &FaultEffect::GateOxide {
                device: "M1".into(),
            },
            &nl,
        );
        assert_eq!(
            nets,
            vec!["0".to_string(), "a".to_string(), "b".to_string()]
        );
        let nets = effect_nets(
            &FaultEffect::DeviceShort {
                device: "M1".into(),
            },
            &nl,
        );
        assert_eq!(nets, vec!["0".to_string(), "a".to_string()]);
    }

    /// A divider whose measurement refuses to converge on *faulted*
    /// netlists until the solver's iteration budget reaches
    /// `needs_iters` — fault-free circuits (good-space compilation)
    /// always measure, so only the escalation ladder is exercised.
    #[derive(Debug)]
    struct FlakyHarness {
        needs_iters: usize,
    }

    impl MacroHarness for FlakyHarness {
        fn name(&self) -> &str {
            "flaky"
        }

        fn layout(&self) -> Layout {
            DividerHarness.layout()
        }

        fn instance_count(&self) -> usize {
            1
        }

        fn testbench(&self) -> Netlist {
            DividerHarness.testbench()
        }

        fn plan(&self) -> MeasurementPlan {
            DividerHarness.plan()
        }

        fn measure_with(
            &self,
            nl: &Netlist,
            opts: &SimOptions,
            stats: &mut SimStats,
            warm: Warm<'_>,
            batch: Batch<'_>,
        ) -> Result<Vec<f64>, dotm_sim::SimError> {
            let faulted = nl.devices().any(|(_, d)| d.name.starts_with("flt"));
            if faulted && opts.max_iter < self.needs_iters {
                stats.nr_solves += 1;
                stats.dc_failures += 1;
                return Err(dotm_sim::SimError::NoConvergence {
                    analysis: "dc",
                    time: None,
                    iterations: opts.max_iter,
                });
            }
            DividerHarness.measure_with(nl, opts, stats, warm, batch)
        }

        fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
            DividerHarness.classify_voltage(nominal, faulty)
        }

        fn shared_nets(&self) -> Vec<&'static str> {
            DividerHarness.shared_nets()
        }

        fn current_floor(&self, kind: CurrentKind) -> f64 {
            DividerHarness.current_floor(kind)
        }
    }

    fn run_flaky(
        needs_iters: usize,
        policy: SimFailurePolicy,
        escalation: EscalationLadder,
    ) -> MacroReport {
        let collapsed = collapse(
            1000,
            vec![fault(
                FaultEffect::Bridge {
                    nets: vec!["mid".into(), "vdd".into()],
                    medium: BridgeMedium::Metal,
                },
                FaultMechanism::Short,
            )],
        );
        let cfg = PipelineConfig {
            non_catastrophic: false,
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            sim_failure_policy: policy,
            escalation,
            ..PipelineConfig::default()
        };
        run_macro_path_with_faults(&FlakyHarness { needs_iters }, &cfg, &collapsed, 1e6)
            .expect("path")
    }

    #[test]
    fn escalation_ladder_recovers_nonconverging_class() {
        // Rung 0 offers max_iter = 150; the harness demands 600, which is
        // exactly rung 1's 4× budget — the class must measure there with
        // its real signature, not fall through to the failure policy.
        let report = run_flaky(
            600,
            SimFailurePolicy::AssumeDetected,
            EscalationLadder::default(),
        );
        let cat = &report.outcomes[0];
        assert!(!cat.sim_failed, "rung 1 must recover the measurement");
        assert_eq!(cat.rung, Some(1));
        assert_eq!(cat.voltage, VoltageSignature::OutputStuckAt);
        assert_eq!(report.escalated_classes(), 1);
        assert_eq!(report.sim_failed_classes(), 0);
        let hist = report.rung_histogram();
        assert_eq!(hist[0], 0);
        assert_eq!(hist[1], 1);
        // The failed rung-0 attempt stays in the books.
        assert!(cat.solver.dc_failures >= 1);
        assert!(report.solver_totals().dc_failures >= 1);
    }

    #[test]
    fn disabled_ladder_does_not_retry() {
        let report = run_flaky(
            600,
            SimFailurePolicy::AssumeDetected,
            EscalationLadder::disabled(),
        );
        let cat = &report.outcomes[0];
        assert!(cat.sim_failed);
        assert_eq!(cat.rung, None);
        assert_eq!(report.escalated_classes(), 0);
        assert_eq!(report.sim_failed_classes(), 1);
    }

    #[test]
    fn assume_detected_policy_credits_missing_code() {
        // Never converges, at any rung.
        let report = run_flaky(
            usize::MAX,
            SimFailurePolicy::AssumeDetected,
            EscalationLadder::default(),
        );
        let cat = &report.outcomes[0];
        assert!(cat.sim_failed);
        assert_eq!(cat.voltage, VoltageSignature::Mixed);
        assert!(cat.detection.missing_code);
        assert!(cat.detection.detected());
        assert!(!cat.excluded);
        assert_eq!(report.sim_failed_classes(), 1);
        assert!(report.weight_of(Severity::Catastrophic) > 0.0);
        assert_eq!(report.coverage(Severity::Catastrophic), 100.0);
    }

    #[test]
    fn assume_undetected_policy_withholds_credit() {
        let report = run_flaky(
            usize::MAX,
            SimFailurePolicy::AssumeUndetected,
            EscalationLadder::default(),
        );
        let cat = &report.outcomes[0];
        assert!(cat.sim_failed);
        assert!(!cat.detection.detected(), "no credit for a solver failure");
        assert!(!cat.excluded);
        assert_eq!(report.sim_failed_classes(), 1);
        assert!(report.weight_of(Severity::Catastrophic) > 0.0);
        assert_eq!(report.coverage(Severity::Catastrophic), 0.0);
    }

    #[test]
    fn exclude_policy_drops_class_from_statistics() {
        let report = run_flaky(
            usize::MAX,
            SimFailurePolicy::Exclude,
            EscalationLadder::default(),
        );
        let cat = &report.outcomes[0];
        assert!(cat.excluded);
        assert!(cat.sim_failed);
        assert!(!cat.inject_failed, "injection itself worked");
        assert_eq!(report.excluded_classes(), 1);
        assert_eq!(report.weight_of(Severity::Catastrophic), 0.0);
    }

    #[test]
    fn policies_parse_from_env_style_strings() {
        for (s, want) in [
            ("assume-detected", SimFailurePolicy::AssumeDetected),
            ("AssumeDetected", SimFailurePolicy::AssumeDetected),
            ("detected", SimFailurePolicy::AssumeDetected),
            ("assume_undetected", SimFailurePolicy::AssumeUndetected),
            ("undetected", SimFailurePolicy::AssumeUndetected),
            ("exclude", SimFailurePolicy::Exclude),
            ("Excluded", SimFailurePolicy::Exclude),
        ] {
            assert_eq!(s.parse::<SimFailurePolicy>().unwrap(), want, "{s}");
        }
        assert!("banana".parse::<SimFailurePolicy>().is_err());
    }

    #[test]
    fn real_inject_errors_are_counted() {
        // An unknown net is a real injection error on every variant: the
        // class is inject-failed *and* its error count is visible.
        let report = run(vec![fault(
            FaultEffect::Bridge {
                nets: vec!["mid".into(), "nowhere".into()],
                medium: BridgeMedium::Metal,
            },
            FaultMechanism::Short,
        )]);
        let cat = report
            .outcomes
            .iter()
            .find(|o| o.severity == Severity::Catastrophic)
            .unwrap();
        assert!(cat.inject_failed);
        assert!(cat.inject_errors > 0);
        assert_eq!(cat.rung, None);
        assert!(report.inject_failed_classes() >= 1);
    }

    /// A harness with three gate-oxide model variants (on `M1`) whose
    /// measurements are fabricated from the injected device names: the
    /// `gs` variant is strongly detected at rung 0, the `gd` variant only
    /// measures at rung 1 (also detected), and the `gc` variant looks
    /// fault-free — so `gc` wins the worst-case selection at rung 0 while
    /// `gd` escalates along the way.
    #[derive(Debug)]
    struct VariantFlakyHarness;

    impl MacroHarness for VariantFlakyHarness {
        fn name(&self) -> &str {
            "variant_flaky"
        }

        fn layout(&self) -> Layout {
            DividerHarness.layout()
        }

        fn instance_count(&self) -> usize {
            1
        }

        fn testbench(&self) -> Netlist {
            let mut nl = DividerHarness.testbench();
            let mid = nl.node("mid");
            let gx = nl.node("gx");
            nl.add_mosfet(
                "M1",
                mid,
                gx,
                Netlist::GROUND,
                Netlist::GROUND,
                dotm_netlist::MosType::Nmos,
                dotm_netlist::MosfetParams::nmos_default(),
            )
            .unwrap();
            nl
        }

        fn plan(&self) -> MeasurementPlan {
            DividerHarness.plan()
        }

        fn measure_with(
            &self,
            nl: &Netlist,
            opts: &SimOptions,
            stats: &mut SimStats,
            _warm: Warm<'_>,
            _batch: Batch<'_>,
        ) -> Result<Vec<f64>, dotm_sim::SimError> {
            if nl.device("flt.gd").is_some() && opts.max_iter < 600 {
                stats.nr_solves += 1;
                stats.dc_failures += 1;
                return Err(dotm_sim::SimError::NoConvergence {
                    analysis: "dc",
                    time: None,
                    iterations: opts.max_iter,
                });
            }
            stats.nr_solves += 1;
            if nl.device("flt.gs").is_some() || nl.device("flt.gd").is_some() {
                Ok(vec![5.0, 0.0]) // hard deviation: detected
            } else {
                Ok(vec![2.5, 250e-6]) // nominal-looking: undetected
            }
        }

        fn classify_voltage(&self, nominal: &[f64], faulty: &[f64]) -> VoltageSignature {
            DividerHarness.classify_voltage(nominal, faulty)
        }

        fn shared_nets(&self) -> Vec<&'static str> {
            Vec::new()
        }

        fn current_floor(&self, kind: CurrentKind) -> f64 {
            DividerHarness.current_floor(kind)
        }
    }

    #[test]
    fn rung_attribution_follows_winning_variant() {
        let collapsed = collapse(
            1000,
            vec![fault(
                FaultEffect::GateOxide {
                    device: "M1".into(),
                },
                FaultMechanism::GateOxidePinhole,
            )],
        );
        let cfg = PipelineConfig {
            non_catastrophic: false,
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            ..PipelineConfig::default()
        };
        let report =
            run_macro_path_with_faults(&VariantFlakyHarness, &cfg, &collapsed, 1e6).expect("path");
        let cat = &report.outcomes[0];
        // The winning (worst-case) variant is the undetected `gc` one,
        // measured at rung 0 — the rung must be its, not the max over the
        // escalated-but-losing `gd` variant.
        assert!(!cat.detection.detected());
        assert_eq!(cat.rung, Some(0));
        assert_eq!(report.escalated_classes(), 0);
        let hist = report.rung_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 0);
        // The gd variant's failed rung-0 attempt still shows in the books.
        assert!(cat.solver.dc_failures >= 1);
    }

    #[test]
    fn ladder_options_escalate_cumulatively() {
        let base = SimOptions::default();
        let r0 = EscalationLadder::options_at(&base, 0);
        assert_eq!(r0, base);
        let r1 = EscalationLadder::options_at(&base, 1);
        assert_eq!(r1.max_iter, base.max_iter * 4);
        let r5 = EscalationLadder::options_at(&base, 5);
        assert_eq!(r5.max_iter, base.max_iter * 4, "rung 1 measure retained");
        assert!(r5.v_step_limit <= base.v_step_limit);
        assert!(r5.gmin >= 1e-9);
        assert!(r5.reltol >= 1e-3);
    }

    #[test]
    fn max_classes_truncates() {
        let faults = vec![
            fault(
                FaultEffect::Bridge {
                    nets: vec!["mid".into(), "vdd".into()],
                    medium: BridgeMedium::Metal,
                },
                FaultMechanism::Short,
            );
            3
        ]
        .into_iter()
        .chain(std::iter::once(fault(
            FaultEffect::BulkLeak {
                net: "mid".into(),
                bulk: "gnd".into(),
            },
            FaultMechanism::JunctionPinhole,
        )))
        .collect();
        let collapsed = collapse(1000, faults);
        assert_eq!(collapsed.class_count(), 2);
        let cfg = PipelineConfig {
            max_classes: Some(1),
            non_catastrophic: false,
            goodspace: crate::goodspace::GoodSpaceConfig {
                common_samples: 2,
                mismatch_samples: 2,
                seed: 1,
                ..GoodSpaceConfig::default()
            },
            ..PipelineConfig::default()
        };
        let report =
            run_macro_path_with_faults(&DividerHarness, &cfg, &collapsed, 1e6).expect("path");
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].count, 3); // the most frequent class
    }

    /// A synthetic outcome carrying only a rung — the histogram ignores
    /// every other field.
    fn outcome_at_rung(rung: Option<u8>) -> ClassOutcome {
        ClassOutcome {
            key: "synthetic".into(),
            mechanism: FaultMechanism::Short,
            count: 1,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::OutputStuckAt,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            sim_failed: false,
            inject_failed: false,
            rung,
            inject_errors: 0,
            excluded: false,
            solver: SimStats::default(),
        }
    }

    fn report_with_outcomes(outcomes: Vec<ClassOutcome>) -> MacroReport {
        MacroReport {
            name: "synthetic".into(),
            instances: 1,
            sprinkle_area_nm2: 1.0,
            defects: outcomes.len(),
            total_faults: outcomes.len(),
            class_count: outcomes.len(),
            outcomes,
            goodspace_solver: SimStats::default(),
            goodspace_corner_retries: 0,
            cache_lookups: 0,
            cache_entries: 0,
        }
    }

    #[test]
    fn rung_histogram_counts_in_range_rungs_and_skips_unmeasured() {
        let report = report_with_outcomes(vec![
            outcome_at_rung(Some(0)),
            outcome_at_rung(Some(0)),
            outcome_at_rung(Some((ESCALATION_RUNGS - 1) as u8)),
            outcome_at_rung(None), // never measured: not in the histogram
        ]);
        let hist = report.rung_histogram();
        assert_eq!(hist[0], 2);
        assert_eq!(hist[ESCALATION_RUNGS - 1], 1);
        assert_eq!(hist.iter().sum::<u64>(), 3);
    }

    #[test]
    fn fanout_observer_delivers_to_all_and_aborts_on_any_veto() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Tally {
            seen: AtomicUsize,
            veto_at: Option<usize>,
        }
        impl ClassObserver for Tally {
            fn on_class(&self, index: usize, _outcomes: &[ClassOutcome]) -> bool {
                self.seen.fetch_add(1, Ordering::Relaxed);
                Some(index) != self.veto_at
            }
        }

        let a = Tally {
            seen: AtomicUsize::new(0),
            veto_at: None,
        };
        let b = Tally {
            seen: AtomicUsize::new(0),
            veto_at: Some(1),
        };
        let fanout = FanoutObserver::new(vec![&a, &b]);
        let outcomes = [outcome_at_rung(Some(0))];
        assert!(fanout.on_class(0, &outcomes), "no veto yet");
        assert!(!fanout.on_class(1, &outcomes), "b vetoes class 1");
        // Both observers saw both classes — a sibling's veto never hides
        // the class from the rest of the panel.
        assert_eq!(a.seen.load(Ordering::Relaxed), 2);
        assert_eq!(b.seen.load(Ordering::Relaxed), 2);
        assert!(FanoutObserver::new(Vec::new()).on_class(0, &outcomes));
    }

    #[test]
    fn worst_case_tie_break_prefers_earliest_variant() {
        // The worst-case selection must depend only on the fold order —
        // the contract that lets the lockstep path (severity-major,
        // variant-minor, same as the sequential walk) pick bit-identical
        // winners. Equal scores keep the incumbent; a strictly lower
        // score replaces it regardless of position.
        let eval = |voltage, missing_code| VariantEval {
            voltage,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code,
                currents: CurrentFlags::default(),
            },
            flagged: Vec::new(),
            sim_failed: false,
            rung: Some(0),
        };
        // Two distinguishable variants with the same score (1 each).
        let winner = compete(
            compete(None, eval(VoltageSignature::Offset, true)),
            eval(VoltageSignature::OutputStuckAt, true),
        )
        .expect("fold");
        assert_eq!(
            winner.1.voltage,
            VoltageSignature::Offset,
            "tie kept the later variant"
        );
        // Reversed fold order flips the tie the other way: order is the
        // only tie-break, so identical fold orders give identical winners.
        let winner = compete(
            compete(None, eval(VoltageSignature::OutputStuckAt, true)),
            eval(VoltageSignature::Offset, true),
        )
        .expect("fold");
        assert_eq!(winner.1.voltage, VoltageSignature::OutputStuckAt);
        // A strictly harder variant (score 0) still beats any incumbent.
        let winner = compete(
            compete(None, eval(VoltageSignature::Offset, true)),
            eval(VoltageSignature::NoDeviation, false),
        )
        .expect("fold");
        assert_eq!(winner.0, 0);
        assert_eq!(winner.1.voltage, VoltageSignature::NoDeviation);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn rung_histogram_rejects_foreign_rungs_in_debug_builds() {
        // A rung the ladder can never emit — e.g. an outcome deserialized
        // from a store written by a build with a taller ladder. Release
        // builds saturate it into the top bucket instead of panicking.
        let report = report_with_outcomes(vec![outcome_at_rung(Some(ESCALATION_RUNGS as u8))]);
        let _ = report.rung_histogram();
    }
}
