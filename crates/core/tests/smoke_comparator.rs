//! End-to-end smoke test of the comparator test path on a reduced fault
//! population.

use dotm_core::harnesses::ComparatorHarness;
use dotm_core::{
    detectability, run_macro_path, voltage_table, GoodSpaceConfig, PipelineConfig, VoltageSignature,
};
use dotm_faults::Severity;

#[test]
fn comparator_path_produces_plausible_statistics() {
    let harness = ComparatorHarness::production();
    let cfg = PipelineConfig {
        defects: 4_000,
        seed: 42,
        goodspace: GoodSpaceConfig {
            common_samples: 3,
            mismatch_samples: 2,
            seed: 7,
            ..GoodSpaceConfig::default()
        },
        max_classes: Some(40),
        non_catastrophic: true,
        ..PipelineConfig::default()
    };
    let report = run_macro_path(&harness, &cfg).expect("path must run");
    assert!(
        report.total_faults > 20,
        "too few faults: {}",
        report.total_faults
    );
    assert!(
        report.class_count > 10,
        "too few classes: {}",
        report.class_count
    );

    let rows = voltage_table(&report);
    println!(
        "voltage rows: {:?}",
        rows.iter()
            .map(|r| (r.signature.to_string(), r.catastrophic_pct))
            .collect::<Vec<_>>()
    );
    for o in &report.outcomes {
        if o.severity == Severity::Catastrophic {
            println!(
                "  {:>4}x {:<22} v={:?} i=({},{},{}) shared={} fail={} key={}",
                o.count,
                format!("{}", o.mechanism),
                o.voltage,
                o.currents.ivdd as u8,
                o.currents.iddq as u8,
                o.currents.iinput as u8,
                o.shared as u8,
                o.sim_failed as u8,
                &o.key[..o.key.len().min(60)]
            );
        }
    }
    let pct = |sig: VoltageSignature| {
        rows.iter()
            .find(|r| r.signature == sig)
            .unwrap()
            .catastrophic_pct
    };
    // The balanced design with small bias currents makes stuck-at a major
    // category (paper: "many of the faults cause a stuck-at behavior").
    assert!(
        pct(VoltageSignature::OutputStuckAt) > 12.0,
        "stuck-at pct = {}",
        pct(VoltageSignature::OutputStuckAt)
    );

    let d = detectability(&report, Severity::Catastrophic);
    assert!(
        d.coverage_pct > 60.0,
        "coverage {:.1} too low: {d:?}",
        d.coverage_pct
    );
    assert!(
        d.current_pct > 30.0,
        "current detection {:.1} too low",
        d.current_pct
    );
    assert!(d.missing_code_pct > 30.0, "{d:?}");
    println!("smoke detectability: {d:#?}");
    println!(
        "voltage rows: {:?}",
        rows.iter()
            .map(|r| (r.signature.to_string(), r.catastrophic_pct))
            .collect::<Vec<_>>()
    );
    let sim_failures = report.outcomes.iter().filter(|o| o.sim_failed).count();
    println!(
        "classes evaluated: {}, sim failures: {sim_failures}",
        report.outcomes.len()
    );
    assert!(
        (sim_failures as f64) < 0.3 * report.outcomes.len() as f64,
        "too many simulation failures: {sim_failures}/{}",
        report.outcomes.len()
    );
}
