//! Cross-harness invariants: every macro harness must produce measurement
//! vectors that match its declared plan, measure deterministically, and
//! keep its layout consistent with its testbench.

use dotm_core::harnesses::{
    BiasHarness, ClockgenHarness, ComparatorHarness, DecoderHarness, LadderHarness,
};
use dotm_core::{GoodSpace, GoodSpaceConfig, MacroHarness, MeasureKind, ProcessModel};

fn harnesses() -> Vec<Box<dyn MacroHarness>> {
    vec![
        Box::new(LadderHarness),
        Box::new(BiasHarness::default()),
        Box::new(ClockgenHarness::default()),
        Box::new(DecoderHarness::default()),
        Box::new(ComparatorHarness::production()),
        Box::new(ComparatorHarness::dft()),
    ]
}

#[test]
fn measurement_vectors_match_plans() {
    for h in harnesses() {
        let plan = h.plan();
        assert!(!plan.is_empty(), "{}: empty plan", h.name());
        let meas = h.measure(&h.testbench()).expect("fault-free measure");
        assert_eq!(
            meas.len(),
            plan.len(),
            "{}: measurement length {} != plan length {}",
            h.name(),
            meas.len(),
            plan.len()
        );
        for (i, v) in meas.iter().enumerate() {
            assert!(
                v.is_finite(),
                "{}: measurement {} ({}) not finite",
                h.name(),
                i,
                plan.labels[i].name
            );
        }
    }
}

#[test]
fn measurements_are_deterministic() {
    for h in harnesses() {
        let nl = h.testbench();
        let a = h.measure(&nl).unwrap();
        let b = h.measure(&nl).unwrap();
        assert_eq!(a, b, "{}: nondeterministic measurement", h.name());
    }
}

#[test]
fn fault_free_circuit_classifies_as_no_deviation() {
    use dotm_core::VoltageSignature;
    for h in harnesses() {
        let meas = h.measure(&h.testbench()).unwrap();
        let sig = h.classify_voltage(&meas, &meas);
        assert_eq!(
            sig,
            VoltageSignature::NoDeviation,
            "{}: fault-free circuit classified {:?}",
            h.name(),
            sig
        );
    }
}

#[test]
fn every_plan_has_current_measurements() {
    use dotm_core::CurrentKind;
    for h in harnesses() {
        let plan = h.plan();
        let any_current = CurrentKind::ALL
            .iter()
            .any(|&k| !plan.current_indices(k).is_empty());
        assert!(any_current, "{}: no current measurements", h.name());
    }
}

#[test]
fn layout_nets_resolve_in_testbench() {
    for h in harnesses() {
        let lo = h.layout();
        let nl = h.testbench();
        for (_, name) in lo.nets() {
            assert!(
                nl.find_node(name).is_some(),
                "{}: layout net `{name}` missing from testbench",
                h.name()
            );
        }
        // Every pinned device exists in the testbench.
        for pin in lo.pins() {
            assert!(
                nl.device(&pin.device).is_some(),
                "{}: pinned device `{}` missing from testbench",
                h.name(),
                pin.device
            );
        }
    }
}

#[test]
fn shared_nets_exist() {
    for h in harnesses() {
        let nl = h.testbench();
        for net in h.shared_nets() {
            assert!(
                nl.find_node(net).is_some(),
                "{}: shared net `{net}` missing",
                h.name()
            );
        }
    }
}

#[test]
fn fast_goodspace_compiles_for_dc_harnesses() {
    // The DC/short-transient harnesses compile a good space quickly; the
    // comparator's is covered by the (slower) smoke test.
    let cfg = GoodSpaceConfig {
        common_samples: 2,
        mismatch_samples: 2,
        seed: 3,
        ..GoodSpaceConfig::default()
    };
    let model = ProcessModel::default();
    for h in [
        Box::new(LadderHarness) as Box<dyn MacroHarness>,
        Box::new(BiasHarness::default()),
        Box::new(ClockgenHarness::default()),
        Box::new(DecoderHarness::default()),
    ] {
        let gs = GoodSpace::compile(h.as_ref(), &model, cfg).expect("good space");
        assert_eq!(gs.nominal.len(), h.plan().len());
        // Spread estimates must be finite and non-negative.
        for i in 0..gs.nominal.len() {
            assert!(gs.sigma_common[i].is_finite() && gs.sigma_common[i] >= 0.0);
            assert!(gs.sigma_mismatch[i].is_finite() && gs.sigma_mismatch[i] >= 0.0);
            assert!(gs.threshold(i, h.instance_count()) >= 0.0);
        }
        // The fault-free measurement sits inside its own good space.
        let flags = gs.current_flags(h.as_ref(), &gs.nominal, false);
        assert!(
            !flags.any(),
            "{}: fault-free circuit flagged {flags:?}",
            h.name()
        );
    }
}

#[test]
fn current_kind_partition_is_exhaustive() {
    use dotm_core::{CurrentKind, MeasureKind as MK};
    for h in harnesses() {
        let plan = h.plan();
        let currents: usize = CurrentKind::ALL
            .iter()
            .map(|&k| plan.current_indices(k).len())
            .sum();
        let counted = plan
            .labels
            .iter()
            .filter(|l| matches!(l.kind, MK::Current(_)))
            .count();
        assert_eq!(currents, counted, "{}", h.name());
        let _ = MeasureKind::Decision; // keep the import honest
    }
}
