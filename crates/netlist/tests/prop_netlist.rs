//! Randomised tests on the netlist container: naming invariants,
//! instantiation, waveform evaluation and the fault-edit operations.
//!
//! Formerly proptest; now seeded loops over the in-tree PRNG so the
//! workspace builds hermetically.

use dotm_netlist::{Netlist, TerminalRef, Waveform};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

/// `[a-z][a-z0-9_]{0,10}`, never the ground alias.
fn random_name(rng: &mut StdRng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let len = rng.gen_range(0usize..=10);
        let mut s = String::with_capacity(len + 1);
        s.push(HEAD[rng.gen_range(0usize..HEAD.len())] as char);
        for _ in 0..len {
            s.push(TAIL[rng.gen_range(0usize..TAIL.len())] as char);
        }
        if s != "gnd" {
            return s;
        }
    }
}

#[test]
fn node_lookup_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x4e01);
    for _ in 0..200 {
        let count = rng.gen_range(1usize..20);
        let names: Vec<String> = (0..count).map(|_| random_name(&mut rng)).collect();
        let mut nl = Netlist::new("t");
        let ids: Vec<_> = names.iter().map(|n| nl.node(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            assert_eq!(nl.node(name), *id);
            assert_eq!(nl.find_node(name), Some(*id));
            assert_eq!(nl.node_name(*id), name.as_str());
        }
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(nl.node_count(), unique.len() + 1); // + ground
    }
}

#[test]
fn resistor_chain_builds_and_connects() {
    let mut rng = StdRng::seed_from_u64(0x4e02);
    for _ in 0..100 {
        let n = rng.gen_range(1usize..40);
        let ohms = rng.gen_range(1.0f64..1e6);
        let mut nl = Netlist::new("chain");
        let mut prev = nl.node("n0");
        for k in 1..=n {
            let next = nl.node(&format!("n{k}"));
            nl.add_resistor(&format!("R{k}"), prev, next, ohms).unwrap();
            prev = next;
        }
        assert_eq!(nl.device_count(), n);
        // Every internal node touches exactly two resistors.
        for k in 1..n {
            let node = nl.find_node(&format!("n{k}")).unwrap();
            assert_eq!(nl.connections(node).len(), 2);
        }
    }
}

#[test]
fn instantiate_preserves_device_count() {
    for copies in 1usize..10 {
        let mut sub = Netlist::new("cell");
        let a = sub.node("in");
        let b = sub.node("out");
        let m = sub.node("mid");
        sub.add_resistor("Ra", a, m, 10.0).unwrap();
        sub.add_resistor("Rb", m, b, 10.0).unwrap();

        let mut top = Netlist::new("top");
        let shared = top.node("bus");
        for k in 0..copies {
            top.instantiate(&sub, &format!("u{k}"), &[("in", shared)])
                .unwrap();
        }
        assert_eq!(top.device_count(), 2 * copies);
        // The shared port node fans out to one terminal per copy.
        assert_eq!(top.connections(shared).len(), copies);
    }
}

#[test]
fn split_node_moves_exactly_the_requested_terminals() {
    for move_first in [false, true] {
        let mut nl = Netlist::new("t");
        let x = nl.node("x");
        nl.add_resistor("R1", x, Netlist::GROUND, 10.0).unwrap();
        nl.add_resistor("R2", x, Netlist::GROUND, 20.0).unwrap();
        let target = if move_first { "R1" } else { "R2" };
        let keep = if move_first { "R2" } else { "R1" };
        let id = nl.device_id(target).unwrap();
        let fresh = nl
            .split_node(
                x,
                &[TerminalRef {
                    device: id,
                    terminal: 0,
                }],
            )
            .unwrap();
        assert_eq!(nl.device(target).unwrap().terminals()[0], fresh);
        assert_eq!(nl.device(keep).unwrap().terminals()[0], x);
    }
}

#[test]
fn pulse_waveform_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x4e03);
    for _ in 0..500 {
        let v0 = rng.gen_range(-10.0f64..10.0);
        let v1 = rng.gen_range(-10.0f64..10.0);
        let t = rng.gen_range(0.0f64..1e-3);
        let w = Waveform::pulse(v0, v1, 10e-6, 5e-6, 5e-6, 20e-6, 100e-6);
        let v = w.value_at(t);
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        assert!(
            v >= lo - 1e-12 && v <= hi + 1e-12,
            "v = {v} outside [{lo}, {hi}] at t = {t}"
        );
    }
}

#[test]
fn triangle_stays_in_range_and_hits_extremes() {
    let mut rng = StdRng::seed_from_u64(0x4e04);
    for _ in 0..200 {
        let lo = rng.gen_range(0.0f64..2.0);
        let span = rng.gen_range(0.1f64..3.0);
        let hi = lo + span;
        let w = Waveform::triangle(lo, hi, 1e-3);
        for k in 0..=100 {
            let v = w.value_at(k as f64 * 1e-5);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "lo {lo} hi {hi} k {k}");
        }
        assert!((w.value_at(0.0) - lo).abs() < 1e-9);
        assert!((w.value_at(0.5e-3) - hi).abs() < 1e-6);
    }
}

#[test]
fn scaled_waveform_scales_every_sample() {
    let mut rng = StdRng::seed_from_u64(0x4e05);
    for _ in 0..500 {
        let k = rng.gen_range(-3.0f64..3.0);
        let t = rng.gen_range(0.0f64..1e-3);
        let w = Waveform::pulse(0.0, 5.0, 10e-6, 5e-6, 5e-6, 20e-6, 100e-6);
        let ws = w.scaled(k);
        assert!(
            (ws.value_at(t) - k * w.value_at(t)).abs() < 1e-9,
            "k {k} t {t}"
        );
    }
}

mod spice_roundtrip {
    use dotm_netlist::{
        parse_spice, write_spice, DiodeParams, MosType, MosfetParams, Netlist, Waveform,
    };
    use dotm_rng::rngs::StdRng;
    use dotm_rng::{Rng, SeedableRng};

    #[test]
    fn write_then_parse_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(0x4e06);
        for _ in 0..64 {
            let r = rng.gen_range(1.0f64..1e6);
            let c = rng.gen_range(1e-15f64..1e-6);
            let v = rng.gen_range(-10.0f64..10.0);
            let w = rng.gen_range(1e-6f64..50e-6);
            let mut nl = Netlist::new("roundtrip");
            let a = nl.node("a");
            let b = nl.node("b");
            let d = nl.node("d");
            nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(v))
                .unwrap();
            nl.add_resistor("R1", a, b, r).unwrap();
            nl.add_capacitor("C1", b, Netlist::GROUND, c).unwrap();
            nl.add_diode("D1", b, Netlist::GROUND, DiodeParams::default())
                .unwrap();
            nl.add_mosfet(
                "M1",
                d,
                b,
                Netlist::GROUND,
                Netlist::GROUND,
                MosType::Nmos,
                MosfetParams::nmos_default().sized(w, 2e-6),
            )
            .unwrap();
            nl.add_isource("I1", d, Netlist::GROUND, Waveform::dc(1e-3))
                .unwrap();

            let deck = write_spice(&nl).unwrap();
            let back = parse_spice(&deck).unwrap();
            assert_eq!(back.device_count(), nl.device_count());
            assert_eq!(back.node_count(), nl.node_count());
            for (_, dev) in nl.devices() {
                let other = back.device(&dev.name);
                assert!(other.is_some(), "missing {}", dev.name);
                // Same terminals by name.
                let t1: Vec<&str> = dev.terminals().iter().map(|n| nl.node_name(*n)).collect();
                let t2: Vec<&str> = other
                    .unwrap()
                    .terminals()
                    .iter()
                    .map(|n| back.node_name(*n))
                    .collect();
                assert_eq!(t1, t2, "terminals of {}", dev.name);
            }
            // Numeric fidelity for the resistor and the MOSFET width.
            match &back.device("R1").unwrap().kind {
                dotm_netlist::DeviceKind::Resistor { ohms, .. } => {
                    assert!((ohms - r).abs() / r < 1e-12);
                }
                _ => panic!("R1 is not a resistor after roundtrip"),
            }
            match &back.device("M1").unwrap().kind {
                dotm_netlist::DeviceKind::Mosfet { params, .. } => {
                    assert!((params.w - w).abs() / w < 1e-12);
                }
                _ => panic!("M1 is not a mosfet after roundtrip"),
            }
        }
    }

    #[test]
    fn pulse_waveform_roundtrips_samples() {
        let mut rng = StdRng::seed_from_u64(0x4e07);
        for _ in 0..64 {
            let v1 = rng.gen_range(0.1f64..5.0);
            let delay = rng.gen_range(0.0f64..1e-6);
            let mut nl = Netlist::new("pulse");
            let a = nl.node("a");
            nl.add_vsource(
                "V1",
                a,
                Netlist::GROUND,
                Waveform::pulse(0.0, v1, delay, 1e-9, 1e-9, 40e-9, 100e-9),
            )
            .unwrap();
            let back = parse_spice(&write_spice(&nl).unwrap()).unwrap();
            let w1 = match &nl.device("V1").unwrap().kind {
                dotm_netlist::DeviceKind::Vsource { waveform, .. } => waveform.clone(),
                _ => unreachable!(),
            };
            let w2 = match &back.device("V1").unwrap().kind {
                dotm_netlist::DeviceKind::Vsource { waveform, .. } => waveform.clone(),
                _ => unreachable!(),
            };
            for k in 0..50 {
                let t = k as f64 * 5e-9;
                assert!(
                    (w1.value_at(t) - w2.value_at(t)).abs() < 1e-9,
                    "v1 {v1} delay {delay} t {t}"
                );
            }
        }
    }
}
