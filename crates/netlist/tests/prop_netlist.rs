//! Property-based tests on the netlist container: naming invariants,
//! instantiation, waveform evaluation and the fault-edit operations.

use dotm_netlist::{Netlist, TerminalRef, Waveform};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not ground alias", |s| s != "gnd")
}

proptest! {
    #[test]
    fn node_lookup_is_idempotent(names in prop::collection::vec(name_strategy(), 1..20)) {
        let mut nl = Netlist::new("t");
        let ids: Vec<_> = names.iter().map(|n| nl.node(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            prop_assert_eq!(nl.node(name), *id);
            prop_assert_eq!(nl.find_node(name), Some(*id));
            prop_assert_eq!(nl.node_name(*id), name.as_str());
        }
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(nl.node_count(), unique.len() + 1); // + ground
    }

    #[test]
    fn resistor_chain_builds_and_connects(n in 1usize..40, ohms in 1.0f64..1e6) {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.node("n0");
        for k in 1..=n {
            let next = nl.node(&format!("n{k}"));
            nl.add_resistor(&format!("R{k}"), prev, next, ohms).unwrap();
            prev = next;
        }
        prop_assert_eq!(nl.device_count(), n);
        // Every internal node touches exactly two resistors.
        for k in 1..n {
            let node = nl.find_node(&format!("n{k}")).unwrap();
            prop_assert_eq!(nl.connections(node).len(), 2);
        }
    }

    #[test]
    fn instantiate_preserves_device_count(copies in 1usize..10) {
        let mut sub = Netlist::new("cell");
        let a = sub.node("in");
        let b = sub.node("out");
        let m = sub.node("mid");
        sub.add_resistor("Ra", a, m, 10.0).unwrap();
        sub.add_resistor("Rb", m, b, 10.0).unwrap();

        let mut top = Netlist::new("top");
        let shared = top.node("bus");
        for k in 0..copies {
            top.instantiate(&sub, &format!("u{k}"), &[("in", shared)]).unwrap();
        }
        prop_assert_eq!(top.device_count(), 2 * copies);
        // The shared port node fans out to one terminal per copy.
        prop_assert_eq!(top.connections(shared).len(), copies);
    }

    #[test]
    fn split_node_moves_exactly_the_requested_terminals(move_first in proptest::bool::ANY) {
        let mut nl = Netlist::new("t");
        let x = nl.node("x");
        nl.add_resistor("R1", x, Netlist::GROUND, 10.0).unwrap();
        nl.add_resistor("R2", x, Netlist::GROUND, 20.0).unwrap();
        let target = if move_first { "R1" } else { "R2" };
        let keep = if move_first { "R2" } else { "R1" };
        let id = nl.device_id(target).unwrap();
        let fresh = nl.split_node(x, &[TerminalRef { device: id, terminal: 0 }]).unwrap();
        prop_assert_eq!(nl.device(target).unwrap().terminals()[0], fresh);
        prop_assert_eq!(nl.device(keep).unwrap().terminals()[0], x);
    }

    #[test]
    fn pulse_waveform_is_bounded(
        v0 in -10.0f64..10.0,
        v1 in -10.0f64..10.0,
        t in 0.0f64..1e-3,
    ) {
        let w = Waveform::pulse(v0, v1, 10e-6, 5e-6, 5e-6, 20e-6, 100e-6);
        let v = w.value_at(t);
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "v = {v} outside [{lo}, {hi}]");
    }

    #[test]
    fn triangle_stays_in_range_and_hits_extremes(lo in 0.0f64..2.0, span in 0.1f64..3.0) {
        let hi = lo + span;
        let w = Waveform::triangle(lo, hi, 1e-3);
        for k in 0..=100 {
            let v = w.value_at(k as f64 * 1e-5);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert!((w.value_at(0.0) - lo).abs() < 1e-9);
        prop_assert!((w.value_at(0.5e-3) - hi).abs() < 1e-6);
    }

    #[test]
    fn scaled_waveform_scales_every_sample(k in -3.0f64..3.0, t in 0.0f64..1e-3) {
        let w = Waveform::pulse(0.0, 5.0, 10e-6, 5e-6, 5e-6, 20e-6, 100e-6);
        let ws = w.scaled(k);
        prop_assert!((ws.value_at(t) - k * w.value_at(t)).abs() < 1e-9);
    }
}

mod spice_roundtrip {
    use dotm_netlist::{
        parse_spice, write_spice, DiodeParams, MosType, MosfetParams, Netlist, Waveform,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn write_then_parse_preserves_structure(
            r in 1.0f64..1e6,
            c in 1e-15f64..1e-6,
            v in -10.0f64..10.0,
            w in 1e-6f64..50e-6,
        ) {
            let mut nl = Netlist::new("roundtrip");
            let a = nl.node("a");
            let b = nl.node("b");
            let d = nl.node("d");
            nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(v)).unwrap();
            nl.add_resistor("R1", a, b, r).unwrap();
            nl.add_capacitor("C1", b, Netlist::GROUND, c).unwrap();
            nl.add_diode("D1", b, Netlist::GROUND, DiodeParams::default()).unwrap();
            nl.add_mosfet(
                "M1",
                d,
                b,
                Netlist::GROUND,
                Netlist::GROUND,
                MosType::Nmos,
                MosfetParams::nmos_default().sized(w, 2e-6),
            )
            .unwrap();
            nl.add_isource("I1", d, Netlist::GROUND, Waveform::dc(1e-3)).unwrap();

            let deck = write_spice(&nl).unwrap();
            let back = parse_spice(&deck).unwrap();
            prop_assert_eq!(back.device_count(), nl.device_count());
            prop_assert_eq!(back.node_count(), nl.node_count());
            for (_, dev) in nl.devices() {
                let other = back.device(&dev.name);
                prop_assert!(other.is_some(), "missing {}", dev.name);
                // Same terminals by name.
                let t1: Vec<&str> = dev.terminals().iter().map(|n| nl.node_name(*n)).collect();
                let t2: Vec<&str> = other
                    .unwrap()
                    .terminals()
                    .iter()
                    .map(|n| back.node_name(*n))
                    .collect();
                prop_assert_eq!(t1, t2, "terminals of {}", dev.name);
            }
            // Numeric fidelity for the resistor and the MOSFET width.
            match &back.device("R1").unwrap().kind {
                dotm_netlist::DeviceKind::Resistor { ohms, .. } => {
                    prop_assert!((ohms - r).abs() / r < 1e-12);
                }
                _ => prop_assert!(false),
            }
            match &back.device("M1").unwrap().kind {
                dotm_netlist::DeviceKind::Mosfet { params, .. } => {
                    prop_assert!((params.w - w).abs() / w < 1e-12);
                }
                _ => prop_assert!(false),
            }
        }

        #[test]
        fn pulse_waveform_roundtrips_samples(
            v1 in 0.1f64..5.0,
            delay in 0.0f64..1e-6,
        ) {
            let mut nl = Netlist::new("pulse");
            let a = nl.node("a");
            nl.add_vsource(
                "V1",
                a,
                Netlist::GROUND,
                Waveform::pulse(0.0, v1, delay, 1e-9, 1e-9, 40e-9, 100e-9),
            )
            .unwrap();
            let back = parse_spice(&write_spice(&nl).unwrap()).unwrap();
            let w1 = match &nl.device("V1").unwrap().kind {
                dotm_netlist::DeviceKind::Vsource { waveform, .. } => waveform.clone(),
                _ => unreachable!(),
            };
            let w2 = match &back.device("V1").unwrap().kind {
                dotm_netlist::DeviceKind::Vsource { waveform, .. } => waveform.clone(),
                _ => unreachable!(),
            };
            for k in 0..50 {
                let t = k as f64 * 5e-9;
                prop_assert!((w1.value_at(t) - w2.value_at(t)).abs() < 1e-9);
            }
        }
    }
}
