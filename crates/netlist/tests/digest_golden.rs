//! Golden test vectors for [`Netlist::content_digest`].
//!
//! The digest is the address of every persisted measurement in the
//! `dotm-store` on-disk store: if its value drifts — a hashing change, a
//! field reordering, a new device parameter — every existing store
//! silently turns cold *and*, worse, a buggy change could alias distinct
//! circuits. These vectors pin the exact u128 for a handful of fixed
//! netlists so any change to the digest function is a deliberate,
//! test-visible event (and must come with a bump of the store's
//! `FORMAT_VERSION`).

use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};

/// The divider testbench used across the pipeline's unit tests.
fn divider() -> Netlist {
    let mut nl = Netlist::new("divider");
    let vdd = nl.node("vdd");
    let mid = nl.node("mid");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    nl.add_resistor("R1", vdd, mid, 10e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 10e3).unwrap();
    nl
}

/// A netlist touching every hashed field family: node names, a MOSFET
/// with full parameters, a capacitor, and a non-DC waveform.
fn mixed() -> Netlist {
    let mut nl = Netlist::new("mixed");
    let inp = nl.node("in");
    let out = nl.node("out");
    let gate = nl.node("gate");
    nl.add_vsource(
        "VCK",
        gate,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: 5.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-9,
            period: 10e-9,
        },
    )
    .unwrap();
    nl.add_mosfet(
        "M1",
        out,
        gate,
        inp,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
    nl.add_resistor("RL", out, Netlist::GROUND, 50e3).unwrap();
    nl
}

#[test]
fn golden_divider_digest() {
    assert_eq!(
        format!("{:032x}", divider().content_digest()),
        "c7dd818b64cd503b417999ec7d1cd0ea",
        "content_digest changed for a fixed netlist — if intentional, \
         re-pin this vector AND bump dotm-store's FORMAT_VERSION"
    );
}

#[test]
fn golden_mixed_digest() {
    assert_eq!(
        format!("{:032x}", mixed().content_digest()),
        "298fce3b4cfafbe5c0febd270eb6b2f7",
        "content_digest changed for a fixed netlist — if intentional, \
         re-pin this vector AND bump dotm-store's FORMAT_VERSION"
    );
}

#[test]
fn golden_empty_digest() {
    // Ground node only; the FNV-1a offset basis mixed with "0"'s name
    // and a zero device count.
    assert_eq!(
        format!("{:032x}", Netlist::new("empty").content_digest()),
        "8570f72478a56dc75103dfa8d5e40b54"
    );
}

#[test]
fn digest_ignores_the_netlist_name() {
    let mut renamed = Netlist::new("fault_variant_17");
    let vdd = renamed.node("vdd");
    let mid = renamed.node("mid");
    renamed
        .add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    renamed.add_resistor("R1", vdd, mid, 10e3).unwrap();
    renamed
        .add_resistor("R2", mid, Netlist::GROUND, 10e3)
        .unwrap();
    assert_eq!(renamed.content_digest(), divider().content_digest());
}

#[test]
fn digest_tracks_electrical_content() {
    let base = divider().content_digest();
    // A parameter nudge by one ULP moves the digest.
    let mut nl = Netlist::new("divider");
    let vdd = nl.node("vdd");
    let mid = nl.node("mid");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    nl.add_resistor("R1", vdd, mid, f64::from_bits(10e3f64.to_bits() + 1))
        .unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 10e3).unwrap();
    assert_ne!(nl.content_digest(), base);
    // Signed zeros are distinct bit patterns, hence distinct digests.
    let mut pos = Netlist::new("z");
    let n = pos.node("n");
    pos.add_vsource("V", n, Netlist::GROUND, Waveform::dc(0.0))
        .unwrap();
    let mut neg = Netlist::new("z");
    let n = neg.node("n");
    neg.add_vsource("V", n, Netlist::GROUND, Waveform::dc(-0.0))
        .unwrap();
    assert_ne!(pos.content_digest(), neg.content_digest());
}
