//! The [`Netlist`] container and builder methods.

use crate::device::{
    Device, DeviceId, DeviceKind, DiodeParams, MosType, MosfetParams, SwitchParams,
};
use crate::error::NetlistError;
use crate::node::NodeId;
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// Mapping from a subcircuit template's port names to nodes of the parent
/// netlist, used by [`Netlist::instantiate`].
pub type PortMap<'a> = &'a [(&'a str, NodeId)];

/// A flat analog netlist: named nodes plus a list of [`Device`]s.
///
/// Node 0 is always ground (named `"0"`). Builder methods
/// (`add_resistor`, `add_mosfet`, …) validate parameters and reject
/// duplicate device names. Fault-editing operations (bridge insertion,
/// node splitting, parasitic attachment) are exposed as inherent methods
/// such as [`Netlist::insert_bridge`] and [`Netlist::split_node`].
///
/// ```
/// use dotm_netlist::{Netlist, Waveform};
/// # fn main() -> Result<(), dotm_netlist::NetlistError> {
/// let mut nl = Netlist::new("rc");
/// let inp = nl.node("in");
/// let out = nl.node("out");
/// nl.add_vsource("V1", inp, Netlist::GROUND, Waveform::dc(1.0))?;
/// nl.add_resistor("R1", inp, out, 1e3)?;
/// nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12)?;
/// assert!(nl.device("R1").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    devices: Vec<Device>,
    device_index: HashMap<String, DeviceId>,
}

impl Netlist {
    /// The ground/reference node, present in every netlist.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new(name: impl Into<String>) -> Self {
        let mut node_index = HashMap::new();
        node_index.insert("0".to_string(), NodeId(0));
        Netlist {
            name: name.into(),
            node_names: vec!["0".to_string()],
            node_index,
            devices: Vec::new(),
            device_index: HashMap::new(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` both resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "gnd" || name == "0" {
            return Self::GROUND;
        }
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "gnd" {
            return Some(Self::GROUND);
        }
        self.node_index.get(name).copied()
    }

    /// Creates a fresh node with a generated unique name derived from `stem`.
    pub fn fresh_node(&mut self, stem: &str) -> NodeId {
        let mut i = self.node_names.len();
        loop {
            let candidate = format!("{stem}#{i}");
            if !self.node_index.contains_key(&candidate) {
                return self.node(&candidate);
            }
            i += 1;
        }
    }

    /// The name of a node.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A 128-bit content hash (FNV-1a) over the full electrical structure:
    /// node names in id order, then every device's name, kind tag, terminal
    /// node ids, and parameter values (as raw `f64` bit patterns, so `-0.0`
    /// and `0.0` hash differently and NaNs are stable).
    ///
    /// Two netlists with equal digests stamp identical MNA systems, so any
    /// measurement is a pure function of `(digest, SimOptions)` — this is
    /// the key used by the measurement memoization cache in `dotm-core`.
    /// The netlist *name* is deliberately excluded: fault injection renames
    /// the netlist per fault id while distinct faults can degenerate to the
    /// same circuit, and those should share a cache entry.
    pub fn content_digest(&self) -> u128 {
        struct Fnv(u128);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                // 128-bit FNV-1a prime and xor-multiply step.
                self.0 ^= b as u128;
                self.0 = self.0.wrapping_mul(0x0000000001000000000000000000013b);
            }
            fn u64(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.byte(b);
                }
            }
            // Length-prefix every variable-size field so concatenations
            // cannot collide ("ab"+"c" vs "a"+"bc").
            fn bytes(&mut self, bs: &[u8]) {
                self.u64(bs.len() as u64);
                for &b in bs {
                    self.byte(b);
                }
            }
            fn f64s(&mut self, vs: &[f64]) {
                for v in vs {
                    self.u64(v.to_bits());
                }
            }
            fn waveform(&mut self, w: &Waveform) {
                match w {
                    Waveform::Dc(v) => {
                        self.byte(0);
                        self.f64s(&[*v]);
                    }
                    Waveform::Pulse {
                        v0,
                        v1,
                        delay,
                        rise,
                        fall,
                        width,
                        period,
                    } => {
                        self.byte(1);
                        self.f64s(&[*v0, *v1, *delay, *rise, *fall, *width, *period]);
                    }
                    Waveform::Pwl(points) => {
                        self.byte(2);
                        self.u64(points.len() as u64);
                        for &(t, v) in points {
                            self.f64s(&[t, v]);
                        }
                    }
                    Waveform::Sin {
                        offset,
                        amplitude,
                        freq,
                        delay,
                    } => {
                        self.byte(3);
                        self.f64s(&[*offset, *amplitude, *freq, *delay]);
                    }
                }
            }
        }
        let mut h = Fnv(0x6c62272e07bb014262b821756295c58d);
        for name in &self.node_names {
            h.bytes(name.as_bytes());
        }
        h.u64(self.devices.len() as u64);
        for dev in &self.devices {
            h.bytes(dev.name.as_bytes());
            h.bytes(dev.kind.tag().as_bytes());
            for t in dev.terminals() {
                h.u64(t.index() as u64);
            }
            match &dev.kind {
                DeviceKind::Resistor { ohms, .. } => h.f64s(&[*ohms]),
                DeviceKind::Capacitor { farads, .. } => h.f64s(&[*farads]),
                DeviceKind::Vsource { waveform: w, .. }
                | DeviceKind::Isource { waveform: w, .. } => h.waveform(w),
                DeviceKind::Diode { params, .. } => h.f64s(&[params.is, params.n]),
                DeviceKind::Mosfet { ty, params, .. } => {
                    h.byte(match ty {
                        MosType::Nmos => 0,
                        MosType::Pmos => 1,
                    });
                    h.f64s(&[
                        params.w,
                        params.l,
                        params.vt0,
                        params.kp,
                        params.lambda,
                        params.gamma,
                        params.phi,
                        params.is_leak,
                        params.cox,
                        params.cj,
                    ]);
                }
                DeviceKind::Switch { params, .. } => {
                    h.f64s(&[params.v_on, params.v_off, params.r_on, params.r_off])
                }
            }
        }
        h.0
    }

    /// Iterates over `(DeviceId, &Device)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// Looks up a device by name.
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.device_index
            .get(name)
            .map(|id| &self.devices[id.index()])
    }

    /// Looks up a device id by name.
    pub fn device_id(&self, name: &str) -> Option<DeviceId> {
        self.device_index.get(name).copied()
    }

    /// Returns the device with the given id.
    pub fn device_by_id(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.index())
    }

    /// Mutable access to a device by id (for parameter perturbation in
    /// process Monte-Carlo and fault injection).
    pub fn device_by_id_mut(&mut self, id: DeviceId) -> Option<&mut Device> {
        self.devices.get_mut(id.index())
    }

    /// Mutable access to a device by name.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut Device> {
        let id = *self.device_index.get(name)?;
        self.devices.get_mut(id.index())
    }

    /// Adds an arbitrary pre-built device.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateDevice`] if the name is taken, or
    /// [`NetlistError::InvalidNodeId`] if a terminal references a node not
    /// issued by this netlist.
    pub fn add_device(&mut self, device: Device) -> Result<DeviceId, NetlistError> {
        if self.device_index.contains_key(&device.name) {
            return Err(NetlistError::DuplicateDevice(device.name));
        }
        for t in device.terminals() {
            if t.index() >= self.node_names.len() {
                return Err(NetlistError::InvalidNodeId(t));
            }
        }
        let id = DeviceId(self.devices.len() as u32);
        self.device_index.insert(device.name.clone(), id);
        self.devices.push(device);
        Ok(id)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    /// Rejects non-finite or non-positive resistance and duplicate names.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<DeviceId, NetlistError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                reason: format!("resistance must be finite and > 0, got {ohms}"),
            });
        }
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Resistor { a, b, ohms },
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    /// Rejects negative or non-finite capacitance and duplicate names.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<DeviceId, NetlistError> {
        if !(farads.is_finite() && farads >= 0.0) {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                reason: format!("capacitance must be finite and >= 0, got {farads}"),
            });
        }
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Capacitor { a, b, farads },
        })
    }

    /// Adds an independent voltage source (`pos` positive).
    ///
    /// # Errors
    /// Rejects duplicate names.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> Result<DeviceId, NetlistError> {
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Vsource { pos, neg, waveform },
        })
    }

    /// Adds an independent current source (positive value flows from `pos`
    /// through the source into `neg`).
    ///
    /// # Errors
    /// Rejects duplicate names.
    pub fn add_isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> Result<DeviceId, NetlistError> {
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Isource { pos, neg, waveform },
        })
    }

    /// Adds a junction diode.
    ///
    /// # Errors
    /// Rejects non-positive saturation current and duplicate names.
    pub fn add_diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        params: DiodeParams,
    ) -> Result<DeviceId, NetlistError> {
        if !(params.is.is_finite() && params.is > 0.0) {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                reason: format!("diode Is must be finite and > 0, got {}", params.is),
            });
        }
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Diode {
                anode,
                cathode,
                params,
            },
        })
    }

    /// Adds a four-terminal MOSFET.
    ///
    /// # Errors
    /// Rejects non-positive `W`, `L` or `kp` and duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        ty: MosType,
        params: MosfetParams,
    ) -> Result<DeviceId, NetlistError> {
        if !(params.w > 0.0 && params.l > 0.0 && params.kp > 0.0) {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                reason: "W, L and kp must all be > 0".to_string(),
            });
        }
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Mosfet {
                d,
                g,
                s,
                b,
                ty,
                params,
            },
        })
    }

    /// Adds a voltage-controlled switch.
    ///
    /// # Errors
    /// Rejects `v_on <= v_off`, non-positive resistances, and duplicates.
    #[allow(clippy::too_many_arguments)]
    pub fn add_switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        cp: NodeId,
        cn: NodeId,
        params: SwitchParams,
    ) -> Result<DeviceId, NetlistError> {
        if params.v_on <= params.v_off || params.r_on <= 0.0 || params.r_off <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                device: name.to_string(),
                reason: "require v_on > v_off and positive resistances".to_string(),
            });
        }
        self.add_device(Device {
            name: name.to_string(),
            kind: DeviceKind::Switch {
                a,
                b,
                cp,
                cn,
                params,
            },
        })
    }

    /// Removes a device by name, preserving the ids of other devices is
    /// *not* guaranteed — ids issued before a removal must not be reused.
    ///
    /// # Errors
    /// Returns [`NetlistError::UnknownDevice`] if absent.
    pub fn remove_device(&mut self, name: &str) -> Result<Device, NetlistError> {
        let id = self
            .device_index
            .remove(name)
            .ok_or_else(|| NetlistError::UnknownDevice(name.to_string()))?;
        let device = self.devices.remove(id.index());
        // Reindex devices after the removed one.
        for (i, d) in self.devices.iter().enumerate().skip(id.index()) {
            self.device_index.insert(d.name.clone(), DeviceId(i as u32));
        }
        Ok(device)
    }

    /// Instantiates a subcircuit template into this netlist.
    ///
    /// Every node of `template` whose name appears in `ports` is connected
    /// to the mapped parent node; every other template node becomes a fresh
    /// parent node named `{prefix}.{node}`. Devices are copied with names
    /// `{prefix}.{device}`.
    ///
    /// Ground in the template is always ground in the parent.
    ///
    /// # Errors
    /// Returns [`NetlistError::UnmappedPort`] if `ports` names a node that
    /// does not exist in the template, or [`NetlistError::DuplicateDevice`]
    /// if a prefixed device name collides.
    pub fn instantiate(
        &mut self,
        template: &Netlist,
        prefix: &str,
        ports: PortMap<'_>,
    ) -> Result<(), NetlistError> {
        // Validate the port map first.
        for (port, _) in ports {
            if template.find_node(port).is_none() {
                return Err(NetlistError::UnmappedPort((*port).to_string()));
            }
        }
        // Build template-node -> parent-node map.
        let mut map: Vec<Option<NodeId>> = vec![None; template.node_count()];
        map[0] = Some(Self::GROUND);
        for (port, parent_node) in ports {
            let t = template.find_node(port).expect("validated above");
            map[t.index()] = Some(*parent_node);
        }
        for (i, tname) in template.node_names.iter().enumerate() {
            if map[i].is_none() {
                map[i] = Some(self.node(&format!("{prefix}.{tname}")));
            }
        }
        for (_, dev) in template.devices() {
            let mut copy = dev.clone();
            copy.name = format!("{prefix}.{}", dev.name);
            for t in copy.terminals_mut() {
                *t = map[t.index()].expect("all template nodes mapped");
            }
            self.add_device(copy)?;
        }
        Ok(())
    }

    /// All devices touching `node`, as `(DeviceId, terminal index)` pairs.
    pub fn connections(&self, node: NodeId) -> Vec<(DeviceId, usize)> {
        let mut out = Vec::new();
        for (id, dev) in self.devices() {
            for (ti, t) in dev.terminals().iter().enumerate() {
                if *t == node {
                    out.push((id, ti));
                }
            }
        }
        out
    }
}

impl fmt::Display for Netlist {
    /// SPICE-card-like rendering, one device per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "* netlist {}", self.name)?;
        for (_, dev) in self.devices() {
            let nodes: Vec<&str> = dev.terminals().iter().map(|n| self.node_name(*n)).collect();
            match &dev.kind {
                DeviceKind::Resistor { ohms, .. } => {
                    writeln!(f, "R {} {} {ohms}", dev.name, nodes.join(" "))?
                }
                DeviceKind::Capacitor { farads, .. } => {
                    writeln!(f, "C {} {} {farads}", dev.name, nodes.join(" "))?
                }
                DeviceKind::Vsource { waveform, .. } => {
                    writeln!(f, "V {} {} {waveform:?}", dev.name, nodes.join(" "))?
                }
                DeviceKind::Isource { waveform, .. } => {
                    writeln!(f, "I {} {} {waveform:?}", dev.name, nodes.join(" "))?
                }
                DeviceKind::Diode { params, .. } => {
                    writeln!(f, "D {} {} is={}", dev.name, nodes.join(" "), params.is)?
                }
                DeviceKind::Mosfet { ty, params, .. } => writeln!(
                    f,
                    "M {} {} {ty} w={} l={}",
                    dev.name,
                    nodes.join(" "),
                    params.w,
                    params.l
                )?,
                DeviceKind::Switch { params, .. } => writeln!(
                    f,
                    "S {} {} ron={} roff={}",
                    dev.name,
                    nodes.join(" "),
                    params.r_on,
                    params.r_off
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Netlist {
        let mut nl = Netlist::new("rc");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        nl.add_resistor("R1", a, b, 1e3).unwrap();
        nl.add_capacitor("C1", b, Netlist::GROUND, 1e-12).unwrap();
        nl
    }

    #[test]
    fn content_digest_tracks_structure_not_name() {
        let a = rc();
        let mut b = rc();
        assert_eq!(a.content_digest(), b.content_digest());
        // The netlist name is excluded: renamed copies share a digest.
        let mut renamed = rc();
        renamed.name = "other".to_string();
        assert_eq!(a.content_digest(), renamed.content_digest());
        // A parameter change, however small, changes the digest.
        if let DeviceKind::Resistor { ohms, .. } = &mut b.device_mut("R1").unwrap().kind {
            *ohms += 1e-9;
        }
        assert_ne!(a.content_digest(), b.content_digest());
        // A structural change (extra node + device) changes the digest.
        let mut c = rc();
        let extra = c.node("extra");
        c.add_resistor("Rx", extra, Netlist::GROUND, 1.0).unwrap();
        assert_ne!(a.content_digest(), c.content_digest());
    }

    #[test]
    fn ground_aliases() {
        let mut nl = Netlist::new("t");
        assert_eq!(nl.node("0"), Netlist::GROUND);
        assert_eq!(nl.node("gnd"), Netlist::GROUND);
        assert_eq!(nl.find_node("gnd"), Some(Netlist::GROUND));
    }

    #[test]
    fn node_lookup_is_idempotent() {
        let mut nl = Netlist::new("t");
        let a1 = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a1, a2);
        assert_eq!(nl.node_count(), 2);
        assert_eq!(nl.node_name(a1), "a");
    }

    #[test]
    fn fresh_node_is_unique() {
        let mut nl = Netlist::new("t");
        let f1 = nl.fresh_node("split");
        let f2 = nl.fresh_node("split");
        assert_ne!(f1, f2);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut nl = rc();
        let a = nl.node("a");
        let err = nl.add_resistor("R1", a, Netlist::GROUND, 5.0).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateDevice("R1".into()));
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        assert!(nl.add_resistor("R1", a, Netlist::GROUND, 0.0).is_err());
        assert!(nl.add_resistor("R2", a, Netlist::GROUND, f64::NAN).is_err());
        assert!(nl.add_resistor("R3", a, Netlist::GROUND, -1.0).is_err());
    }

    #[test]
    fn device_lookup() {
        let nl = rc();
        assert!(nl.device("R1").is_some());
        assert!(nl.device("R9").is_none());
        let id = nl.device_id("C1").unwrap();
        assert_eq!(nl.device_by_id(id).unwrap().name, "C1");
    }

    #[test]
    fn remove_device_reindexes() {
        let mut nl = rc();
        nl.remove_device("R1").unwrap();
        assert_eq!(nl.device_count(), 2);
        // C1 must still be addressable by its (re-indexed) id.
        let id = nl.device_id("C1").unwrap();
        assert_eq!(nl.device_by_id(id).unwrap().name, "C1");
        assert!(nl.remove_device("R1").is_err());
    }

    #[test]
    fn connections_lists_terminals() {
        let nl = rc();
        let b = nl.find_node("b").unwrap();
        let conns = nl.connections(b);
        assert_eq!(conns.len(), 2); // R1.b and C1.a
    }

    #[test]
    fn instantiate_maps_ports_and_prefixes_internals() {
        let mut sub = Netlist::new("half");
        let p = sub.node("in");
        let q = sub.node("out");
        let m = sub.node("mid");
        sub.add_resistor("Ra", p, m, 10.0).unwrap();
        sub.add_resistor("Rb", m, q, 10.0).unwrap();

        let mut top = Netlist::new("top");
        let x = top.node("x");
        let y = top.node("y");
        top.instantiate(&sub, "u1", &[("in", x), ("out", y)])
            .unwrap();
        top.instantiate(&sub, "u2", &[("in", y), ("out", Netlist::GROUND)])
            .unwrap();

        assert_eq!(top.device_count(), 4);
        assert!(top.device("u1.Ra").is_some());
        assert!(top.find_node("u1.mid").is_some());
        assert!(top.find_node("u2.mid").is_some());
        // Port nodes are shared, not duplicated.
        assert!(top.find_node("u1.in").is_none());
    }

    #[test]
    fn instantiate_rejects_unknown_port() {
        let sub = Netlist::new("empty");
        let mut top = Netlist::new("top");
        let x = top.node("x");
        let err = top.instantiate(&sub, "u1", &[("nope", x)]).unwrap_err();
        assert_eq!(err, NetlistError::UnmappedPort("nope".into()));
    }

    #[test]
    fn display_contains_devices() {
        let nl = rc();
        let s = nl.to_string();
        assert!(s.contains("R R1"));
        assert!(s.contains("C C1"));
    }
}
