//! Time-domain source waveforms.

/// The time-domain value of an independent voltage or current source.
///
/// Waveforms are evaluated with [`Waveform::value_at`]; a DC operating-point
/// analysis uses [`Waveform::dc_value`], which is the value at `t = 0` for
/// every variant except [`Waveform::Sin`], whose DC value is its offset.
///
/// ```
/// use dotm_netlist::Waveform;
/// let clk = Waveform::pulse(0.0, 5.0, 10e-9, 1e-9, 1e-9, 40e-9, 100e-9);
/// assert_eq!(clk.value_at(0.0), 0.0);
/// assert_eq!(clk.value_at(20e-9), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse (SPICE `PULSE`).
    Pulse {
        /// Initial (low) value.
        v0: f64,
        /// Pulsed (high) value.
        v1: f64,
        /// Delay before the first rising edge, in seconds.
        delay: f64,
        /// Rise time, in seconds.
        rise: f64,
        /// Fall time, in seconds.
        fall: f64,
        /// Pulse width (time spent at `v1` between ramps), in seconds.
        width: f64,
        /// Repetition period, in seconds (`0.0` means non-repeating).
        period: f64,
    },
    /// Piece-wise linear waveform: `(time, value)` pairs sorted by time.
    /// Before the first point the first value holds; after the last point
    /// the last value holds.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + amplitude * sin(2π f (t − delay))` for `t ≥ delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

impl Waveform {
    /// Convenience constructor for a DC source.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// Convenience constructor for a [`Waveform::Pulse`].
    #[allow(clippy::too_many_arguments)]
    pub fn pulse(
        v0: f64,
        v1: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Convenience constructor for a triangular ramp from `lo` to `hi` and
    /// back, repeating with the given `period` — the stimulus of the paper's
    /// missing-code test.
    pub fn triangle(lo: f64, hi: f64, period: f64) -> Self {
        let half = period / 2.0;
        // Rise and fall each take half a period; zero flat time.
        Waveform::Pulse {
            v0: lo,
            v1: hi,
            delay: 0.0,
            rise: half,
            fall: half,
            width: 0.0,
            period,
        }
    }

    /// Value of the waveform at time `t` (seconds, `t ≥ 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tl = t - delay;
                if tl < 0.0 {
                    return *v0;
                }
                if *period > 0.0 {
                    tl %= period;
                }
                if tl < *rise {
                    if *rise <= 0.0 {
                        return *v1;
                    }
                    v0 + (v1 - v0) * (tl / rise)
                } else if tl < rise + width {
                    *v1
                } else if tl < rise + width + fall {
                    if *fall <= 0.0 {
                        return *v0;
                    }
                    v1 + (v0 - v1) * ((tl - rise - width) / fall)
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                // Linear search is fine: PWL tables in this workspace are short.
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                last.1
            }
            Waveform::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// Value used during DC operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sin { offset, .. } => *offset,
            other => other.value_at(0.0),
        }
    }

    /// Returns a copy of this waveform scaled by `k` (both levels of a pulse,
    /// every PWL value, offset and amplitude of a sinusoid).
    pub fn scaled(&self, k: f64) -> Self {
        match self {
            Waveform::Dc(v) => Waveform::Dc(v * k),
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => Waveform::Pulse {
                v0: v0 * k,
                v1: v1 * k,
                delay: *delay,
                rise: *rise,
                fall: *fall,
                width: *width,
                period: *period,
            },
            Waveform::Pwl(points) => {
                Waveform::Pwl(points.iter().map(|&(t, v)| (t, v * k)).collect())
            }
            Waveform::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => Waveform::Sin {
                offset: offset * k,
                amplitude: amplitude * k,
                freq: *freq,
                delay: *delay,
            },
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(3.3);
        assert_eq!(w.value_at(0.0), 3.3);
        assert_eq!(w.value_at(1.0), 3.3);
        assert_eq!(w.dc_value(), 3.3);
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 10.0);
        assert_eq!(w.value_at(0.5), 0.0); // before delay
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12); // mid rise
        assert_eq!(w.value_at(2.5), 1.0); // flat top
        assert!((w.value_at(4.5) - 0.5).abs() < 1e-12); // mid fall
        assert_eq!(w.value_at(6.0), 0.0); // flat bottom
        assert_eq!(w.value_at(11.5), 1.0 / 2.0); // periodic repeat of mid rise
    }

    #[test]
    fn pulse_zero_rise_is_step() {
        let w = Waveform::pulse(0.0, 5.0, 0.0, 0.0, 0.0, 1.0, 2.0);
        assert_eq!(w.value_at(0.0), 5.0);
        assert_eq!(w.value_at(1.5), 0.0);
    }

    #[test]
    fn triangle_sweeps_full_range() {
        let w = Waveform::triangle(1.0, 3.0, 4.0);
        assert_eq!(w.value_at(0.0), 1.0);
        assert!((w.value_at(1.0) - 2.0).abs() < 1e-12);
        assert!((w.value_at(2.0) - 3.0).abs() < 1e-9);
        assert!((w.value_at(3.0) - 2.0).abs() < 1e-12);
        assert!((w.value_at(4.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(3.0), 10.0);
    }

    #[test]
    fn sin_dc_value_is_offset() {
        let w = Waveform::Sin {
            offset: 2.5,
            amplitude: 1.0,
            freq: 1e6,
            delay: 0.0,
        };
        assert_eq!(w.dc_value(), 2.5);
        assert!((w.value_at(0.25e-6) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn scaled_scales_values_not_times() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 10.0).scaled(2.0);
        assert_eq!(w.value_at(2.5), 2.0);
        assert_eq!(w.value_at(0.5), 0.0);
        let p = Waveform::Pwl(vec![(0.0, 1.0), (1.0, -1.0)]).scaled(3.0);
        assert_eq!(p.value_at(0.0), 3.0);
        assert_eq!(p.value_at(1.0), -3.0);
    }
}
