//! Structural fault-editing operations.
//!
//! The defect-oriented methodology turns layout defects into circuit edits:
//! a bridging defect becomes a resistor between two nets, an open becomes a
//! node split, a gate-oxide pinhole becomes a resistor from gate to channel,
//! and so on. This module provides those edits as validated operations on a
//! [`Netlist`].

use crate::device::{Device, DeviceId, DeviceKind, MosType, MosfetParams};
use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::node::NodeId;

/// A reference to one terminal of one device: the unit of rewiring used by
/// [`Netlist::split_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TerminalRef {
    /// The device whose terminal is referenced.
    pub device: DeviceId,
    /// Index into [`Device::terminals`].
    pub terminal: usize,
}

impl Netlist {
    /// Inserts a bridging resistor (`ohms`) between `a` and `b`, optionally
    /// with a parallel capacitance — the paper's model for shorts
    /// (catastrophic: pure resistance; non-catastrophic "near-miss":
    /// 500 Ω ∥ 1 fF).
    ///
    /// Returns the id of the inserted resistor.
    ///
    /// # Errors
    /// Propagates name collisions and parameter validation from
    /// [`Netlist::add_resistor`] / [`Netlist::add_capacitor`].
    pub fn insert_bridge(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
        farads: Option<f64>,
    ) -> Result<DeviceId, NetlistError> {
        let rid = self.add_resistor(name, a, b, ohms)?;
        if let Some(c) = farads {
            if c > 0.0 {
                self.add_capacitor(&format!("{name}.c"), a, b, c)?;
            }
        }
        Ok(rid)
    }

    /// Splits `node` in two, moving the listed terminals to a freshly created
    /// node — the paper's model for an open: "splitting the affected node in
    /// two parts". Returns the new node.
    ///
    /// The caller decides the partition (in the defect simulator it comes
    /// from the geometric connectivity of the cut net). Terminals not listed
    /// stay on the original node.
    ///
    /// # Errors
    /// Returns [`NetlistError::InvalidEdit`] if any listed terminal does not
    /// currently connect to `node`, or if the partition is degenerate (no
    /// terminals moved, which would be a no-op open).
    pub fn split_node(
        &mut self,
        node: NodeId,
        move_terminals: &[TerminalRef],
    ) -> Result<NodeId, NetlistError> {
        if move_terminals.is_empty() {
            return Err(NetlistError::InvalidEdit(
                "open with empty moved-terminal set is a no-op".to_string(),
            ));
        }
        // Validate first so the edit is atomic.
        for tr in move_terminals {
            let dev = self
                .device_by_id(tr.device)
                .ok_or(NetlistError::InvalidDeviceId(tr.device))?;
            let terms = dev.terminals();
            match terms.get(tr.terminal) {
                Some(&n) if n == node => {}
                Some(_) => {
                    return Err(NetlistError::InvalidEdit(format!(
                        "terminal {} of `{}` is not on the split node",
                        tr.terminal, dev.name
                    )))
                }
                None => {
                    return Err(NetlistError::InvalidEdit(format!(
                        "device `{}` has no terminal {}",
                        dev.name, tr.terminal
                    )))
                }
            }
        }
        let stem = format!("{}~open", self.node_name(node));
        let fresh = self.fresh_node(&stem);
        for tr in move_terminals {
            let dev = self.device_by_id_mut(tr.device).expect("validated above");
            *dev.terminals_mut()[tr.terminal] = fresh;
        }
        Ok(fresh)
    }

    /// Shorts the drain and source of the named MOSFET with a resistance —
    /// the paper's "shorted device" model.
    ///
    /// # Errors
    /// [`NetlistError::UnknownDevice`] if absent,
    /// [`NetlistError::InvalidEdit`] if the device is not a MOSFET.
    pub fn short_device_channel(
        &mut self,
        device: &str,
        ohms: f64,
    ) -> Result<DeviceId, NetlistError> {
        let (d, s) = match self.device(device) {
            Some(Device {
                kind: DeviceKind::Mosfet { d, s, .. },
                ..
            }) => (*d, *s),
            Some(_) => {
                return Err(NetlistError::InvalidEdit(format!(
                    "`{device}` is not a MOSFET"
                )))
            }
            None => return Err(NetlistError::UnknownDevice(device.to_string())),
        };
        self.add_resistor(&format!("{device}.dshort"), d, s, ohms)
    }

    /// Attaches a parasitic minimum-size MOSFET — the paper's "new device"
    /// model for defects that create an unintended transistor.
    ///
    /// # Errors
    /// Propagates duplicate-name errors.
    #[allow(clippy::too_many_arguments)]
    pub fn attach_parasitic_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        ty: MosType,
    ) -> Result<DeviceId, NetlistError> {
        let params = MosfetParams::default_for(ty).sized(1.0e-6, 0.8e-6);
        self.add_mosfet(name, d, g, s, b, ty, params)
    }

    /// Multiplies the value of the named resistor by `factor` — used for
    /// parametric (size-change) faults and process Monte-Carlo.
    ///
    /// # Errors
    /// [`NetlistError::UnknownDevice`] if absent,
    /// [`NetlistError::InvalidEdit`] if not a resistor, or
    /// [`NetlistError::InvalidParameter`] if the scaled value is invalid.
    pub fn scale_resistor(&mut self, device: &str, factor: f64) -> Result<(), NetlistError> {
        let dev = self
            .device_mut(device)
            .ok_or_else(|| NetlistError::UnknownDevice(device.to_string()))?;
        match &mut dev.kind {
            DeviceKind::Resistor { ohms, .. } => {
                let next = *ohms * factor;
                if !(next.is_finite() && next > 0.0) {
                    return Err(NetlistError::InvalidParameter {
                        device: device.to_string(),
                        reason: format!("scaled resistance {next} invalid"),
                    });
                }
                *ohms = next;
                Ok(())
            }
            _ => Err(NetlistError::InvalidEdit(format!(
                "`{device}` is not a resistor"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    fn chain() -> Netlist {
        // V1 -> a -R1-> b -R2-> gnd, plus C1 on b.
        let mut nl = Netlist::new("chain");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        nl.add_resistor("R1", a, b, 100.0).unwrap();
        nl.add_resistor("R2", b, Netlist::GROUND, 100.0).unwrap();
        nl.add_capacitor("C1", b, Netlist::GROUND, 1e-12).unwrap();
        nl
    }

    #[test]
    fn bridge_inserts_resistor_and_optional_cap() {
        let mut nl = chain();
        let a = nl.find_node("a").unwrap();
        let b = nl.find_node("b").unwrap();
        nl.insert_bridge("Fshort", a, b, 0.2, None).unwrap();
        assert!(nl.device("Fshort").is_some());
        assert!(nl.device("Fshort.c").is_none());
        nl.insert_bridge("Fnear", a, b, 500.0, Some(1e-15)).unwrap();
        assert!(nl.device("Fnear.c").is_some());
    }

    #[test]
    fn split_node_moves_selected_terminals() {
        let mut nl = chain();
        let b = nl.find_node("b").unwrap();
        // Move R2's terminal off node b; R1 and C1 stay.
        let r2 = nl.device_id("R2").unwrap();
        let fresh = nl
            .split_node(
                b,
                &[TerminalRef {
                    device: r2,
                    terminal: 0,
                }],
            )
            .unwrap();
        assert_ne!(fresh, b);
        let r2dev = nl.device("R2").unwrap();
        assert_eq!(r2dev.terminals()[0], fresh);
        let r1dev = nl.device("R1").unwrap();
        assert_eq!(r1dev.terminals()[1], b);
    }

    #[test]
    fn split_node_validates_partition() {
        let mut nl = chain();
        let b = nl.find_node("b").unwrap();
        assert!(nl.split_node(b, &[]).is_err());
        let v1 = nl.device_id("V1").unwrap();
        // V1 does not touch node b.
        let err = nl
            .split_node(
                b,
                &[TerminalRef {
                    device: v1,
                    terminal: 0,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, NetlistError::InvalidEdit(_)));
    }

    #[test]
    fn short_device_channel_requires_mosfet() {
        let mut nl = chain();
        assert!(nl.short_device_channel("R1", 10.0).is_err());
        let a = nl.find_node("a").unwrap();
        let b = nl.find_node("b").unwrap();
        nl.add_mosfet(
            "M1",
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            MosfetParams::nmos_default(),
        )
        .unwrap();
        nl.short_device_channel("M1", 50.0).unwrap();
        let sh = nl.device("M1.dshort").unwrap();
        assert_eq!(sh.terminals(), vec![a, Netlist::GROUND]);
    }

    #[test]
    fn parasitic_mosfet_is_min_size() {
        let mut nl = chain();
        let a = nl.find_node("a").unwrap();
        let b = nl.find_node("b").unwrap();
        nl.attach_parasitic_mosfet(
            "Fnew",
            a,
            b,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
        )
        .unwrap();
        match &nl.device("Fnew").unwrap().kind {
            DeviceKind::Mosfet { params, .. } => {
                assert!(params.w <= 1.1e-6);
            }
            other => panic!("expected mosfet, got {other:?}"),
        }
    }

    #[test]
    fn scale_resistor_validates() {
        let mut nl = chain();
        nl.scale_resistor("R1", 2.0).unwrap();
        match &nl.device("R1").unwrap().kind {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 200.0),
            _ => unreachable!(),
        }
        assert!(nl.scale_resistor("C1", 2.0).is_err());
        assert!(nl.scale_resistor("R1", 0.0).is_err());
        assert!(nl.scale_resistor("nope", 2.0).is_err());
    }
}
