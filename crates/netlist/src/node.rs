//! Node identifiers.

use std::fmt;

/// Index of a circuit node within a [`crate::Netlist`].
///
/// Node `0` is always the ground/reference node, available as
/// [`crate::Netlist::GROUND`]. `NodeId`s are only meaningful relative to the
/// netlist that issued them.
///
/// ```
/// use dotm_netlist::Netlist;
/// let mut nl = Netlist::new("x");
/// let a = nl.node("a");
/// assert_ne!(a, Netlist::GROUND);
/// assert_eq!(nl.node("a"), a); // idempotent lookup
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node (0 is ground).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    ///
    /// Prefer obtaining ids from [`crate::Netlist::node`]; this constructor
    /// exists for data-driven tooling (e.g. reading back saved fault lists).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// `true` if this is the ground/reference node.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_index_zero() {
        assert!(NodeId(0).is_ground());
        assert!(!NodeId(1).is_ground());
        assert_eq!(NodeId::from_index(7).index(), 7);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
