//! Circuit devices.

use crate::node::NodeId;
use crate::waveform::Waveform;
use std::fmt;

/// Index of a device within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

impl DeviceId {
    /// Returns the raw index of this device.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `DeviceId` from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        DeviceId(index as u32)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl fmt::Display for MosType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosType::Nmos => write!(f, "nmos"),
            MosType::Pmos => write!(f, "pmos"),
        }
    }
}

/// Level-1 (Shichman–Hodges) MOSFET parameters.
///
/// Defaults model a generic 0.8 µm CMOS process of the paper's era. All
/// lengths are in metres, transconductance in A/V², capacitance density in
/// F/m².
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetParams {
    /// Drawn channel width (m).
    pub w: f64,
    /// Drawn channel length (m).
    pub l: f64,
    /// Zero-bias threshold voltage (V); positive for NMOS, negative for PMOS.
    pub vt0: f64,
    /// Process transconductance `µ·Cox` (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Body-effect coefficient (√V).
    pub gamma: f64,
    /// Surface potential `2φF` (V).
    pub phi: f64,
    /// Junction saturation (leakage) current of the drain/source diodes (A).
    pub is_leak: f64,
    /// Gate-oxide capacitance density (F/m²).
    pub cox: f64,
    /// Zero-bias drain/source junction capacitance per device (F).
    pub cj: f64,
}

impl MosfetParams {
    /// Default parameter set for an N-channel device in the reference
    /// 0.8 µm process.
    pub fn nmos_default() -> Self {
        MosfetParams {
            w: 4e-6,
            l: 0.8e-6,
            vt0: 0.75,
            kp: 100e-6,
            lambda: 0.05,
            gamma: 0.50,
            phi: 0.70,
            is_leak: 1e-15,
            cox: 2.3e-3, // 2.3 fF/µm²
            cj: 2e-15,
        }
    }

    /// Default parameter set for a P-channel device in the reference
    /// 0.8 µm process.
    pub fn pmos_default() -> Self {
        MosfetParams {
            w: 8e-6,
            l: 0.8e-6,
            vt0: -0.85,
            kp: 35e-6,
            lambda: 0.06,
            gamma: 0.45,
            phi: 0.70,
            is_leak: 1e-15,
            cox: 2.3e-3,
            cj: 2e-15,
        }
    }

    /// Default parameters for the given polarity.
    pub fn default_for(ty: MosType) -> Self {
        match ty {
            MosType::Nmos => Self::nmos_default(),
            MosType::Pmos => Self::pmos_default(),
        }
    }

    /// Returns the same parameters with a different `w`/`l`.
    pub fn sized(mut self, w: f64, l: f64) -> Self {
        self.w = w;
        self.l = l;
        self
    }

    /// Total gate-oxide capacitance `Cox·W·L` (F).
    pub fn gate_cap(&self) -> f64 {
        self.cox * self.w * self.l
    }
}

/// Junction diode parameters (ideal diode with series conductance handled by
/// the simulator's limiting).
#[derive(Debug, Clone, PartialEq)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub is: f64,
    /// Emission coefficient.
    pub n: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams { is: 1e-14, n: 1.0 }
    }
}

/// Voltage-controlled switch parameters. The switch conductance interpolates
/// smoothly (log-linearly) between `r_off` and `r_on` as the control voltage
/// crosses `[v_off, v_on]`, which keeps Newton–Raphson well behaved.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchParams {
    /// Control voltage at and above which the switch is fully on (V).
    pub v_on: f64,
    /// Control voltage at and below which the switch is fully off (V).
    pub v_off: f64,
    /// On resistance (Ω).
    pub r_on: f64,
    /// Off resistance (Ω).
    pub r_off: f64,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            v_on: 2.5,
            v_off: 2.0,
            r_on: 100.0,
            r_off: 1e9,
        }
    }
}

/// The electrical kind of a [`Device`], with its terminal connections.
///
/// Terminal fields are public: a netlist is a passive data structure in the
/// C-struct spirit, and the fault-injection machinery in `dotm-faults`
/// rewires terminals directly.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be > 0).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be ≥ 0).
        farads: f64,
    },
    /// Independent voltage source; `pos` is the positive terminal.
    Vsource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Independent current source; a positive value drives current *out of*
    /// `pos`, through the source, *into* `neg` — i.e. it pulls `pos` down
    /// and pushes `neg` up, matching SPICE convention.
    Isource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Junction diode conducting from `anode` to `cathode`.
    Diode {
        /// Anode terminal.
        anode: NodeId,
        /// Cathode terminal.
        cathode: NodeId,
        /// Diode model parameters.
        params: DiodeParams,
    },
    /// Four-terminal MOSFET.
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Bulk (body) terminal.
        b: NodeId,
        /// Channel polarity.
        ty: MosType,
        /// Model parameters.
        params: MosfetParams,
    },
    /// Voltage-controlled switch between `a` and `b`, controlled by
    /// `v(cp) − v(cn)`.
    Switch {
        /// First switched terminal.
        a: NodeId,
        /// Second switched terminal.
        b: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Switch parameters.
        params: SwitchParams,
    },
}

impl DeviceKind {
    /// Short lowercase tag for the kind (used in debug output and fault ids).
    pub fn tag(&self) -> &'static str {
        match self {
            DeviceKind::Resistor { .. } => "r",
            DeviceKind::Capacitor { .. } => "c",
            DeviceKind::Vsource { .. } => "v",
            DeviceKind::Isource { .. } => "i",
            DeviceKind::Diode { .. } => "d",
            DeviceKind::Mosfet { .. } => "m",
            DeviceKind::Switch { .. } => "s",
        }
    }

    /// Names of the terminals, in the order returned by
    /// [`Device::terminals`].
    pub fn terminal_names(&self) -> &'static [&'static str] {
        match self {
            DeviceKind::Resistor { .. } | DeviceKind::Capacitor { .. } => &["a", "b"],
            DeviceKind::Vsource { .. } | DeviceKind::Isource { .. } => &["pos", "neg"],
            DeviceKind::Diode { .. } => &["anode", "cathode"],
            DeviceKind::Mosfet { .. } => &["d", "g", "s", "b"],
            DeviceKind::Switch { .. } => &["a", "b", "cp", "cn"],
        }
    }
}

/// A named device instance in a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Instance name, unique within its netlist.
    pub name: String,
    /// Electrical kind and connections.
    pub kind: DeviceKind,
}

impl Device {
    /// The nodes this device connects to, in terminal order
    /// (see [`DeviceKind::terminal_names`]).
    pub fn terminals(&self) -> Vec<NodeId> {
        match &self.kind {
            DeviceKind::Resistor { a, b, .. } | DeviceKind::Capacitor { a, b, .. } => {
                vec![*a, *b]
            }
            DeviceKind::Vsource { pos, neg, .. } | DeviceKind::Isource { pos, neg, .. } => {
                vec![*pos, *neg]
            }
            DeviceKind::Diode { anode, cathode, .. } => vec![*anode, *cathode],
            DeviceKind::Mosfet { d, g, s, b, .. } => vec![*d, *g, *s, *b],
            DeviceKind::Switch { a, b, cp, cn, .. } => vec![*a, *b, *cp, *cn],
        }
    }

    /// Mutable references to the terminal nodes, in terminal order.
    pub fn terminals_mut(&mut self) -> Vec<&mut NodeId> {
        match &mut self.kind {
            DeviceKind::Resistor { a, b, .. } | DeviceKind::Capacitor { a, b, .. } => {
                vec![a, b]
            }
            DeviceKind::Vsource { pos, neg, .. } | DeviceKind::Isource { pos, neg, .. } => {
                vec![pos, neg]
            }
            DeviceKind::Diode { anode, cathode, .. } => vec![anode, cathode],
            DeviceKind::Mosfet { d, g, s, b, .. } => vec![d, g, s, b],
            DeviceKind::Switch { a, b, cp, cn, .. } => vec![a, b, cp, cn],
        }
    }

    /// `true` if any terminal connects to `node`.
    pub fn touches(&self, node: NodeId) -> bool {
        self.terminals().contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_order_matches_names() {
        let dev = Device {
            name: "m1".into(),
            kind: DeviceKind::Mosfet {
                d: NodeId(1),
                g: NodeId(2),
                s: NodeId(3),
                b: NodeId(0),
                ty: MosType::Nmos,
                params: MosfetParams::nmos_default(),
            },
        };
        assert_eq!(dev.kind.terminal_names(), &["d", "g", "s", "b"]);
        assert_eq!(
            dev.terminals(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(0)]
        );
        assert!(dev.touches(NodeId(2)));
        assert!(!dev.touches(NodeId(9)));
    }

    #[test]
    fn terminals_mut_rewires() {
        let mut dev = Device {
            name: "r1".into(),
            kind: DeviceKind::Resistor {
                a: NodeId(1),
                b: NodeId(2),
                ohms: 10.0,
            },
        };
        *dev.terminals_mut()[1] = NodeId(5);
        assert_eq!(dev.terminals(), vec![NodeId(1), NodeId(5)]);
    }

    #[test]
    fn default_params_are_plausible() {
        let n = MosfetParams::nmos_default();
        assert!(n.vt0 > 0.0 && n.kp > 0.0);
        let p = MosfetParams::pmos_default();
        assert!(p.vt0 < 0.0);
        // gate cap of a 4µm/0.8µm device is a few fF
        let cg = n.gate_cap();
        assert!(cg > 1e-15 && cg < 1e-13, "cg = {cg}");
    }

    #[test]
    fn sized_overrides_geometry() {
        let p = MosfetParams::nmos_default().sized(10e-6, 1e-6);
        assert_eq!(p.w, 10e-6);
        assert_eq!(p.l, 1e-6);
    }
}
