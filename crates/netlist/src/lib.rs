//! # dotm-netlist — circuit netlists for defect-oriented test
//!
//! This crate provides the circuit representation shared by the whole DOTM
//! workspace: a flat, index-addressed netlist of analog devices with named
//! nodes, hierarchical instantiation of subcircuit templates, and — because
//! this is a *test* library — the fault-editing operations the
//! defect-oriented methodology needs (bridge insertion, node splitting for
//! opens, parasitic device attachment, device shorting).
//!
//! The representation is deliberately simple and owned: a [`Netlist`] is a
//! `Vec` of [`Device`]s over a `Vec` of nodes. Simulation semantics
//! (stamping, model evaluation) live in `dotm-sim`; defect semantics live in
//! `dotm-defects` / `dotm-faults`. This crate is pure data plus structural
//! operations.
//!
//! ## Example
//!
//! ```
//! use dotm_netlist::{Netlist, Waveform};
//!
//! let mut nl = Netlist::new("divider");
//! let vin = nl.node("vin");
//! let mid = nl.node("mid");
//! let gnd = Netlist::GROUND;
//! nl.add_vsource("V1", vin, gnd, Waveform::dc(5.0));
//! nl.add_resistor("R1", vin, mid, 1_000.0);
//! nl.add_resistor("R2", mid, gnd, 1_000.0);
//! assert_eq!(nl.device_count(), 3);
//! assert_eq!(nl.node_count(), 3); // ground + vin + mid
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod edit;
mod error;
mod netlist;
mod node;
mod parse;
mod waveform;

pub use device::{Device, DeviceId, DeviceKind, DiodeParams, MosType, MosfetParams, SwitchParams};
pub use edit::TerminalRef;
pub use error::NetlistError;
pub use netlist::{Netlist, PortMap};
pub use node::NodeId;
pub use parse::{parse_spice, parse_value, write_spice, ParseError};
pub use waveform::Waveform;
