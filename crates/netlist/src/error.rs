//! Netlist error type.

use crate::{DeviceId, NodeId};
use std::fmt;

/// Errors produced by netlist construction and editing.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A device with the given name already exists.
    DuplicateDevice(String),
    /// No device with the given name exists.
    UnknownDevice(String),
    /// A device id is out of range for this netlist.
    InvalidDeviceId(DeviceId),
    /// A node id is out of range for this netlist.
    InvalidNodeId(NodeId),
    /// A device parameter was invalid (e.g. non-positive resistance).
    InvalidParameter {
        /// Device name the parameter belongs to.
        device: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A subcircuit port was not mapped during instantiation.
    UnmappedPort(String),
    /// A structural edit was not applicable (e.g. splitting a node that the
    /// listed terminals do not connect to).
    InvalidEdit(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateDevice(name) => {
                write!(f, "duplicate device name `{name}`")
            }
            NetlistError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
            NetlistError::InvalidDeviceId(id) => write!(f, "invalid device id {id}"),
            NetlistError::InvalidNodeId(id) => write!(f, "invalid node id {id}"),
            NetlistError::InvalidParameter { device, reason } => {
                write!(f, "invalid parameter on `{device}`: {reason}")
            }
            NetlistError::UnmappedPort(port) => {
                write!(f, "subcircuit port `{port}` not mapped")
            }
            NetlistError::InvalidEdit(reason) => write!(f, "invalid edit: {reason}"),
        }
    }
}

impl std::error::Error for NetlistError {}
