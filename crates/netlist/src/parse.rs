//! A SPICE-card netlist parser.
//!
//! Supports the subset of classic SPICE decks this workspace's devices
//! cover, so external circuits can be dropped into the defect-oriented
//! flow without writing builder code:
//!
//! ```text
//! * comment lines and trailing $ comments
//! R1 a b 10k
//! C1 out 0 1.5p
//! V1 in 0 DC 5
//! VCK ck 0 PULSE(0 5 10n 2n 2n 38n 100n)
//! VS  s  0 SIN(2.5 0.5 1MEG)
//! VP  p  0 PWL(0 0 1u 5 2u 0)
//! I1 a 0 DC 1m
//! D1 a 0 IS=1e-14
//! M1 d g s b NMOS W=10u L=0.8u
//! .end
//! ```
//!
//! Node `0` (or `gnd`) is ground. Values accept engineering suffixes
//! (`f p n u m k meg g t`) with any following unit text ignored
//! (`10kohm` ≡ `10k`).

use crate::device::{DiodeParams, MosType, MosfetParams};
use crate::netlist::Netlist;
use crate::waveform::Waveform;
use std::fmt;

/// Errors produced by [`parse_spice`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses an engineering-notation value like `10k`, `1.5p`, `3meg`,
/// `100nF` (unit text after the suffix is ignored).
pub fn parse_value(text: &str) -> Option<f64> {
    let t = text.trim().to_ascii_lowercase();
    // Split the leading numeric part.
    let mut split = t.len();
    for (i, c) in t.char_indices() {
        if !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e') {
            split = i;
            break;
        }
        // 'e' is only numeric if followed by a digit or sign.
        if c == 'e' {
            let rest = &t[i + 1..];
            let ok = rest
                .chars()
                .next()
                .map(|n| n.is_ascii_digit() || n == '-' || n == '+')
                .unwrap_or(false);
            if !ok {
                split = i;
                break;
            }
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('f') => 1e-15,
            Some('p') => 1e-12,
            Some('n') => 1e-9,
            Some('u') => 1e-6,
            Some('m') => 1e-3,
            Some('k') => 1e3,
            Some('g') => 1e9,
            Some('t') => 1e12,
            // Unknown suffix letters are treated as unit text (e.g. "5v").
            Some(_) => 1.0,
        }
    };
    Some(base * mult)
}

/// Splits a card into tokens, honouring `(` `)` `=` as separators but
/// keeping function arguments together: `PULSE(0 5 1n)` becomes
/// `["pulse", "0", "5", "1n"]`.
fn tokenize(line: &str) -> Vec<String> {
    line.replace(['(', ')', ',', '='], " ")
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect()
}

/// Strips comments: whole-line `*`, trailing `$` or `;`.
fn strip_comment(line: &str) -> &str {
    let line = line.trim();
    if line.starts_with('*') {
        return "";
    }
    let cut = line.find(['$', ';']).unwrap_or(line.len());
    line[..cut].trim()
}

fn source_waveform(tokens: &[String], line: usize) -> Result<Waveform, ParseError> {
    if tokens.is_empty() {
        return Err(err(line, "source needs a value"));
    }
    let need = |n: usize| -> Result<Vec<f64>, ParseError> {
        if tokens.len() < n + 1 {
            return Err(err(line, format!("expected {n} numeric arguments")));
        }
        tokens[1..=n]
            .iter()
            .map(|t| parse_value(t).ok_or_else(|| err(line, format!("bad number `{t}`"))))
            .collect()
    };
    match tokens[0].as_str() {
        "dc" => {
            let v = need(1)?;
            Ok(Waveform::dc(v[0]))
        }
        "pulse" => {
            let v = need(7)?;
            Ok(Waveform::pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6]))
        }
        "sin" => {
            if tokens.len() < 4 {
                return Err(err(line, "SIN needs offset, amplitude, frequency"));
            }
            let v = need(3)?;
            Ok(Waveform::Sin {
                offset: v[0],
                amplitude: v[1],
                freq: v[2],
                delay: tokens.get(4).and_then(|t| parse_value(t)).unwrap_or(0.0),
            })
        }
        "pwl" => {
            let nums: Result<Vec<f64>, ParseError> = tokens[1..]
                .iter()
                .map(|t| parse_value(t).ok_or_else(|| err(line, format!("bad number `{t}`"))))
                .collect();
            let nums = nums?;
            if nums.len() < 2 || nums.len() % 2 != 0 {
                return Err(err(line, "PWL needs an even number of values"));
            }
            Ok(Waveform::Pwl(
                nums.chunks(2).map(|c| (c[0], c[1])).collect(),
            ))
        }
        // A bare number is a DC value.
        _ => {
            let v = parse_value(&tokens[0])
                .ok_or_else(|| err(line, format!("bad source value `{}`", tokens[0])))?;
            Ok(Waveform::dc(v))
        }
    }
}

/// Reads `key value` pairs (already `=`-stripped by the tokenizer) from
/// the tail of a card.
fn params(tokens: &[String], line: usize) -> Result<Vec<(String, f64)>, ParseError> {
    if tokens.len() % 2 != 0 {
        return Err(err(line, "dangling parameter name"));
    }
    tokens
        .chunks(2)
        .map(|c| {
            let v = parse_value(&c[1])
                .ok_or_else(|| err(line, format!("bad parameter value `{}`", c[1])))?;
            Ok((c[0].clone(), v))
        })
        .collect()
}

/// Parses a SPICE deck into a [`Netlist`]. The first line is treated as a
/// title if it does not parse as a card (classic SPICE convention) —
/// decks starting directly with cards work too.
///
/// ```
/// let deck = "divider\nV1 in 0 DC 5\nR1 in out 3k\nR2 out 0 2k\n.end";
/// let nl = dotm_netlist::parse_spice(deck)?;
/// assert_eq!(nl.name(), "divider");
/// assert_eq!(nl.device_count(), 3);
/// # Ok::<(), dotm_netlist::ParseError>(())
/// ```
///
/// # Errors
/// Returns the first [`ParseError`] with its 1-based line number.
pub fn parse_spice(text: &str) -> Result<Netlist, ParseError> {
    let mut nl = Netlist::new("spice");
    let mut first_card = true;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".end") {
            break;
        }
        if lower.starts_with('.') {
            // Other dot-cards (.tran, .options...) are analysis directives,
            // not structure; ignore them.
            continue;
        }
        let kind = lower.chars().next().unwrap();
        let is_card = matches!(kind, 'r' | 'c' | 'v' | 'i' | 'd' | 'm');
        let card_result = if is_card {
            parse_card(&mut nl, kind, line, lineno)
        } else {
            Err(err(lineno, format!("unsupported card `{line}`")))
        };
        match card_result {
            Ok(()) => {
                first_card = false;
            }
            Err(e) => {
                if first_card {
                    // Classic SPICE: the first line is the deck title.
                    first_card = false;
                    nl = Netlist::new(line.trim());
                } else {
                    return Err(e);
                }
            }
        }
    }
    Ok(nl)
}

/// Parses a single device card into the netlist.
fn parse_card(nl: &mut Netlist, kind: char, line: &str, lineno: usize) -> Result<(), ParseError> {
    {
        let tokens = tokenize(line);
        if tokens.len() < 3 {
            return Err(err(lineno, "card needs a name and nodes"));
        }
        let name = tokens[0].to_ascii_uppercase();
        match kind {
            'r' => {
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                let v = tokens
                    .get(3)
                    .and_then(|t| parse_value(t))
                    .ok_or_else(|| err(lineno, "resistor needs a value"))?;
                nl.add_resistor(&name, a, b, v)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            'c' => {
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                let v = tokens
                    .get(3)
                    .and_then(|t| parse_value(t))
                    .ok_or_else(|| err(lineno, "capacitor needs a value"))?;
                nl.add_capacitor(&name, a, b, v)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            'v' | 'i' => {
                let p = nl.node(&tokens[1]);
                let q = nl.node(&tokens[2]);
                let wf = source_waveform(&tokens[3..], lineno)?;
                if kind == 'v' {
                    nl.add_vsource(&name, p, q, wf)
                } else {
                    nl.add_isource(&name, p, q, wf)
                }
                .map_err(|e| err(lineno, e.to_string()))?;
            }
            'd' => {
                let a = nl.node(&tokens[1]);
                let c = nl.node(&tokens[2]);
                let mut dp = DiodeParams::default();
                for (k, v) in params(&tokens[3..], lineno)? {
                    match k.as_str() {
                        "is" => dp.is = v,
                        "n" => dp.n = v,
                        other => return Err(err(lineno, format!("unknown diode param `{other}`"))),
                    }
                }
                nl.add_diode(&name, a, c, dp)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            'm' => {
                if tokens.len() < 6 {
                    return Err(err(lineno, "MOSFET needs d g s b and a model"));
                }
                let d = nl.node(&tokens[1]);
                let g = nl.node(&tokens[2]);
                let s = nl.node(&tokens[3]);
                let b = nl.node(&tokens[4]);
                let ty = match tokens[5].as_str() {
                    "nmos" => MosType::Nmos,
                    "pmos" => MosType::Pmos,
                    other => return Err(err(lineno, format!("unknown model `{other}`"))),
                };
                let mut mp = MosfetParams::default_for(ty);
                for (k, v) in params(&tokens[6..], lineno)? {
                    match k.as_str() {
                        "w" => mp.w = v,
                        "l" => mp.l = v,
                        "vt0" | "vto" => mp.vt0 = v,
                        "kp" => mp.kp = v,
                        "lambda" => mp.lambda = v,
                        "gamma" => mp.gamma = v,
                        "phi" => mp.phi = v,
                        "is" => mp.is_leak = v,
                        other => {
                            return Err(err(lineno, format!("unknown MOSFET param `{other}`")))
                        }
                    }
                }
                nl.add_mosfet(&name, d, g, s, b, ty, mp)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            _ => unreachable!("is_card checked"),
        }
    }
    Ok(())
}

/// Serialises a netlist back to a SPICE deck that [`parse_spice`] accepts
/// (title line, one card per device, `.end`). Switches have no SPICE-card
/// equivalent here and are rejected.
///
/// ```
/// use dotm_netlist::{parse_spice, write_spice, Netlist, Waveform};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("cell");
/// let a = nl.node("a");
/// nl.add_resistor("R1", a, Netlist::GROUND, 10e3)?;
/// let deck = write_spice(&nl)?;
/// let back = parse_spice(&deck)?;
/// assert_eq!(back.device_count(), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns an error naming the first unsupported device.
pub fn write_spice(nl: &Netlist) -> Result<String, crate::NetlistError> {
    use crate::device::DeviceKind;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "{}", nl.name());
    let wf = |w: &Waveform| -> String {
        match w {
            Waveform::Dc(v) => format!("DC {v}"),
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => format!("PULSE({v0} {v1} {delay} {rise} {fall} {width} {period})"),
            Waveform::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => format!("SIN({offset} {amplitude} {freq} 0 {delay})"),
            Waveform::Pwl(pts) => {
                let body: Vec<String> = pts.iter().map(|(t, v)| format!("{t} {v}")).collect();
                format!("PWL({})", body.join(" "))
            }
        }
    };
    for (_, dev) in nl.devices() {
        let nodes: Vec<&str> = dev.terminals().iter().map(|n| nl.node_name(*n)).collect();
        match &dev.kind {
            DeviceKind::Resistor { ohms, .. } => {
                let _ = writeln!(out, "{} {} {} {}", dev.name, nodes[0], nodes[1], ohms);
            }
            DeviceKind::Capacitor { farads, .. } => {
                let _ = writeln!(out, "{} {} {} {}", dev.name, nodes[0], nodes[1], farads);
            }
            DeviceKind::Vsource { waveform, .. } | DeviceKind::Isource { waveform, .. } => {
                let _ = writeln!(
                    out,
                    "{} {} {} {}",
                    dev.name,
                    nodes[0],
                    nodes[1],
                    wf(waveform)
                );
            }
            DeviceKind::Diode { params, .. } => {
                let _ = writeln!(
                    out,
                    "{} {} {} IS={} N={}",
                    dev.name, nodes[0], nodes[1], params.is, params.n
                );
            }
            DeviceKind::Mosfet { ty, params, .. } => {
                let model = match ty {
                    crate::MosType::Nmos => "NMOS",
                    crate::MosType::Pmos => "PMOS",
                };
                let _ = writeln!(
                    out,
                    "{} {} {} {} {} {model} W={} L={} VT0={} KP={} LAMBDA={} GAMMA={} PHI={} IS={}",
                    dev.name,
                    nodes[0],
                    nodes[1],
                    nodes[2],
                    nodes[3],
                    params.w,
                    params.l,
                    params.vt0,
                    params.kp,
                    params.lambda,
                    params.gamma,
                    params.phi,
                    params.is_leak
                );
            }
            DeviceKind::Switch { .. } => {
                return Err(crate::NetlistError::InvalidEdit(format!(
                    "device `{}`: switches have no SPICE-card form",
                    dev.name
                )));
            }
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn values_with_suffixes() {
        assert_eq!(parse_value("10k"), Some(10e3));
        assert_eq!(parse_value("1.5p"), Some(1.5e-12));
        assert_eq!(parse_value("3meg"), Some(3e6));
        assert!((parse_value("100nF").unwrap() - 100e-9).abs() < 1e-18);
        assert_eq!(parse_value("-2.5"), Some(-2.5));
        assert_eq!(parse_value("1e-3"), Some(1e-3));
        assert_eq!(parse_value("2E6"), Some(2e6));
        assert_eq!(parse_value("5v"), Some(5.0));
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn parses_divider_with_title() {
        let deck = "\
my divider
* a comment
V1 in 0 DC 5
R1 in mid 3k   $ upper leg
R2 mid 0 2kohm
.end";
        let nl = parse_spice(deck).unwrap();
        assert_eq!(nl.name(), "my divider");
        assert_eq!(nl.device_count(), 3);
        match &nl.device("R2").unwrap().kind {
            DeviceKind::Resistor { ohms, .. } => assert_eq!(*ohms, 2e3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_sources() {
        let deck = "\
VDC a 0 DC 3.3
VPU b 0 PULSE(0 5 10n 2n 2n 38n 100n)
VSN c 0 SIN(2.5 0.5 1MEG)
VPW d 0 PWL(0 0 1u 5)
IB  e 0 1m";
        let nl = parse_spice(deck).unwrap();
        match &nl.device("VPU").unwrap().kind {
            DeviceKind::Vsource { waveform, .. } => {
                assert_eq!(waveform.value_at(30e-9), 5.0);
                assert_eq!(waveform.value_at(60e-9), 0.0);
            }
            other => panic!("{other:?}"),
        }
        match &nl.device("VSN").unwrap().kind {
            DeviceKind::Vsource { waveform, .. } => assert_eq!(waveform.dc_value(), 2.5),
            other => panic!("{other:?}"),
        }
        match &nl.device("IB").unwrap().kind {
            DeviceKind::Isource { waveform, .. } => assert_eq!(waveform.dc_value(), 1e-3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_mosfet_with_params() {
        let deck = "M1 d g s 0 NMOS W=10u L=0.8u VT0=0.7";
        let nl = parse_spice(deck).unwrap();
        match &nl.device("M1").unwrap().kind {
            DeviceKind::Mosfet { ty, params, .. } => {
                assert_eq!(*ty, MosType::Nmos);
                assert!((params.w - 10e-6).abs() < 1e-12);
                assert!((params.l - 0.8e-6).abs() < 1e-12);
                assert!((params.vt0 - 0.7).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ground_aliases_map_to_node_zero() {
        let deck = "R1 a 0 1k\nR2 a gnd 1k";
        let nl = parse_spice(deck).unwrap();
        let a = nl.find_node("a").unwrap();
        assert_eq!(nl.connections(Netlist::GROUND).len(), 2);
        assert_eq!(nl.connections(a).len(), 2);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let deck = "R1 a 0 1k\nQ1 c b e npn";
        let e = parse_spice(deck).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unsupported"));
        // A failing first line becomes the title (classic SPICE), so the
        // error checks use decks with an explicit title line.
        let e = parse_spice("title\nR1 a 0").unwrap_err();
        assert!(e.message.contains("value"), "{e}");
        let e = parse_spice("title\nM1 d g s 0 BJT").unwrap_err();
        assert!(e.message.contains("unknown model"), "{e}");
    }

    #[test]
    fn dot_cards_are_ignored_and_end_stops() {
        let deck = "R1 a 0 1k\n.tran 1n 100n\n.end\nR2 b 0 1k";
        let nl = parse_spice(deck).unwrap();
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    fn parsed_deck_simulates() {
        // Round-trip into the simulator: a diode clamp.
        let deck = "\
clamp
V1 in 0 DC 5
R1 in a 1k
D1 a 0 IS=1e-14";
        let nl = parse_spice(deck).unwrap();
        // Constructing a Simulator here would cycle the dependency; the
        // cross-crate round-trip lives in dotm-sim's tests. Structure only:
        assert_eq!(nl.device_count(), 3);
        assert!(nl.find_node("a").is_some());
    }
}
