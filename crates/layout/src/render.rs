//! SVG rendering of layouts — the debugging view for the procedural
//! generators and for defect post-mortems.

use crate::geom::Rect;
use crate::layer::Layer;
use crate::layout::Layout;
use std::fmt::Write;

/// Fill colour and opacity per layer, styled after classic magic/CIF
/// palettes.
fn style(layer: Layer) -> (&'static str, f64) {
    match layer {
        Layer::Nwell => ("#f2e9c9", 0.5),
        Layer::Active => ("#2e8b57", 0.75),
        Layer::Poly => ("#d04040", 0.75),
        Layer::Contact => ("#111111", 0.95),
        Layer::Metal1 => ("#3b6fd4", 0.65),
        Layer::Via => ("#444444", 0.95),
        Layer::Metal2 => ("#b26fd4", 0.55),
    }
}

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Pixels per micrometre.
    pub scale: f64,
    /// Extra defect markers to overlay: `(rect, label)` pairs drawn as
    /// outlined squares.
    pub defects: Vec<(Rect, String)>,
    /// Draw transistor channels as hatched overlays.
    pub show_channels: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            scale: 0.02,
            defects: Vec::new(),
            show_channels: true,
        }
    }
}

/// Renders the layout to an SVG document string.
///
/// ```
/// use dotm_layout::{render_svg, Layer, Layout, RenderOptions};
/// let mut lo = Layout::new("wire");
/// let a = lo.net("a");
/// lo.wire_h(a, Layer::Metal1, 0, 10_000, 0, 700);
/// let svg = render_svg(&lo, &RenderOptions::default());
/// assert!(svg.starts_with("<svg"));
/// ```
pub fn render_svg(layout: &Layout, opts: &RenderOptions) -> String {
    let bbox = layout
        .bbox()
        .unwrap_or(Rect::new(0, 0, 1_000, 1_000))
        .expanded(2_000);
    let s = opts.scale / 1_000.0; // nm → px
    let w = bbox.width() as f64 * s;
    let h = bbox.height() as f64 * s;
    let tx = |x: i64| (x - bbox.x0) as f64 * s;
    // SVG y grows downward; flip so the layout reads like a plot.
    let ty = |y: i64| (bbox.y1 - y) as f64 * s;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.1}" height="{h:.1}" viewBox="0 0 {w:.1} {h:.1}">"##
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{w:.1}" height="{h:.1}" fill="#fafafa"/>"##
    );
    // Draw in stack order so upper layers sit on top.
    for layer in Layer::ALL {
        let (fill, opacity) = style(layer);
        for shape in layout.shapes().iter().filter(|sh| sh.layer == layer) {
            let r = shape.rect;
            let _ = writeln!(
                out,
                r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="{opacity}"><title>{} {}</title></rect>"##,
                tx(r.x0),
                ty(r.y1),
                r.width() as f64 * s,
                r.height() as f64 * s,
                layer,
                layout.net_name(shape.net),
            );
        }
    }
    if opts.show_channels {
        for t in layout.transistors() {
            let r = t.channel;
            let _ = writeln!(
                out,
                r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="none" stroke="#000" stroke-width="0.6" stroke-dasharray="2,1"><title>channel {}</title></rect>"##,
                tx(r.x0),
                ty(r.y1),
                r.width() as f64 * s,
                r.height() as f64 * s,
                t.device,
            );
        }
    }
    for (r, label) in &opts.defects {
        let _ = writeln!(
            out,
            r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="none" stroke="#e00" stroke-width="1.2"><title>{label}</title></rect>"##,
            tx(r.x0),
            ty(r.y1),
            r.width() as f64 * s,
            r.height() as f64 * s,
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ChannelType, TransistorGeom};

    fn small_layout() -> Layout {
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        let b = lo.net("b");
        lo.wire_h(a, Layer::Metal1, 0, 10_000, 0, 700);
        lo.wire_h(b, Layer::Metal2, 0, 10_000, 1_400, 800);
        lo.add_contact(a, 500, 0, 600);
        lo.add_transistor(TransistorGeom {
            device: "M1".into(),
            ty: ChannelType::N,
            channel: Rect::new(4_000, -400, 4_800, 400),
            gate_net: b,
            drain_net: a,
            source_net: a,
            bulk_net: a,
        });
        lo
    }

    #[test]
    fn svg_contains_all_shapes_and_channel() {
        let lo = small_layout();
        let svg = render_svg(&lo, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // background + 3 shapes + 1 channel overlay
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("metal1 a"));
        assert!(svg.contains("channel M1"));
    }

    #[test]
    fn defect_overlay_is_drawn() {
        let lo = small_layout();
        let opts = RenderOptions {
            defects: vec![(Rect::square(5_000, 700, 1_500), "extra-metal1".into())],
            ..RenderOptions::default()
        };
        let svg = render_svg(&lo, &opts);
        assert!(svg.contains("extra-metal1"));
        assert!(svg.contains("stroke=\"#e00\""));
    }

    #[test]
    fn empty_layout_renders_background_only() {
        let lo = Layout::new("empty");
        let svg = render_svg(&lo, &RenderOptions::default());
        assert_eq!(svg.matches("<rect").count(), 1);
    }

    #[test]
    fn y_axis_is_flipped() {
        // A shape at larger y must appear at smaller SVG y.
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        lo.add_rect(a, Layer::Metal1, Rect::new(0, 0, 1_000, 1_000));
        lo.add_rect(a, Layer::Metal1, Rect::new(0, 50_000, 1_000, 51_000));
        let svg = render_svg(&lo, &RenderOptions::default());
        let ys: Vec<f64> = svg
            .lines()
            .filter(|l| l.contains("metal1"))
            .map(|l| {
                let i = l.find("y=\"").unwrap() + 3;
                let j = l[i..].find('"').unwrap();
                l[i..i + j].parse().unwrap()
            })
            .collect();
        assert_eq!(ys.len(), 2);
        assert!(
            ys[1] < ys[0],
            "higher layout y must render higher (smaller svg y)"
        );
    }
}
