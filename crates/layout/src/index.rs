//! Uniform-grid spatial index over a layout's shapes.
//!
//! The defect sprinkler performs tens of millions of point/rect queries;
//! a per-layer uniform grid makes each query O(shapes in the local cell)
//! instead of O(all shapes). The `sprinkle` criterion bench compares this
//! against a linear scan.

use crate::geom::Rect;
use crate::layer::Layer;
use crate::layout::{Layout, ShapeId};

/// A per-layer uniform-grid index over the shapes of one [`Layout`].
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    origin_x: i64,
    origin_y: i64,
    cell: i64,
    nx: usize,
    ny: usize,
    /// buckets[layer][cell] -> shape ids whose rect touches the cell
    buckets: Vec<Vec<Vec<ShapeId>>>,
}

impl SpatialIndex {
    /// Default grid pitch: 2 µm.
    pub const DEFAULT_CELL: i64 = 2_000;

    /// Builds an index with the default grid pitch.
    pub fn build(layout: &Layout) -> Self {
        Self::build_with_cell(layout, Self::DEFAULT_CELL)
    }

    /// Builds an index with an explicit grid pitch (nm).
    ///
    /// # Panics
    /// Panics if `cell <= 0`.
    pub fn build_with_cell(layout: &Layout, cell: i64) -> Self {
        assert!(cell > 0, "grid pitch must be positive");
        let bbox = layout
            .bbox()
            .unwrap_or(Rect::new(0, 0, 1, 1))
            .expanded(cell);
        let nx = ((bbox.width() / cell) + 1) as usize;
        let ny = ((bbox.height() / cell) + 1) as usize;
        let mut buckets = vec![vec![Vec::new(); nx * ny]; Layer::ALL.len()];
        for (i, shape) in layout.shapes().iter().enumerate() {
            let id = ShapeId(i as u32);
            let l = shape.layer.index();
            let (cx0, cy0) = Self::cell_of(bbox.x0, bbox.y0, cell, shape.rect.x0, shape.rect.y0);
            let (cx1, cy1) = Self::cell_of(bbox.x0, bbox.y0, cell, shape.rect.x1, shape.rect.y1);
            for cy in cy0..=cy1.min(ny - 1) {
                for cx in cx0..=cx1.min(nx - 1) {
                    buckets[l][cy * nx + cx].push(id);
                }
            }
        }
        SpatialIndex {
            origin_x: bbox.x0,
            origin_y: bbox.y0,
            cell,
            nx,
            ny,
            buckets,
        }
    }

    fn cell_of(ox: i64, oy: i64, cell: i64, x: i64, y: i64) -> (usize, usize) {
        let cx = ((x - ox).max(0) / cell) as usize;
        let cy = ((y - oy).max(0) / cell) as usize;
        (cx, cy)
    }

    /// Calls `f` for every shape id on `layer` whose grid cells intersect
    /// `query`. A shape spanning several cells may be reported more than
    /// once; callers that need uniqueness should deduplicate (see
    /// [`SpatialIndex::query`]).
    pub fn for_each_candidate(&self, layer: Layer, query: &Rect, mut f: impl FnMut(ShapeId)) {
        let l = layer.index();
        let (cx0, cy0) = Self::cell_of(self.origin_x, self.origin_y, self.cell, query.x0, query.y0);
        let (cx1, cy1) = Self::cell_of(self.origin_x, self.origin_y, self.cell, query.x1, query.y1);
        for cy in cy0..=cy1.min(self.ny - 1) {
            for cx in cx0..=cx1.min(self.nx - 1) {
                for &id in &self.buckets[l][cy * self.nx + cx] {
                    f(id);
                }
            }
        }
    }

    /// Returns the deduplicated shapes on `layer` whose rectangles touch
    /// `query`.
    pub fn query(&self, layout: &Layout, layer: Layer, query: &Rect) -> Vec<ShapeId> {
        let mut out = Vec::new();
        self.for_each_candidate(layer, query, |id| {
            if layout.shape(id).rect.touches(query) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Like [`SpatialIndex::query`] but requiring strict interior overlap.
    pub fn query_overlapping(&self, layout: &Layout, layer: Layer, query: &Rect) -> Vec<ShapeId> {
        let mut out = Vec::new();
        self.for_each_candidate(layer, query, |id| {
            if layout.shape(id).rect.overlaps(query) {
                out.push(id);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn grid_layout() -> Layout {
        let mut lo = Layout::new("grid");
        for i in 0..10 {
            let net = lo.net(&format!("n{i}"));
            // Horizontal metal1 wires 10 µm long, 0.7 µm wide, 2 µm pitch.
            lo.wire_h(net, Layer::Metal1, 0, 10_000, i * 2_000, 700);
        }
        lo
    }

    #[test]
    fn query_finds_touching_wires() {
        let lo = grid_layout();
        let idx = SpatialIndex::build(&lo);
        // A 1 µm square centred between wires 2 and 3 touches neither.
        let q = Rect::square(5_000, 5_000, 800);
        assert!(idx.query(&lo, Layer::Metal1, &q).is_empty());
        // A 3 µm square centred on wire 2 touches wires 2 and 3.
        let q = Rect::square(5_000, 4_500, 3_000);
        let hits = idx.query(&lo, Layer::Metal1, &q);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn query_matches_linear_scan() {
        let lo = grid_layout();
        let idx = SpatialIndex::build_with_cell(&lo, 1_500);
        for (cx, cy, s) in [
            (0i64, 0i64, 500i64),
            (5_000, 3_000, 2_500),
            (9_900, 18_000, 4_000),
            (-500, -500, 200),
            (12_000, 9_000, 6_000),
        ] {
            let q = Rect::square(cx, cy, s);
            let fast = idx.query(&lo, Layer::Metal1, &q);
            let slow: Vec<ShapeId> = lo
                .shapes()
                .iter()
                .enumerate()
                .filter(|(_, sh)| sh.layer == Layer::Metal1 && sh.rect.touches(&q))
                .map(|(i, _)| ShapeId(i as u32))
                .collect();
            assert_eq!(fast, slow, "mismatch at ({cx},{cy}) size {s}");
        }
    }

    #[test]
    fn empty_layout_does_not_panic() {
        let lo = Layout::new("empty");
        let idx = SpatialIndex::build(&lo);
        assert!(idx
            .query(&lo, Layer::Metal1, &Rect::new(0, 0, 10, 10))
            .is_empty());
    }

    #[test]
    fn overlapping_excludes_edge_touch() {
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        lo.add_rect(a, Layer::Poly, Rect::new(0, 0, 100, 100));
        let idx = SpatialIndex::build(&lo);
        let edge = Rect::new(100, 0, 200, 100);
        assert_eq!(idx.query(&lo, Layer::Poly, &edge).len(), 1);
        assert!(idx.query_overlapping(&lo, Layer::Poly, &edge).is_empty());
    }
}
