//! Geometric connectivity: extraction/verification and open-fault
//! partitioning.
//!
//! Connectivity rules of the reference process:
//!
//! * shapes on the same conductor layer connect where they touch;
//! * a [`Layer::Contact`] cut connects overlapping [`Layer::Metal1`] to
//!   overlapping [`Layer::Poly`] or [`Layer::Active`];
//! * a [`Layer::Via`] cut connects overlapping [`Layer::Metal1`] to
//!   [`Layer::Metal2`];
//! * poly crossing active forms a transistor channel, **not** a connection.

use crate::geom::Rect;
use crate::index::SpatialIndex;
use crate::layer::Layer;
use crate::layout::{Layout, NetId, Pin, ShapeId};
use std::collections::HashMap;

/// Disjoint-set forest over `n` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Finds the representative of `i` (with path halving).
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] as usize != i {
            let gp = self.parent[self.parent[i] as usize];
            self.parent[i] = gp;
            i = gp as usize;
        }
        i
    }

    /// Merges the sets of `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A connectivity violation found by [`extract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractViolation {
    /// Two differently-tagged nets are geometrically connected.
    Bridged {
        /// The two net tags found in one connected component.
        nets: (NetId, NetId),
    },
    /// One net's shapes form more than one connected component.
    SplitNet {
        /// The net in question.
        net: NetId,
        /// Number of disconnected components found.
        components: usize,
    },
}

/// Result of layout extraction.
#[derive(Debug, Clone)]
pub struct Extracted {
    /// Connected components as lists of shape ids.
    pub components: Vec<Vec<ShapeId>>,
    /// Disagreements between geometry and net tags.
    pub violations: Vec<ExtractViolation>,
}

/// Which conductor layers a cut connects when it overlaps them.
fn cut_targets(layer: Layer) -> &'static [Layer] {
    match layer {
        Layer::Contact => &[Layer::Metal1, Layer::Poly, Layer::Active],
        Layer::Via => &[Layer::Metal1, Layer::Metal2],
        _ => &[],
    }
}

/// Extracts geometric connectivity over the whole layout and cross-checks
/// it against the generator's net tags. A defect-free procedural layout
/// must extract with zero violations — the ADC macro layouts are tested
/// against exactly this.
pub fn extract(layout: &Layout, index: &SpatialIndex) -> Extracted {
    let n = layout.shape_count();
    let mut uf = UnionFind::new(n);
    for (i, s) in layout.shapes().iter().enumerate() {
        if s.layer.is_conductor() {
            for other in index.query(layout, s.layer, &s.rect) {
                uf.union(i, other.index());
            }
        } else if s.layer.is_cut() {
            for &target in cut_targets(s.layer) {
                for other in index.query_overlapping(layout, target, &s.rect) {
                    uf.union(i, other.index());
                }
            }
        }
        // Nwell participates in no connectivity.
    }

    let mut comp_map: HashMap<usize, usize> = HashMap::new();
    let mut components: Vec<Vec<ShapeId>> = Vec::new();
    for i in 0..n {
        let root = uf.find(i);
        let slot = *comp_map.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[slot].push(ShapeId(i as u32));
    }

    let mut violations = Vec::new();
    // Bridged: one component, several nets. Skip Nwell shapes: wells carry
    // a bulk tag but are not connectivity participants.
    for comp in &components {
        let mut nets: Vec<NetId> = comp
            .iter()
            .map(|&id| layout.shape(id))
            .filter(|s| s.layer != Layer::Nwell)
            .map(|s| s.net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        if nets.len() > 1 {
            violations.push(ExtractViolation::Bridged {
                nets: (nets[0], nets[1]),
            });
        }
    }
    // Split: one net, several components.
    let mut comps_of_net: HashMap<NetId, Vec<usize>> = HashMap::new();
    for (ci, comp) in components.iter().enumerate() {
        let mut nets: Vec<NetId> = comp
            .iter()
            .map(|&id| layout.shape(id))
            .filter(|s| s.layer != Layer::Nwell)
            .map(|s| s.net)
            .collect();
        nets.sort_unstable();
        nets.dedup();
        for net in nets {
            comps_of_net.entry(net).or_default().push(ci);
        }
    }
    for (net, comps) in comps_of_net {
        if comps.len() > 1 {
            violations.push(ExtractViolation::SplitNet {
                net,
                components: comps.len(),
            });
        }
    }
    Extracted {
        components,
        violations,
    }
}

/// The two (or more) sides of an open fault: device terminals grouped by
/// the surviving connected component they land on.
#[derive(Debug, Clone)]
pub struct OpenPartition {
    /// Terminal groups; each inner vec holds the pins of one side.
    /// Pins that lost all their metal are reported as singleton groups.
    pub groups: Vec<Vec<Pin>>,
}

/// Analyses a missing-material defect (`defect` rect removed from
/// `cut_layer`) against one net: returns the terminal partition if the
/// defect electrically splits the net, `None` if the net survives
/// connected (defect missed, only nibbled an edge, or a redundant path
/// exists).
pub fn open_partition(
    layout: &Layout,
    net: NetId,
    cut_layer: Layer,
    defect: &Rect,
) -> Option<OpenPartition> {
    // Local modified copy of the net's shapes.
    let mut pieces: Vec<(Layer, Rect)> = Vec::new();
    let mut severed_any = false;
    for s in layout.shapes().iter().filter(|s| s.net == net) {
        if s.layer == cut_layer {
            if s.layer.is_cut() {
                // A missing cut is removed only when fully covered.
                if defect.contains(&s.rect) {
                    severed_any = true;
                    continue;
                }
                pieces.push((s.layer, s.rect));
            } else {
                match s.rect.sever(defect) {
                    Some(remains) => {
                        severed_any = true;
                        for r in remains {
                            pieces.push((s.layer, r));
                        }
                    }
                    None => pieces.push((s.layer, s.rect)),
                }
            }
        } else {
            pieces.push((s.layer, s.rect));
        }
    }
    if !severed_any {
        return None;
    }

    // Union-find over the modified pieces (the per-net piece count is small,
    // so the O(n²) pairing is fine here).
    let n = pieces.len();
    let mut uf = UnionFind::new(n.max(1));
    for i in 0..n {
        for j in (i + 1)..n {
            let (la, ra) = pieces[i];
            let (lb, rb) = pieces[j];
            let connected = if la == lb && la.is_conductor() {
                ra.touches(&rb)
            } else if la.is_cut() && cut_targets(la).contains(&lb) {
                ra.overlaps(&rb)
            } else if lb.is_cut() && cut_targets(lb).contains(&la) {
                rb.overlaps(&ra)
            } else {
                false
            };
            if connected {
                uf.union(i, j);
            }
        }
    }

    // Assign pins to components.
    let mut groups: HashMap<isize, Vec<Pin>> = HashMap::new();
    let mut orphan = -1isize;
    for pin in layout.pins_of_net(net) {
        let mut comp: Option<usize> = None;
        for (i, (l, r)) in pieces.iter().enumerate() {
            if *l == pin.layer && r.touches(&pin.at) {
                comp = Some(uf.find(i));
                break;
            }
        }
        match comp {
            Some(c) => groups.entry(c as isize).or_default().push(pin.clone()),
            None => {
                groups.insert(orphan, vec![pin.clone()]);
                orphan -= 1;
            }
        }
    }
    if groups.len() < 2 {
        return None; // redundant path kept everything connected
    }
    let mut groups: Vec<Vec<Pin>> = groups.into_values().collect();
    // Deterministic order: largest group (the "main" side) first, then by
    // first pin name.
    groups.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a[0].device.cmp(&b[0].device))
    });
    Some(OpenPartition { groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.same(0, 1));
        assert!(uf.same(4, 3));
        assert!(!uf.same(1, 3));
        uf.union(1, 3);
        assert!(uf.same(0, 4));
    }

    /// Two metal1 wires joined by metal2 through two vias, with pins at the
    /// far ends.
    fn strap_layout() -> Layout {
        let mut lo = Layout::new("strap");
        let a = lo.net("a");
        lo.wire_h(a, Layer::Metal1, 0, 4_000, 0, 700);
        lo.wire_h(a, Layer::Metal1, 6_000, 10_000, 0, 700);
        lo.wire_h(a, Layer::Metal2, 3_500, 6_500, 0, 900);
        lo.add_via(a, 3_800, 0, 500);
        lo.add_via(a, 6_200, 0, 500);
        lo.add_pin(Pin {
            device: "D0".into(),
            terminal: 0,
            net: a,
            layer: Layer::Metal1,
            at: Rect::new(0, -350, 200, 350),
        });
        lo.add_pin(Pin {
            device: "D1".into(),
            terminal: 0,
            net: a,
            layer: Layer::Metal1,
            at: Rect::new(9_800, -350, 10_000, 350),
        });
        lo
    }

    #[test]
    fn extract_accepts_clean_layout() {
        let lo = strap_layout();
        let idx = SpatialIndex::build(&lo);
        let ex = extract(&lo, &idx);
        assert!(ex.violations.is_empty(), "{:?}", ex.violations);
        // All five shapes form one component.
        assert_eq!(ex.components.iter().filter(|c| c.len() > 1).count(), 1);
    }

    #[test]
    fn extract_flags_bridge() {
        let mut lo = strap_layout();
        let b = lo.net("b");
        // A second net overlapping the first on metal1.
        lo.wire_h(b, Layer::Metal1, 2_000, 3_000, 0, 700);
        let idx = SpatialIndex::build(&lo);
        let ex = extract(&lo, &idx);
        assert!(ex
            .violations
            .iter()
            .any(|v| matches!(v, ExtractViolation::Bridged { .. })));
    }

    #[test]
    fn extract_flags_split_net() {
        let mut lo = Layout::new("split");
        let a = lo.net("a");
        lo.wire_h(a, Layer::Metal1, 0, 1_000, 0, 700);
        lo.wire_h(a, Layer::Metal1, 5_000, 6_000, 0, 700);
        let idx = SpatialIndex::build(&lo);
        let ex = extract(&lo, &idx);
        assert!(ex
            .violations
            .iter()
            .any(|v| matches!(v, ExtractViolation::SplitNet { components: 2, .. })));
    }

    #[test]
    fn open_partition_splits_cut_wire() {
        let lo = strap_layout();
        let a = lo.find_net("a").unwrap();
        // Cut the left metal1 wire in the middle.
        let defect = Rect::new(1_900, -400, 2_300, 400);
        let part = open_partition(&lo, a, Layer::Metal1, &defect).unwrap();
        assert_eq!(part.groups.len(), 2);
        let names: Vec<&str> = part.groups.iter().map(|g| g[0].device.as_str()).collect();
        assert!(names.contains(&"D0") && names.contains(&"D1"));
    }

    #[test]
    fn open_partition_none_when_missed() {
        let lo = strap_layout();
        let a = lo.find_net("a").unwrap();
        let defect = Rect::new(1_900, 5_000, 2_300, 5_400);
        assert!(open_partition(&lo, a, Layer::Metal1, &defect).is_none());
    }

    #[test]
    fn open_partition_none_with_redundant_path() {
        let mut lo = strap_layout();
        let a = lo.find_net("a").unwrap();
        // Add a redundant metal2 strap over the left wire's cut position.
        lo.wire_h(a, Layer::Metal2, 1_000, 3_000, 0, 900);
        lo.add_via(a, 1_200, 0, 500);
        lo.add_via(a, 2_800, 0, 500);
        let defect = Rect::new(1_900, -400, 2_300, 400);
        assert!(open_partition(&lo, a, Layer::Metal1, &defect).is_none());
    }

    #[test]
    fn missing_via_opens_strap() {
        let lo = strap_layout();
        let a = lo.find_net("a").unwrap();
        // Remove the left via completely.
        let defect = Rect::square(3_800, 0, 1_000);
        let part = open_partition(&lo, a, Layer::Via, &defect).unwrap();
        assert_eq!(part.groups.len(), 2);
    }

    #[test]
    fn partial_via_damage_is_not_an_open() {
        let lo = strap_layout();
        let a = lo.find_net("a").unwrap();
        // A defect overlapping but not covering the via.
        let defect = Rect::new(3_700, -100, 3_850, 100);
        assert!(open_partition(&lo, a, Layer::Via, &defect).is_none());
    }
}
